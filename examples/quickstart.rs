//! Quickstart: train ByteBrain on a small batch of logs, match new logs online, and
//! adjust template precision at query time.
//!
//! Run with: `cargo run --release --example quickstart`

use bytebrain_repro::bytebrain::{ByteBrainParser, TrainConfig};

fn main() {
    // 1. A batch of raw logs (in production this is a log topic's recent data).
    let mut training_logs: Vec<String> = Vec::new();
    for i in 0..200 {
        training_logs.push(format!(
            "Accepted password for user{} from 10.0.{}.{} port {} ssh2",
            i % 6,
            i % 4,
            i % 50,
            5000 + i
        ));
        training_logs.push(format!(
            "Connection closed by 10.0.{}.{} [preauth]",
            i % 4,
            i % 50
        ));
        if i % 5 == 0 {
            training_logs.push(format!(
                "Failed password for invalid user guest{} from 10.1.0.{} port {} ssh2",
                i,
                i % 30,
                6000 + i
            ));
        }
    }

    // 2. Offline training: hierarchical clustering builds the template tree.
    let mut parser = ByteBrainParser::new(TrainConfig::default());
    parser.train(&training_logs);
    println!(
        "trained on {} logs -> {} templates\n",
        training_logs.len(),
        parser.model().len()
    );

    // 3. Online matching of new logs.
    for log in [
        "Accepted password for user99 from 10.0.3.42 port 5999 ssh2",
        "Connection closed by 10.0.1.7 [preauth]",
        "error: kex_exchange_identification: read: Connection reset by peer",
    ] {
        let result = parser.match_log(log);
        println!("log     : {log}");
        println!(
            "template: {}  (saturation {:.2})\n",
            result.template, result.saturation
        );
    }

    // 4. Query-time precision control: the same matched log presented at three precisions.
    let matched =
        parser.match_log_readonly("Accepted password for user3 from 10.0.2.9 port 5123 ssh2");
    if let Some(node) = matched.node {
        for threshold in [0.1, 0.6, 0.95] {
            println!(
                "threshold {threshold:>4}: {}",
                parser.template_at_threshold(node, threshold)
            );
        }
    }
}
