//! Adaptive precision: reproduce the paper's motivating example (§1) — the same log
//! stream parsed at different precisions reveals different structure. At a coarse
//! threshold `register callback for <email>` and `register callback for None` share one
//! template; at a fine threshold the unexpected `None` shows up as its own template.
//!
//! Run with: `cargo run --release --example adaptive_precision`

use bytebrain_repro::bytebrain::{ByteBrainParser, TrainConfig};
use std::collections::BTreeMap;

fn main() {
    // A stream where a rare bug produces "None" instead of an email address.
    let mut logs: Vec<String> = Vec::new();
    for i in 0..400 {
        let email = if i % 80 == 79 {
            "None".to_string()
        } else {
            format!("user{}@example.com", i % 37)
        };
        logs.push(format!("register callback for {email}"));
        logs.push(format!(
            "callback invoked after {}ms with status {}",
            i % 500,
            i % 7
        ));
    }

    let mut parser = ByteBrainParser::new(TrainConfig::default());
    parser.train(&logs);
    let matches = parser.match_batch(&logs);

    for threshold in [0.3, 0.95] {
        let mut groups: BTreeMap<String, usize> = BTreeMap::new();
        for result in &matches {
            if let Some(node) = result.node {
                *groups
                    .entry(parser.template_at_threshold(node, threshold))
                    .or_insert(0) += 1;
            }
        }
        println!(
            "=== saturation threshold {threshold} -> {} templates",
            groups.len()
        );
        for (template, count) in groups.iter().filter(|(t, _)| t.contains("register")) {
            println!("  {count:>5}  {template}");
        }
        println!();
    }
    println!(
        "At the coarse threshold the buggy 'None' records hide inside the generic template;\n\
         at the fine threshold they surface as their own template — without reparsing a single log."
    );
}
