//! Cloud-service workflow: ingest a synthetic HDFS-like stream into a log topic, let
//! volume-triggered training run, query the stored logs grouped by template at two
//! precisions, and compare template distributions across two time windows.
//!
//! Run with: `cargo run --release --example cloud_topic`

use bytebrain_repro::datasets::LabeledDataset;
use bytebrain_repro::service::{
    compare_snapshots, LogTopic, QueryEngine, QueryOptions, TopicConfig,
};

fn main() {
    let corpus = LabeledDataset::loghub2("HDFS", 30_000);
    let mut topic = LogTopic::new(TopicConfig::new("hdfs-datanode").with_volume_threshold(10_000));

    // Ingest the stream in batches, as a collector would, freezing an indexed query
    // snapshot (model + ladder + postings behind Arcs) at each window boundary.
    let mut window_snapshots = Vec::new();
    for (i, chunk) in corpus.records.chunks(10_000).enumerate() {
        let outcome = topic.ingest(chunk);
        println!(
            "batch {}: matched {} / {} online, trained this batch: {}",
            i,
            outcome.matched,
            chunk.len(),
            outcome.trained
        );
        window_snapshots.push(topic.query_snapshot());
    }

    let stats = topic.stats();
    println!(
        "\ntopic stats: {} records, {} templates, model ≈ {} KB, last training {:.2}s",
        stats.total_records,
        stats.templates,
        stats.model_size_bytes / 1024,
        stats.last_training_seconds
    );

    // Query the topic at two precisions.
    let engine = QueryEngine::new(&topic);
    for threshold in [0.3, 0.95] {
        let groups = engine.group_by_template(QueryOptions {
            saturation_threshold: threshold,
            limit: 5,
        });
        println!("\ntop templates at threshold {threshold}:");
        for group in groups {
            println!("  {:>7}  {}", group.count(), group.template);
        }
    }

    // Compare the first and last ingestion windows through the indexed path.
    if window_snapshots.len() >= 2 {
        let shifts = compare_snapshots(
            &window_snapshots[0],
            window_snapshots.last().expect("at least one window"),
            0.9,
        );
        println!("\nlargest distribution shifts between the first and last window:");
        for shift in shifts.iter().take(5) {
            println!(
                "  {:+.2}pp  {} ({} -> {})",
                shift.share_delta * 100.0,
                shift.template,
                shift.before,
                shift.after
            );
        }
    }
}
