//! Anomaly detection on parsing results: ingest a healthy baseline window, then a window
//! containing an incident (a template count surge plus a brand-new error template), and
//! let the detector and the template library's alert rules flag both.
//!
//! Run with: `cargo run --release --example anomaly_watch`

use bytebrain_repro::service::library::AlertRule;
use bytebrain_repro::service::{
    AnomalyDetector, LogTopic, QueryEngine, TemplateLibrary, TopicConfig,
};

fn window(offset: usize, incident: bool) -> Vec<String> {
    let mut logs = Vec::new();
    for i in 0..4_000usize {
        let n = offset + i;
        logs.push(format!("request {} served from cache in {}ms", n, n % 20));
        if n.is_multiple_of(7) {
            logs.push(format!("session {} expired after {} minutes", n, n % 90));
        }
        if incident {
            // The incident: a surge of timeouts plus a previously-unseen template.
            if i % 4 == 0 {
                logs.push(format!(
                    "upstream timeout calling billing-service after {}ms",
                    1000 + n % 500
                ));
            }
            if i % 400 == 0 {
                logs.push(format!(
                    "circuit breaker OPEN for billing-service shard {}",
                    n % 8
                ));
            }
        } else if n.is_multiple_of(97) {
            logs.push(format!(
                "upstream timeout calling billing-service after {}ms",
                100 + n % 50
            ));
        }
    }
    logs
}

fn main() {
    let mut topic = LogTopic::new(TopicConfig::new("api-gateway").with_volume_threshold(u64::MAX));

    // Baseline window: freeze an indexed query snapshot (model + ladder + postings
    // behind Arcs) instead of materialising a distribution up front.
    topic.ingest(&window(0, false));
    let baseline = topic.query_snapshot();

    // Incident window.
    topic.ingest(&window(10_000, true));
    topic.run_training();
    let current = topic.query_snapshot();

    let detector = AnomalyDetector::default();
    println!("=== anomalies between baseline and incident window");
    for report in detector
        .detect_snapshots(&baseline, &current, 0.9)
        .iter()
        .take(8)
    {
        println!(
            "  {:?}: {} ({} -> {})",
            report.kind, report.template, report.baseline_count, report.current_count
        );
    }

    // Template library with alert rules (the saved-template workflow of §6).
    let mut library = TemplateLibrary::new();
    library.save(
        "billing timeouts",
        "upstream timeout calling billing-service after *",
        vec![AlertRule::CountAbove(100)],
    );
    library.save(
        "circuit breaker",
        "circuit breaker OPEN for billing-service shard *",
        vec![AlertRule::OnAppearance],
    );
    println!("\n=== fired alerts");
    let current_distribution = QueryEngine::new(&topic).template_distribution(0.9);
    for alert in library.evaluate_alerts(&current_distribution) {
        println!(
            "  [{}] rule {:?} observed {}",
            alert.entry, alert.rule, alert.observed
        );
    }
}
