//! Cross-crate end-to-end tests: the full pipeline from synthetic corpus generation
//! through training, online matching, query-time precision control and model merging.

use bytebrain_repro::bytebrain::query::merge_consecutive_wildcards;
use bytebrain_repro::bytebrain::{ByteBrainParser, TrainConfig};
use bytebrain_repro::datasets::LabeledDataset;
use bytebrain_repro::eval::grouping_accuracy;

#[test]
fn training_plus_online_matching_covers_unseen_logs_of_known_templates() {
    // Train on the first half of the corpus, match the second half online: logs produced
    // by templates seen during training must match.
    let ds = LabeledDataset::loghub2("OpenSSH", 8_000);
    let split = ds.records.len() / 2;
    let mut parser = ByteBrainParser::new(TrainConfig::default());
    parser.train(&ds.records[..split]);
    let mut matched = 0usize;
    let results = parser.match_batch(&ds.records[split..]);
    for r in &results {
        if r.is_matched() {
            matched += 1;
        }
    }
    let rate = matched as f64 / results.len() as f64;
    assert!(rate > 0.9, "online match rate too low: {rate:.3}");
}

#[test]
fn query_threshold_is_monotone_in_group_count() {
    let ds = LabeledDataset::loghub("Hadoop");
    let mut parser = ByteBrainParser::new(TrainConfig::default());
    let mut previous = 0usize;
    for threshold in [0.1, 0.3, 0.5, 0.7, 0.9] {
        let groups = parser.parse_with_threshold(&ds.records, threshold);
        let distinct: std::collections::HashSet<usize> = groups.into_iter().collect();
        assert!(
            distinct.len() >= previous,
            "group count decreased as threshold rose"
        );
        previous = distinct.len();
    }
}

#[test]
fn incremental_retraining_keeps_accuracy() {
    let ds = LabeledDataset::loghub("Zookeeper");
    let mid = ds.records.len() / 2;
    let mut parser = ByteBrainParser::new(TrainConfig::default());
    parser.train(&ds.records[..mid]);
    parser.train_incremental(&ds.records[mid..], 0.6);
    let predicted: Vec<usize> = parser
        .match_batch(&ds.records)
        .into_iter()
        .enumerate()
        .map(|(i, r)| r.node.map(|n| n.0).unwrap_or(usize::MAX - i))
        .collect();
    let ga = grouping_accuracy(&predicted, &ds.labels);
    assert!(ga > 0.5, "accuracy after merge too low: {ga:.3}");
}

#[test]
fn wildcard_merging_presents_variable_length_lists_as_one_template() {
    // §7: templates that differ only by the number of consecutive wildcards present
    // identically after merging.
    let variants = ["users *", "users * *", "users * * *"];
    let merged: std::collections::HashSet<String> = variants
        .iter()
        .map(|t| merge_consecutive_wildcards(t))
        .collect();
    assert_eq!(merged.len(), 1);
}

#[test]
fn saturation_is_monotone_along_every_tree_path() {
    let ds = LabeledDataset::loghub("Mac");
    let mut parser = ByteBrainParser::new(TrainConfig::default());
    parser.train(&ds.records);
    let model = parser.model();
    for node in &model.nodes {
        if let Some(parent) = node.parent {
            let parent_node = model.node(parent).unwrap();
            assert!(
                node.saturation + 1e-9 >= parent_node.saturation,
                "child saturation below parent"
            );
            assert_eq!(node.depth, parent_node.depth + 1);
        }
    }
}

#[test]
fn ablation_variants_all_produce_valid_groupings() {
    use bytebrain_repro::bytebrain::AblationConfig;
    let ds = LabeledDataset::loghub("Proxifier");
    let full_ga = {
        let mut parser = ByteBrainParser::new(TrainConfig::default());
        grouping_accuracy(&parser.parse_with_threshold(&ds.records, 0.6), &ds.labels)
    };
    for (name, ablation) in AblationConfig::named_variants() {
        let config = TrainConfig::default().with_ablation(ablation);
        let mut parser = ByteBrainParser::new(config);
        let groups = parser.parse_with_threshold(&ds.records, 0.6);
        assert_eq!(groups.len(), ds.records.len(), "variant {name}");
        let ga = grouping_accuracy(&groups, &ds.labels);
        // Disabling a technique may legitimately hurt accuracy (that is the point of the
        // ablation study); the pipeline must still produce a valid, non-trivial grouping
        // and never beat the full configuration by a large margin.
        assert!(ga > 0.0, "variant {name} produced a degenerate grouping");
        assert!(
            ga <= full_ga + 0.15,
            "variant {name} unexpectedly outperformed the full configuration by a wide margin"
        );
    }
}
