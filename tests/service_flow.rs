//! Cross-crate test of the cloud-service workflow: topic ingestion, triggered training,
//! querying, anomaly detection and alerting on a realistic synthetic stream.

use bytebrain_repro::datasets::LabeledDataset;
use bytebrain_repro::service::library::AlertRule;
use bytebrain_repro::service::{
    AnomalyDetector, AnomalyKind, LogTopic, QueryEngine, QueryOptions, TemplateLibrary, TopicConfig,
};

#[test]
fn topic_lifecycle_ingest_train_query() {
    let corpus = LabeledDataset::loghub2("Apache", 12_000);
    let mut topic = LogTopic::new(TopicConfig::new("apache-access").with_volume_threshold(5_000));
    for chunk in corpus.records.chunks(4_000) {
        topic.ingest(&chunk.to_vec());
    }
    let stats = topic.stats();
    assert_eq!(stats.total_records, corpus.records.len() as u64);
    assert!(
        stats.training_runs >= 2,
        "volume trigger should have re-trained"
    );
    assert!(stats.templates > 0);
    // The model is small relative to the data it describes (storage-efficiency goal).
    assert!(stats.model_size_bytes * 2 < stats.total_bytes);

    let groups = QueryEngine::new(&topic).group_by_template(QueryOptions::default());
    let covered: usize = groups.iter().map(|g| g.count()).sum();
    assert_eq!(covered as u64, stats.total_records);
}

#[test]
fn new_error_template_is_detected_as_anomaly() {
    let mut topic = LogTopic::new(TopicConfig::new("payments").with_volume_threshold(u64::MAX));
    let healthy: Vec<String> = (0..3_000)
        .map(|i| format!("payment {} authorized in {}ms", i, i % 40))
        .collect();
    topic.ingest(&healthy);
    let baseline = QueryEngine::new(&topic).template_distribution(0.9);

    let incident: Vec<String> = (0..500)
        .map(|i| {
            format!(
                "payment {} declined: fraud score {} exceeds limit",
                i,
                80 + i % 20
            )
        })
        .collect();
    topic.ingest(&incident);
    topic.run_training();
    let current = QueryEngine::new(&topic).template_distribution(0.9);

    let reports = AnomalyDetector::default().detect(&baseline, &current);
    assert!(
        reports
            .iter()
            .any(|r| r.kind == AnomalyKind::NewTemplate && r.template.contains("declined")),
        "expected a new-template anomaly, got {reports:?}"
    );
}

#[test]
fn library_alert_fires_on_known_failure_scenario() {
    let mut topic = LogTopic::new(TopicConfig::new("kernel").with_volume_threshold(u64::MAX));
    let mut logs: Vec<String> = (0..2_000)
        .map(|i| format!("usb device {} enumerated on bus {}", i, i % 4))
        .collect();
    logs.extend((0..200).map(|i| format!("Out of memory: Killed process {} (java)", 4_000 + i)));
    topic.ingest(&logs);
    topic.run_training();

    let mut library = TemplateLibrary::new();
    // Template text as the parser renders it: the tokenizer strips ':' and parentheses.
    library.save(
        "oom-killer",
        "Out of memory Killed process * java",
        vec![AlertRule::CountAbove(50), AlertRule::OnAppearance],
    );
    let distribution = QueryEngine::new(&topic).template_distribution(0.9);
    let alerts = library.evaluate_alerts(&distribution);
    assert!(
        alerts.iter().any(|a| a.entry == "oom-killer"),
        "expected the OOM alert to fire; distribution: {distribution:?}"
    );
}

#[test]
fn model_snapshots_round_trip_through_the_store() {
    let corpus = LabeledDataset::loghub("HDFS");
    let mut topic = LogTopic::new(TopicConfig::new("hdfs").with_volume_threshold(u64::MAX));
    topic.ingest(&corpus.records);
    topic.run_training();
    let info = topic.store().latest_info().expect("snapshot saved");
    assert!(info.num_templates > 0);
    let restored = topic.store().load_latest().expect("snapshot loads");
    assert_eq!(restored.len(), topic.model().len());
}
