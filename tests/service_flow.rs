//! Cross-crate test of the cloud-service workflow: topic ingestion, triggered training,
//! querying, anomaly detection and alerting on a realistic synthetic stream.

use bytebrain_repro::bytebrain::incremental::DriftConfig;
use bytebrain_repro::datasets::LabeledDataset;
use bytebrain_repro::service::library::AlertRule;
use bytebrain_repro::service::{
    AnomalyDetector, AnomalyKind, IngestConfig, LogTopic, MaintenancePolicy, QueryEngine,
    QueryOptions, TemplateLibrary, TopicConfig,
};

#[test]
fn topic_lifecycle_ingest_train_query() {
    let corpus = LabeledDataset::loghub2("Apache", 12_000);
    let mut topic = LogTopic::new(TopicConfig::new("apache-access").with_volume_threshold(5_000));
    for chunk in corpus.records.chunks(4_000) {
        topic.ingest(chunk);
    }
    let stats = topic.stats();
    assert_eq!(stats.total_records, corpus.records.len() as u64);
    assert!(
        stats.training_runs >= 2,
        "volume trigger should have re-trained"
    );
    assert!(stats.templates > 0);
    // The model is small relative to the data it describes (storage-efficiency goal).
    assert!(stats.model_size_bytes * 2 < stats.total_bytes);

    let groups = QueryEngine::new(&topic).group_by_template(QueryOptions::default());
    let covered: usize = groups.iter().map(|g| g.count()).sum();
    assert_eq!(covered as u64, stats.total_records);
}

#[test]
fn new_error_template_is_detected_as_anomaly() {
    let mut topic = LogTopic::new(TopicConfig::new("payments").with_volume_threshold(u64::MAX));
    let healthy: Vec<String> = (0..3_000)
        .map(|i| format!("payment {} authorized in {}ms", i, i % 40))
        .collect();
    topic.ingest(&healthy);
    let baseline = QueryEngine::new(&topic).template_distribution(0.9);

    let incident: Vec<String> = (0..500)
        .map(|i| {
            format!(
                "payment {} declined: fraud score {} exceeds limit",
                i,
                80 + i % 20
            )
        })
        .collect();
    topic.ingest(&incident);
    topic.run_training();
    let current = QueryEngine::new(&topic).template_distribution(0.9);

    let reports = AnomalyDetector::default().detect(&baseline, &current);
    assert!(
        reports
            .iter()
            .any(|r| r.kind == AnomalyKind::NewTemplate && r.template.contains("declined")),
        "expected a new-template anomaly, got {reports:?}"
    );
}

#[test]
fn library_alert_fires_on_known_failure_scenario() {
    let mut topic = LogTopic::new(TopicConfig::new("kernel").with_volume_threshold(u64::MAX));
    let mut logs: Vec<String> = (0..2_000)
        .map(|i| format!("usb device {} enumerated on bus {}", i, i % 4))
        .collect();
    logs.extend((0..200).map(|i| format!("Out of memory: Killed process {} (java)", 4_000 + i)));
    topic.ingest(&logs);
    topic.run_training();

    let mut library = TemplateLibrary::new();
    // Template text as the parser renders it: the tokenizer strips ':' and parentheses.
    library.save(
        "oom-killer",
        "Out of memory Killed process * java",
        vec![AlertRule::CountAbove(50), AlertRule::OnAppearance],
    );
    let distribution = QueryEngine::new(&topic).template_distribution(0.9);
    let alerts = library.evaluate_alerts(&distribution);
    assert!(
        alerts.iter().any(|a| a.entry == "oom-killer"),
        "expected the OOM alert to fire; distribution: {distribution:?}"
    );
}

/// Regression: records matched to temporary templates that incremental maintenance
/// later absorbed (retired) must never resolve to — or group under — the retired
/// nodes. Before the fix, `resolve_with_threshold` ignored `TreeNode::retired` and
/// `group_by_template` reported retired temporaries as template groups.
#[test]
fn queries_after_incremental_maintenance_return_no_retired_templates() {
    let mut topic = LogTopic::new(
        TopicConfig::new("drift-query")
            .with_volume_threshold(u64::MAX)
            .with_maintenance(MaintenancePolicy::Incremental {
                drift: DriftConfig::default()
                    .with_window(200)
                    .with_min_samples(50)
                    .with_max_unmatched_rate(0.3),
                check_interval: 512,
            }),
    );
    let base: Vec<String> = (0..400)
        .map(|i| format!("request {} served from cache {} in {}ms", i, i % 4, i % 9))
        .collect();
    topic.ingest(&base); // initial full training
    let novel: Vec<String> = (0..200)
        .map(|i| format!("circuit breaker opened for upstream svc-{}", i % 6))
        .collect();
    let outcome = topic.ingest(&novel); // drift → temporaries → incremental absorption
    assert!(outcome.maintained >= 1, "drift must maintain: {outcome:?}");
    assert!(
        topic.model().retired_count() > 0,
        "absorbed temporaries must leave retired slots behind"
    );
    for threshold in [0.0, 0.3, 0.6, 0.9, 1.0] {
        let groups = topic.query(QueryOptions {
            saturation_threshold: threshold,
            limit: usize::MAX,
        });
        let covered: usize = groups.iter().map(|g| g.count()).sum();
        assert_eq!(covered, topic.records().len(), "no record may be dropped");
        for group in groups.iter() {
            let node = &topic.model().nodes[group.node.0];
            assert!(
                !node.retired,
                "retired template leaked into query results at threshold {threshold}: \
                 {} ({})",
                group.template, group.node
            );
        }
    }
}

/// Regression for the streaming race: records matched against the pre-swap model
/// snapshot can carry temporary-template ids that a mid-stream maintenance run has
/// since retired; they must be re-matched when applied, not stored against retired
/// nodes.
#[test]
fn hot_swapped_stream_leaves_no_records_on_retired_templates() {
    let mut topic = LogTopic::new(
        TopicConfig::new("stream-drift-query")
            .with_volume_threshold(u64::MAX)
            .with_maintenance(MaintenancePolicy::Incremental {
                drift: DriftConfig::default()
                    .with_window(256)
                    .with_min_samples(64)
                    .with_max_unmatched_rate(0.2),
                check_interval: 512,
            }),
    );
    let base: Vec<String> = (0..500)
        .map(|i| format!("GET /api/items/{} took {}ms", i % 20, i % 90))
        .collect();
    topic.ingest(&base);
    let mut stream: Vec<String> = (0..2_000)
        .map(|i| format!("GET /api/items/{} took {}ms", i % 30, i % 400))
        .collect();
    stream.extend(
        (0..4_000).map(|i| format!("disk scrubber repaired sector {} on vol-{}", i, i % 3)),
    );
    let result = topic.ingest_stream(
        stream,
        &IngestConfig::default()
            .with_shards(4)
            .with_batch_records(64)
            .with_max_in_flight(4),
    );
    assert!(
        result.outcome.maintained >= 1,
        "mid-stream drift must maintain"
    );
    assert!(
        result.stats.model_swaps >= 1,
        "model must hot-swap mid-stream"
    );
    // No stored record may point at a retired node, and no query may return one.
    for stored in topic.records() {
        if let Some(id) = stored.template {
            assert!(
                !topic.model().nodes[id.0].retired,
                "stored record still points at retired node {id}: {stored:?}"
            );
        }
    }
    for group in topic.query(QueryOptions::default()).iter() {
        assert!(!topic.model().nodes[group.node.0].retired);
    }
}

#[test]
fn model_snapshots_round_trip_through_the_store() {
    let corpus = LabeledDataset::loghub("HDFS");
    let mut topic = LogTopic::new(TopicConfig::new("hdfs").with_volume_threshold(u64::MAX));
    topic.ingest(&corpus.records);
    topic.run_training();
    let info = topic.store().latest_info().expect("snapshot saved");
    assert!(info.num_templates > 0);
    let restored = topic.store().load_latest().expect("snapshot loads");
    assert_eq!(restored.len(), topic.model().len());
}
