//! Differential test harness: every ingestion path of the service must agree.
//!
//! Seeded random workloads from `datasets::generator` flow through (a) batch
//! `LogTopic::ingest`, (b) streaming `LogTopic::ingest_stream` under both shard
//! strategies and 1/2/4 workers, and (c) the incremental-maintenance path — and all
//! of them must produce identical template assignments and identical ingest stats.
//! A second harness drives a drifting 100k-line workload through a full-retrain
//! topic and an incremental topic side by side and proves the incremental path
//! converges to the same template groupings without a single stop-the-world
//! retrain.
//!
//! The base seed is `BYTEBRAIN_TEST_SEED` (default 1); CI runs a seed matrix.

use bytebrain_repro::bytebrain::incremental::DriftConfig;
use bytebrain_repro::bytebrain::matcher::match_batch;
use bytebrain_repro::bytebrain::NodeId;
use bytebrain_repro::datasets::{GeneratorConfig, LabeledDataset};
use bytebrain_repro::eval::ga::grouping_report;
use bytebrain_repro::service::{IngestConfig, LogTopic, MaintenancePolicy, Routing, TopicConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn base_seed() -> u64 {
    std::env::var("BYTEBRAIN_TEST_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

/// A seeded random workload: a generated corpus split into a warm-up prefix (cold-start
/// training) and the measured stream.
fn workload(dataset: &str, total: usize, warmup: usize) -> (Vec<String>, Vec<String>) {
    let config = GeneratorConfig::loghub2(dataset, total).with_seed(base_seed() ^ 0xD1FF);
    let ds = LabeledDataset::generate(&config);
    let (warm, stream) = ds.records.split_at(warmup);
    (warm.to_vec(), stream.to_vec())
}

/// The per-record template assignment of everything ingested after the warm-up.
fn assignment_after(topic: &LogTopic, warmup: usize) -> Vec<Option<NodeId>> {
    topic.records()[warmup..]
        .iter()
        .map(|r| r.template)
        .collect()
}

/// Reference behaviour: one batch `ingest` call over the whole stream.
fn batch_reference(
    warm: &[String],
    stream: &[String],
) -> (LogTopic, Vec<Option<NodeId>>, usize, usize) {
    let mut topic = LogTopic::new(TopicConfig::new("ref").with_volume_threshold(u64::MAX));
    topic.ingest(warm);
    let outcome = topic.ingest(stream);
    assert!(
        !outcome.trained,
        "reference run must not retrain mid-stream"
    );
    let assignment = assignment_after(&topic, warm.len());
    (topic, assignment, outcome.matched, outcome.unmatched)
}

#[test]
fn streaming_paths_agree_with_batch_ingest() {
    for dataset in ["Apache", "OpenSSH"] {
        let (warm, stream) = workload(dataset, 6_000, 2_500);
        let (_ref_topic, ref_assignment, ref_matched, ref_unmatched) =
            batch_reference(&warm, &stream);
        assert_eq!(ref_assignment.len(), stream.len());

        for routing in [Routing::RoundRobin, Routing::FirstTokenKey] {
            for workers in [1usize, 2, 4] {
                let mut topic =
                    LogTopic::new(TopicConfig::new("stream").with_volume_threshold(u64::MAX));
                topic.ingest(&warm);
                let config = IngestConfig::default()
                    .with_shards(4)
                    .with_batch_records(256)
                    .with_workers(workers)
                    .with_routing(routing);
                let result = topic.ingest_stream(stream.clone(), &config);
                let label = format!("{dataset}/{routing:?}/workers={workers}");
                assert_eq!(
                    result.outcome.matched, ref_matched,
                    "matched diverged for {label}"
                );
                assert_eq!(
                    result.outcome.unmatched, ref_unmatched,
                    "unmatched diverged for {label}"
                );
                assert!(!result.outcome.trained, "{label} must not retrain");
                assert_eq!(
                    result.stats.records(),
                    stream.len() as u64,
                    "stats lost records for {label}"
                );
                assert_eq!(
                    result.stats.matched() as usize,
                    ref_matched,
                    "per-shard matched counters diverged for {label}"
                );
                assert_eq!(
                    assignment_after(&topic, warm.len()),
                    ref_assignment,
                    "template assignment diverged for {label}"
                );
            }
        }
    }
}

#[test]
fn incremental_path_agrees_with_batch_ingest_on_stable_workloads() {
    // On a stable workload the drift detector stays quiet and the incremental
    // topic must behave byte-for-byte like the batch path — same template ids,
    // same stats, no maintenance.
    for dataset in ["Apache", "HDFS"] {
        let (warm, stream) = workload(dataset, 6_000, 2_500);
        let (_ref_topic, ref_assignment, ref_matched, ref_unmatched) =
            batch_reference(&warm, &stream);

        let mut topic = LogTopic::new(
            TopicConfig::new("inc")
                .with_volume_threshold(u64::MAX)
                .with_maintenance(MaintenancePolicy::Incremental {
                    // Thresholds a healthy workload never trips (the generated
                    // corpora keep a small unmatched tail of rare templates, so the
                    // rate bound sits far above it).
                    drift: DriftConfig::default()
                        .with_window(1_024)
                        .with_min_samples(256)
                        .with_max_unmatched_rate(0.5),
                    check_interval: 512,
                }),
        );
        topic.ingest(&warm);
        let result = topic.ingest_stream(
            stream.clone(),
            &IngestConfig::default()
                .with_shards(4)
                .with_batch_records(256),
        );
        assert_eq!(result.outcome.matched, ref_matched, "{dataset}: matched");
        assert_eq!(
            result.outcome.unmatched, ref_unmatched,
            "{dataset}: unmatched"
        );
        assert_eq!(
            result.outcome.maintained, 0,
            "{dataset}: spurious maintenance"
        );
        assert!(!result.outcome.trained);
        assert_eq!(
            assignment_after(&topic, warm.len()),
            ref_assignment,
            "{dataset}: incremental path diverged from batch path"
        );
    }
}

/// A drifting workload: the base family dominates early, a novel family ramps up to
/// dominance late. Deterministic for a given seed.
fn drifting_workload(total: usize, seed: u64) -> Vec<String> {
    let base = LabeledDataset::generate(
        &GeneratorConfig::loghub2("Apache", total).with_seed(seed ^ 0xBA5E),
    );
    let mut rng = StdRng::seed_from_u64(seed ^ 0xD21F7);
    let mut out = Vec::with_capacity(total);
    for (i, record) in base.records.iter().enumerate() {
        let progress = i as f64 / total as f64;
        // Drift family probability ramps from 0 (first half) to ~0.8 (end).
        let p_drift = ((progress - 0.5) * 1.6).max(0.0);
        if rng.gen_bool(p_drift.min(0.95)) {
            out.push(format!(
                "gpu worker {} evicted tensor block {} after {} allocations",
                rng.gen_range(0..8u32),
                rng.gen_range(0..500u32),
                rng.gen_range(1..10_000u32),
            ));
        } else {
            out.push(record.clone());
        }
    }
    out
}

/// Probe records from both families, freshly drawn (not part of the ingested stream).
fn probes(seed: u64, n: usize) -> Vec<String> {
    let base = LabeledDataset::generate(
        &GeneratorConfig::loghub2("Apache", n).with_seed(seed ^ 0x0907_6BE5),
    );
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0907_6BE6);
    base.records
        .iter()
        .enumerate()
        .map(|(i, record)| {
            if i % 2 == 0 {
                record.clone()
            } else {
                format!(
                    "gpu worker {} evicted tensor block {} after {} allocations",
                    rng.gen_range(0..8u32),
                    rng.gen_range(0..500u32),
                    rng.gen_range(1..10_000u32),
                )
            }
        })
        .collect()
}

#[test]
fn incremental_maintenance_converges_with_full_retrain_on_drifting_workload() {
    const TOTAL: usize = 100_000;
    const CHUNK: usize = 10_000;
    let seed = base_seed();
    let stream = drifting_workload(TOTAL, seed);

    // Full-retrain topic: volume trigger fires repeatedly, each firing a
    // stop-the-world retrain (bounded training buffer keeps each one tractable).
    let mut full_config = TopicConfig::new("drift-full").with_volume_threshold(40_000);
    full_config.training_buffer = 12_000;
    let mut full_topic = LogTopic::new(full_config);

    // Incremental topic: same triggers, but drift detection + delta folding.
    let mut inc_config = TopicConfig::new("drift-inc")
        .with_volume_threshold(40_000)
        .with_maintenance(MaintenancePolicy::Incremental {
            drift: DriftConfig::default()
                .with_window(2_048)
                .with_min_samples(512)
                .with_max_unmatched_rate(0.1),
            check_interval: 2_048,
        });
    inc_config.training_buffer = 12_000;
    let mut inc_topic = LogTopic::new(inc_config);

    let ingest = IngestConfig::default()
        .with_shards(4)
        .with_batch_records(1_024);
    for chunk in stream.chunks(CHUNK) {
        full_topic.ingest_stream(chunk.to_vec(), &ingest);
        inc_topic.ingest_stream(chunk.to_vec(), &ingest);
    }

    let full_stats = full_topic.stats();
    let inc_stats = inc_topic.stats();
    eprintln!(
        "[differential] full: {} retrains (last {:.2}s); incremental: {} retrain, {} maintenance runs (last {:.3}s)",
        full_stats.training_runs,
        full_stats.last_training_seconds,
        inc_stats.training_runs,
        inc_stats.maintenance_runs,
        inc_stats.last_maintenance_seconds,
    );
    // The full-retrain topic paid repeated stop-the-world pauses; the incremental
    // topic trained exactly once (cold start) and absorbed the drift as deltas.
    assert!(
        full_stats.training_runs >= 3,
        "drift must retrain repeatedly"
    );
    assert_eq!(
        inc_stats.training_runs, 1,
        "incremental path must not retrain"
    );
    assert!(inc_stats.maintenance_runs >= 1, "drift must be absorbed");

    // Convergence: fresh probes from both families group identically under both
    // maintenance strategies, and both models cover the drifted workload.
    let probe_records = probes(seed, 2_000);
    let preprocessor = full_topic.preprocessor_snapshot();
    let full_results = match_batch(full_topic.model(), &preprocessor, &probe_records, 2);
    let inc_results = match_batch(inc_topic.model(), &preprocessor, &probe_records, 2);
    let full_matched = full_results.iter().filter(|r| r.is_matched()).count();
    let inc_matched = inc_results.iter().filter(|r| r.is_matched()).count();
    assert!(
        full_matched as f64 >= 0.98 * probe_records.len() as f64,
        "full-retrain model must cover the workload ({full_matched}/{})",
        probe_records.len()
    );
    assert!(
        inc_matched as f64 >= 0.98 * probe_records.len() as f64,
        "incremental model must cover the workload ({inc_matched}/{})",
        probe_records.len()
    );
    // Partition agreement: the two tree *shapes* legitimately differ below the
    // saturation threshold (the whole point of query-time precision), so probes are
    // grouped the way every evaluation in this repo groups them — by the template
    // resolved at the standard threshold (0.6), compared as normalized template
    // text. Unmatched probes become singletons.
    let label = |model: &bytebrain_repro::bytebrain::ParserModel,
                 results: &[bytebrain_repro::bytebrain::MatchResult]|
     -> Vec<usize> {
        use bytebrain_repro::bytebrain::merge_consecutive_wildcards;
        use bytebrain_repro::bytebrain::query::{presentation_template, resolve_with_threshold};
        let mut interner: std::collections::HashMap<String, usize> =
            std::collections::HashMap::new();
        results
            .iter()
            .enumerate()
            .map(|(i, r)| match r.node {
                Some(id) => {
                    let resolved = resolve_with_threshold(model, id, 0.6);
                    let text = merge_consecutive_wildcards(&presentation_template(model, resolved));
                    let next = interner.len();
                    *interner.entry(text).or_insert(next)
                }
                None => 1_000_000 + i,
            })
            .collect()
    };
    let full_labels = label(full_topic.model(), &full_results);
    let inc_labels = label(inc_topic.model(), &inc_results);
    let agreement = grouping_report(&inc_labels, &full_labels).accuracy();
    eprintln!("[differential] grouping agreement incremental vs full retrain: {agreement:.4}");
    assert!(
        agreement >= 0.9,
        "incremental maintenance diverged from full retrain: agreement {agreement:.4}"
    );
}

/// The indexed query path (postings aggregated up the saturation ladder) must return
/// **byte-identical** `group_by_template` output to the retained per-record scan path —
/// across thresholds (including pathological ones), maintenance policies, and the
/// seeded workload matrix CI sweeps via `BYTEBRAIN_TEST_SEED`.
#[test]
fn indexed_query_path_is_byte_identical_to_scan_path() {
    use bytebrain_repro::service::{QueryEngine, QueryOptions};

    let seed = base_seed();
    let thresholds = [
        0.0,
        0.15,
        0.3,
        0.45,
        0.6,
        0.75,
        0.9,
        1.0,
        f64::NAN, // clamps to the default
        -1.0,     // clamps to 0
        2.0,      // clamps to 1
    ];

    // One topic per maintenance policy, both driven by the same drifting workload so
    // the incremental topic's tree contains patched nodes, appended subtrees and
    // retired temporaries — the shapes where the two paths historically diverged.
    let stream = drifting_workload(20_000, seed);
    let policies: Vec<(&str, TopicConfig)> = vec![
        (
            "full-retrain",
            TopicConfig::new("diff-full").with_volume_threshold(8_000),
        ),
        (
            "incremental",
            TopicConfig::new("diff-inc")
                .with_volume_threshold(8_000)
                .with_maintenance(MaintenancePolicy::Incremental {
                    drift: DriftConfig::default()
                        .with_window(1_024)
                        .with_min_samples(256)
                        .with_max_unmatched_rate(0.1),
                    check_interval: 1_024,
                }),
        ),
    ];
    for (label, mut config) in policies {
        config.training_buffer = 12_000;
        let mut topic = LogTopic::new(config);
        let ingest = IngestConfig::default()
            .with_shards(4)
            .with_batch_records(512);
        for chunk in stream.chunks(5_000) {
            topic.ingest_stream(chunk.to_vec(), &ingest);
        }
        if label == "incremental" {
            assert!(
                topic.stats().maintenance_runs >= 1,
                "the incremental topic must have absorbed drift"
            );
        }
        let engine = QueryEngine::new(&topic);
        for &threshold in &thresholds {
            for limit in [usize::MAX, 5] {
                let options = QueryOptions {
                    saturation_threshold: threshold,
                    limit,
                };
                let indexed = engine.group_by_template(options);
                let scanned = engine.group_by_template_scan(options);
                assert_eq!(
                    indexed, scanned,
                    "indexed and scan paths diverged ({label}, threshold {threshold}, \
                     limit {limit})"
                );
            }
            // The counts-only distribution agrees with the full grouping — and
            // comes back in the canonical deterministic order (count descending,
            // template ascending).
            let distribution = topic.template_distribution(threshold);
            let mut from_groups: Vec<(String, u64)> = engine
                .group_by_template(QueryOptions {
                    saturation_threshold: threshold,
                    limit: usize::MAX,
                })
                .into_iter()
                .map(|g| (g.template, g.record_indices.len() as u64))
                .collect();
            from_groups.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
            assert_eq!(
                distribution, from_groups,
                "distribution diverged from grouping ({label}, threshold {threshold})"
            );
        }
        // The snapshot (the concurrent-serving surface) agrees with the live topic.
        let snapshot = topic.query_snapshot();
        let options = QueryOptions::default();
        assert_eq!(
            snapshot.group_by_template(options),
            engine.group_by_template(options),
            "snapshot diverged from the live topic ({label})"
        );
    }
}

/// The compiled automaton match path must be **byte-identical** to the tree
/// walker it replaces: same per-record template assignment, same match stats —
/// across batch ingest, both stream routings, and the incremental-maintenance
/// path where the compiled snapshot is hot-swapped mid-stream at every delta
/// boundary. Runs under the CI seed matrix via `BYTEBRAIN_TEST_SEED`.
#[test]
fn automaton_match_path_is_byte_identical_to_tree_walk() {
    use bytebrain_repro::service::MatchEngine;

    let engine_topic = |engine: MatchEngine, warm: &[String]| {
        let mut topic = LogTopic::new(
            TopicConfig::new("engine")
                .with_volume_threshold(u64::MAX)
                .with_match_engine(engine),
        );
        topic.ingest(warm);
        topic
    };

    for dataset in ["Apache", "OpenSSH"] {
        let (warm, stream) = workload(dataset, 6_000, 2_500);

        // Batch `ingest`.
        let mut tree = engine_topic(MatchEngine::TreeWalk, &warm);
        let mut auto = engine_topic(MatchEngine::Automaton, &warm);
        let tree_out = tree.ingest(&stream);
        let auto_out = auto.ingest(&stream);
        assert_eq!(
            auto_out.matched, tree_out.matched,
            "{dataset}: batch matched"
        );
        assert_eq!(
            auto_out.unmatched, tree_out.unmatched,
            "{dataset}: batch unmatched"
        );
        assert_eq!(
            assignment_after(&auto, warm.len()),
            assignment_after(&tree, warm.len()),
            "{dataset}: batch assignment diverged between engines"
        );

        // Streaming, both shard routings.
        for routing in [Routing::RoundRobin, Routing::FirstTokenKey] {
            let config = IngestConfig::default()
                .with_shards(4)
                .with_batch_records(256)
                .with_workers(2)
                .with_routing(routing);
            let mut tree = engine_topic(MatchEngine::TreeWalk, &warm);
            let mut auto = engine_topic(MatchEngine::Automaton, &warm);
            let tree_res = tree.ingest_stream(stream.clone(), &config);
            let auto_res = auto.ingest_stream(stream.clone(), &config);
            let label = format!("{dataset}/{routing:?}");
            assert_eq!(
                auto_res.outcome.matched, tree_res.outcome.matched,
                "{label}: stream matched"
            );
            assert_eq!(
                auto_res.outcome.unmatched, tree_res.outcome.unmatched,
                "{label}: stream unmatched"
            );
            assert_eq!(
                auto_res.stats.matched(),
                tree_res.stats.matched(),
                "{label}: shard counters"
            );
            assert_eq!(
                assignment_after(&auto, warm.len()),
                assignment_after(&tree, warm.len()),
                "{label}: stream assignment diverged between engines"
            );
        }
    }

    // Incremental maintenance over a drifting stream: deltas are folded in
    // mid-stream and the compiled snapshot is hot-swapped at every boundary
    // (`swap_model` carries the model/automaton pair into the running
    // ingestion engine). Both engines must still assign every record
    // identically.
    let seed = base_seed();
    let stream = drifting_workload(40_000, seed);
    let maintained_topic = |engine: MatchEngine| {
        let mut config = TopicConfig::new("engine-inc")
            .with_volume_threshold(u64::MAX)
            .with_match_engine(engine)
            .with_maintenance(MaintenancePolicy::Incremental {
                drift: DriftConfig::default()
                    .with_window(1_024)
                    .with_min_samples(256)
                    .with_max_unmatched_rate(0.1),
                check_interval: 1_024,
            });
        config.training_buffer = 12_000;
        LogTopic::new(config)
    };
    let mut tree = maintained_topic(MatchEngine::TreeWalk);
    let mut auto = maintained_topic(MatchEngine::Automaton);
    let ingest = IngestConfig::default()
        .with_shards(4)
        .with_batch_records(512);
    // Cold-start both topics, then drive the drifting tail as ONE stream call
    // so maintenance (and the snapshot hot-swap) happens mid-stream.
    tree.ingest(&stream[..8_000]);
    auto.ingest(&stream[..8_000]);
    let tree_res = tree.ingest_stream(stream[8_000..].to_vec(), &ingest);
    let auto_res = auto.ingest_stream(stream[8_000..].to_vec(), &ingest);
    assert!(
        auto_res.outcome.maintained >= 1,
        "drift must trigger mid-stream maintenance on the automaton path"
    );
    assert_eq!(
        auto_res.outcome.maintained, tree_res.outcome.maintained,
        "maintenance cadence diverged between engines"
    );
    assert_eq!(
        auto_res.outcome.matched, tree_res.outcome.matched,
        "drift stream matched diverged"
    );
    assert_eq!(
        auto_res.outcome.unmatched, tree_res.outcome.unmatched,
        "drift stream unmatched diverged"
    );
    let template_of = |topic: &LogTopic| -> Vec<Option<NodeId>> {
        topic.records().iter().map(|r| r.template).collect()
    };
    assert_eq!(
        template_of(&auto),
        template_of(&tree),
        "assignment diverged across the mid-stream hot-swap"
    );
    assert_eq!(auto.stats().maintenance_runs, tree.stats().maintenance_runs);
    assert_eq!(auto.stats().training_runs, tree.stats().training_runs);
}

/// Every AST operator must be **byte-identical** between the planned push-down
/// path ([`QueryEngine::execute`]: batched ladder resolution, postings, segment
/// pruning, aggregation) and the naive scan oracle ([`QueryEngine::execute_scan`]:
/// per-record ancestor walks, no postings, no pruning) — over durable topics,
/// under both maintenance policies, with mid-stream delta maintenance, and after
/// kill-and-open crash recovery (where summaries are recomputed from the decoded
/// segments). Runs under the CI seed matrix via `BYTEBRAIN_TEST_SEED`.
#[test]
fn planned_operators_match_scan_oracle_under_maintenance_and_recovery() {
    use bytebrain_repro::bytebrain::{Predicate, Query, QueryPlan};
    use bytebrain_repro::service::{QueryEngine, StorageConfig};

    // Auth-style records carry variables worth filtering on (user ids, IPs);
    // the scrubber family is novel relative to the warm-up, so streaming it
    // into the incremental topic trips the drift detector mid-stream.
    let auth_batch = |offset: usize, n: usize| -> Vec<String> {
        (0..n)
            .map(|i| {
                format!(
                    "user u{} logged {} from 10.0.{}.{}",
                    (offset + i) % 40,
                    if (offset + i).is_multiple_of(3) {
                        "out"
                    } else {
                        "in"
                    },
                    (offset + i) % 16,
                    (offset + i) % 250,
                )
            })
            .collect()
    };
    let scrub_batch = |offset: usize, n: usize| -> Vec<String> {
        (0..n)
            .map(|i| {
                format!(
                    "disk scrubber pass {} repaired sector {} on volume vol-{}",
                    (offset + i) % 7,
                    offset + i,
                    (offset + i) % 3
                )
            })
            .collect()
    };

    // One plan per operator, plus a composed query mixing all predicate kinds.
    let battery = |records: u64| -> Vec<(&'static str, QueryPlan)> {
        vec![
            ("group_by", Query::group_by().plan().unwrap()),
            ("top_k", Query::top_k(3).at_threshold(0.6).plan().unwrap()),
            ("distribution", Query::distribution().plan().unwrap()),
            ("count_distinct", Query::count_distinct().plan().unwrap()),
            (
                "text_predicate",
                Query::group_by()
                    .filter(Predicate::template_matches("logged (in|out)"))
                    .plan()
                    .unwrap(),
            ),
            (
                "variable_equals",
                Query::group_by()
                    .filter(Predicate::variable_equals("u3"))
                    .plan()
                    .unwrap(),
            ),
            (
                "variable_contains",
                Query::distribution()
                    .filter(Predicate::variable_contains("10.0."))
                    .plan()
                    .unwrap(),
            ),
            (
                "time_window",
                Query::distribution()
                    .filter(Predicate::time_window(records / 4, records / 2))
                    .plan()
                    .unwrap(),
            ),
            (
                "composed",
                Query::top_k(5)
                    .at_threshold(0.75)
                    .filter(
                        Predicate::variable_equals("u7").or(Predicate::time_window(0, records / 2)
                            .and(Predicate::variable_contains("10.0.3").not())),
                    )
                    .plan()
                    .unwrap(),
            ),
        ]
    };

    let assert_agree = |topic: &LogTopic, ctx: &str| {
        let engine = QueryEngine::new(topic);
        for (name, plan) in battery(topic.records().len() as u64) {
            assert_eq!(
                engine.execute(&plan),
                engine.execute_scan(&plan),
                "planned path diverged from scan oracle: {ctx}/{name}"
            );
        }
    };

    let scratch = |tag: &str| {
        let dir = std::env::temp_dir().join(format!("bb-diff-ast-{tag}-{}", std::process::id()));
        if dir.exists() {
            std::fs::remove_dir_all(&dir).expect("clear stale scratch dir");
        }
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        dir
    };
    let storage = StorageConfig::default()
        .with_segment_records(64)
        .with_fsync(false);

    // --- Full-retrain policy: volume triggers fire stop-the-world retrains. ---
    let dir = scratch("full");
    let config = TopicConfig::new("ast-full").with_volume_threshold(300);
    let mut topic = LogTopic::durable(config, &dir, storage.clone()).expect("create durable topic");
    topic.ingest(&auth_batch(0, 250));
    assert_agree(&topic, "full/after-ingest");
    topic.ingest(&auth_batch(250, 200)); // crosses the volume threshold → retrain
    topic.ingest(&scrub_batch(0, 150));
    assert!(topic.stats().training_runs >= 1, "retrain must have fired");
    assert_agree(&topic, "full/after-retrain");
    drop(topic); // kill: all in-process state gone
    let recovered = LogTopic::open(&dir, storage.clone()).expect("recover topic");
    assert_agree(&recovered, "full/after-recovery");
    std::fs::remove_dir_all(&dir).ok();

    // --- Incremental policy: drift folds deltas in mid-stream. ---
    let dir = scratch("inc");
    let config = TopicConfig::new("ast-inc")
        .with_volume_threshold(100_000)
        .with_maintenance(MaintenancePolicy::Incremental {
            drift: DriftConfig::default()
                .with_window(200)
                .with_min_samples(50)
                .with_max_unmatched_rate(0.3),
            check_interval: 64,
        });
    let mut topic = LogTopic::durable(config, &dir, storage.clone()).expect("create durable topic");
    topic.ingest(&auth_batch(0, 300));
    assert_agree(&topic, "inc/after-ingest");
    let stream_config = IngestConfig::default()
        .with_shards(2)
        .with_batch_records(64);
    topic.ingest_stream(scrub_batch(0, 400), &stream_config);
    assert!(
        topic.stats().maintenance_runs >= 1,
        "drift maintenance must have produced at least one delta"
    );
    // Sealed pre-delta segments are now stale for variable pruning; the
    // differential proves the staleness rule keeps the planned path exact.
    assert_agree(&topic, "inc/after-delta");
    topic.ingest(&auth_batch(300, 150)); // fresh post-delta records (and segments)
    assert_agree(&topic, "inc/after-delta-ingest");
    drop(topic);
    let recovered = LogTopic::open(&dir, storage).expect("recover topic");
    assert_agree(&recovered, "inc/after-recovery");
    std::fs::remove_dir_all(&dir).ok();
}
