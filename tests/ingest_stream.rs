//! Cross-crate tests of the sharded streaming ingestion engine at scale: a 100k-line
//! synthetic corpus flows through ≥ 4 shards with batched parallel matching, both via
//! the raw [`StreamIngestor`] and via the topic/manager entry points.

use bytebrain_repro::bytebrain::train::train;
use bytebrain_repro::bytebrain::TrainConfig;
use bytebrain_repro::datasets::LabeledDataset;
use bytebrain_repro::logtok::Preprocessor;
use bytebrain_repro::service::{
    IngestConfig, LogTopic, ServiceManager, StreamIngestor, TenantDefaults, TopicConfig,
};
use std::sync::Arc;

#[test]
fn stream_ingestor_handles_100k_lines_through_four_shards() {
    let corpus = LabeledDataset::loghub2("Apache", 100_000);
    // Train on a prefix; stream the full corpus against the snapshot.
    let config = TrainConfig::default();
    let model = Arc::new(train(&corpus.records[..10_000], &config).model);
    let preprocessor = Arc::new(Preprocessor::new(config.preprocess.clone()));

    let ingest = IngestConfig::default()
        .with_shards(4)
        .with_batch_records(1_024)
        .with_workers(4);
    let mut ingestor = StreamIngestor::new(model, preprocessor, ingest);
    for record in &corpus.records {
        ingestor.push(record.clone());
    }
    let report = ingestor.finish();

    // Every line came back, in arrival order.
    assert_eq!(report.records.len(), 100_000);
    assert!(report.records.windows(2).all(|w| w[0].seq < w[1].seq));

    // All four shards did real batched work.
    assert_eq!(report.stats.shards.len(), 4);
    for (shard, counters) in report.stats.shards.iter().enumerate() {
        assert_eq!(counters.records, 25_000, "shard {shard} starved");
        assert!(
            counters.batches >= 20,
            "shard {shard} did not batch: {counters:?}"
        );
    }
    assert_eq!(
        report.stats.submitted_batches,
        report.stats.completed_batches
    );

    // The trained prefix covers the corpus shape: the stream overwhelmingly matches.
    let matched_ratio = report.matched() as f64 / 100_000.0;
    assert!(
        matched_ratio > 0.95,
        "only {matched_ratio:.3} of the stream matched"
    );
    eprintln!(
        "[ingest_stream] 100k lines, 4 shards: {:.0} records/s, {} batches, {} backpressure waits",
        report.records_per_second(),
        report.stats.submitted_batches,
        report.stats.backpressure_waits
    );
}

#[test]
fn topic_ingest_stream_matches_batch_ingest_semantics() {
    let corpus = LabeledDataset::loghub2("OpenSSH", 12_000);
    let (first, rest) = corpus.records.split_at(4_000);

    // Batch topic: the reference behaviour.
    let mut batch_topic =
        LogTopic::new(TopicConfig::new("ssh-batch").with_volume_threshold(1_000_000));
    batch_topic.ingest(first);
    let batch_outcome = batch_topic.ingest(rest);

    // Streaming topic over the same data: cold-start batch, then streamed.
    let mut stream_topic =
        LogTopic::new(TopicConfig::new("ssh-stream").with_volume_threshold(1_000_000));
    stream_topic.ingest(first);
    let stream_result =
        stream_topic.ingest_stream(rest.to_vec(), &IngestConfig::default().with_shards(4));

    // Same records stored, same match totals (matching is deterministic against the
    // same model), stats populated.
    assert_eq!(stream_topic.records().len(), batch_topic.records().len());
    assert_eq!(
        stream_result.outcome.matched + stream_result.outcome.unmatched,
        rest.len()
    );
    assert_eq!(stream_result.outcome.matched, batch_outcome.matched);
    assert_eq!(stream_result.outcome.unmatched, batch_outcome.unmatched);
    assert_eq!(stream_result.stats.records(), rest.len() as u64);
    // Streamed records are stored in arrival order.
    for (stored, original) in stream_topic.records().iter().skip(4_000).zip(rest) {
        assert_eq!(&stored.record, original);
    }
}

#[test]
fn manager_ingest_stream_routes_to_tenant_topics() {
    let mut manager = ServiceManager::new();
    manager.set_tenant_defaults(
        "acme",
        TenantDefaults {
            volume_threshold: 1_000_000,
            parallelism: 4,
            ..TenantDefaults::default()
        },
    );
    let corpus = LabeledDataset::loghub2("HDFS", 9_000);
    let (train_part, stream_part) = corpus.records.split_at(3_000);
    manager.ingest("acme", "hdfs", train_part);
    let result = manager.ingest_stream(
        "acme",
        "hdfs",
        stream_part.to_vec(),
        &IngestConfig::default().with_shards(4),
    );
    assert_eq!(
        result.outcome.matched + result.outcome.unmatched,
        stream_part.len()
    );
    assert!(result.stats.shards.iter().all(|s| s.records > 0));
    let stats = manager.topic("acme", "hdfs").unwrap().stats();
    assert_eq!(stats.total_records, corpus.records.len() as u64);
}
