//! Cross-crate integration tests: ByteBrain accuracy on the synthetic LogHub corpora.

use bytebrain::{ByteBrainParser, TrainConfig};
use datasets::LabeledDataset;
use eval::grouping_accuracy;

fn ga_on(dataset: &str, threshold: f64) -> f64 {
    let ds = LabeledDataset::loghub(dataset);
    let mut parser = ByteBrainParser::new(TrainConfig::default());
    let predicted = parser.parse_with_threshold(&ds.records, threshold);
    grouping_accuracy(&predicted, &ds.labels)
}

#[test]
fn bytebrain_accuracy_on_simple_datasets() {
    for dataset in ["Apache", "HDFS", "Proxifier"] {
        let ga = ga_on(dataset, 0.6);
        assert!(ga > 0.75, "grouping accuracy on {dataset} too low: {ga:.3}");
    }
}

#[test]
fn bytebrain_accuracy_on_complex_datasets() {
    for dataset in ["OpenSSH", "Zookeeper", "HealthApp"] {
        let ga = ga_on(dataset, 0.6);
        assert!(ga > 0.6, "grouping accuracy on {dataset} too low: {ga:.3}");
    }
}

#[test]
fn threshold_sweep_keeps_reasonable_accuracy() {
    // Fig. 11: accuracy should be relatively stable across a range of thresholds.
    let ds = LabeledDataset::loghub("HDFS");
    let mut values = Vec::new();
    for threshold in [0.2, 0.4, 0.6, 0.8] {
        let mut parser = ByteBrainParser::new(TrainConfig::default());
        let predicted = parser.parse_with_threshold(&ds.records, threshold);
        values.push(grouping_accuracy(&predicted, &ds.labels));
    }
    let max = values.iter().cloned().fold(f64::MIN, f64::max);
    assert!(
        max > 0.8,
        "best threshold should exceed 0.8 GA, got {values:?}"
    );
}
