//! Nightly soak test for the automaton match path (run with `--ignored`).
//!
//! A 1M-line drifting generator stream flows through sharded streaming
//! ingestion with incremental maintenance on the compiled-automaton engine,
//! while every chunk's query snapshot is interrogated from a concurrent thread
//! as the next chunk ingests. Invariants held throughout:
//!
//! * zero retired-template leakage — no query group ever points at a retired
//!   node and no stored record ever sits on a retired template;
//! * monotone record counts — topic totals and snapshot postings only grow,
//!   and every snapshot's groups cover exactly its postings.
//!
//! Line volume can be scaled down for local runs with `BYTEBRAIN_SOAK_LINES`.

use bytebrain_repro::bytebrain::incremental::DriftConfig;
use bytebrain_repro::datasets::{GeneratorConfig, LabeledDataset};
use bytebrain_repro::service::{
    IngestConfig, LogTopic, MaintenancePolicy, MatchEngine, QueryOptions, TopicConfig,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn soak_lines() -> usize {
    std::env::var("BYTEBRAIN_SOAK_LINES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1_000_000)
}

fn base_seed() -> u64 {
    std::env::var("BYTEBRAIN_TEST_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

/// One chunk of the drifting stream: the Apache base family mixed with an
/// escalating share of novel families as `progress` advances, so incremental
/// maintenance keeps firing (new temporaries, deltas, retirements) for the
/// whole run rather than only at the start.
fn chunk(progress: f64, len: usize, seed: u64) -> Vec<String> {
    let base =
        LabeledDataset::generate(&GeneratorConfig::loghub2("Apache", len).with_seed(seed ^ 0x50AC));
    let mut rng = StdRng::seed_from_u64(seed ^ 0x50AD);
    base.records
        .iter()
        .map(|record| {
            let p_drift = (progress * 0.8).min(0.8);
            if rng.gen_bool(p_drift) {
                match rng.gen_range(0..3u32) {
                    0 => format!(
                        "gpu worker {} evicted tensor block {} after {} allocations",
                        rng.gen_range(0..8u32),
                        rng.gen_range(0..500u32),
                        rng.gen_range(1..10_000u32),
                    ),
                    1 => format!(
                        "circuit breaker opened for upstream svc-{} attempt {}",
                        rng.gen_range(0..12u32),
                        rng.gen_range(0..40u32),
                    ),
                    _ => format!(
                        "compaction of shard {} reclaimed {} bytes in {}ms",
                        rng.gen_range(0..64u32),
                        rng.gen_range(0..1_000_000u64),
                        rng.gen_range(0..5_000u32),
                    ),
                }
            } else {
                record.clone()
            }
        })
        .collect()
}

#[test]
#[ignore = "nightly soak: ~1M lines, run with --ignored"]
fn soak_automaton_stream_with_concurrent_queries() {
    const CHUNK: usize = 20_000;
    let total = soak_lines();
    let seed = base_seed();

    let mut config = TopicConfig::new("soak")
        .with_volume_threshold(u64::MAX)
        .with_match_engine(MatchEngine::Automaton)
        .with_maintenance(MaintenancePolicy::Incremental {
            drift: DriftConfig::default()
                .with_window(2_048)
                .with_min_samples(512)
                .with_max_unmatched_rate(0.05),
            check_interval: 2_048,
        });
    config.training_buffer = 16_000;
    let mut topic = LogTopic::new(config);
    assert_eq!(topic.match_engine(), MatchEngine::Automaton);

    let ingest = IngestConfig::default()
        .with_shards(4)
        .with_batch_records(1_024)
        .with_workers(2);
    let thresholds = [0.0, 0.3, 0.6, 0.9, 1.0];

    let chunks = total.div_ceil(CHUNK);
    let mut ingested = 0usize;
    let mut last_snapshot_records = 0usize;
    for i in 0..chunks {
        let len = CHUNK.min(total - ingested);
        let progress = i as f64 / chunks.max(1) as f64;
        let batch = chunk(progress, len, seed ^ (i as u64) << 8);

        // Query the pre-chunk snapshot from a concurrent thread while the
        // chunk ingests (the production serving pattern: immutable snapshots
        // answer queries while the live topic moves on).
        let snapshot = topic.query_snapshot();
        std::thread::scope(|scope| {
            let verifier = scope.spawn(move || {
                let records = snapshot.records();
                for &threshold in &thresholds {
                    let groups = snapshot.group_by_template(QueryOptions {
                        saturation_threshold: threshold,
                        limit: usize::MAX,
                    });
                    let covered: usize = groups.iter().map(|g| g.count()).sum();
                    assert_eq!(
                        covered, records,
                        "snapshot groups must cover all postings (threshold {threshold})"
                    );
                    for group in &groups {
                        assert!(
                            !snapshot.model().nodes[group.node.0].retired,
                            "retired template leaked into snapshot query: {}",
                            group.template
                        );
                    }
                }
                records
            });
            topic.ingest_stream(batch, &ingest);
            let records = verifier.join().expect("query thread panicked");
            assert!(
                records >= last_snapshot_records,
                "snapshot postings went backwards: {records} < {last_snapshot_records}"
            );
            last_snapshot_records = records;
        });

        ingested += len;
        let stats = topic.stats();
        assert_eq!(
            stats.total_records, ingested as u64,
            "record count must track ingested volume exactly"
        );
        // Live-topic leakage check: no stored record on a retired template.
        let model = topic.model();
        for record in topic.records() {
            if let Some(node) = record.template {
                assert!(
                    !model.nodes[node.0].retired,
                    "stored record sits on retired template after chunk {i}"
                );
            }
        }
    }

    let stats = topic.stats();
    eprintln!(
        "[soak] {} lines, {} training runs, {} maintenance runs, {} templates, {} retired slots",
        ingested,
        stats.training_runs,
        stats.maintenance_runs,
        stats.templates,
        topic.model().retired_count(),
    );
    assert_eq!(stats.training_runs, 1, "cold start only — no retrains");
    assert!(
        stats.maintenance_runs >= 1,
        "drift must have been absorbed incrementally"
    );
    assert!(
        topic.model().retired_count() > 0,
        "absorbed temporaries must leave retired slots (the leakage hazard)"
    );
}
