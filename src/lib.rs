//! `bytebrain-repro` — umbrella crate for the ByteBrain-LogParser reproduction.
//!
//! Re-exports every workspace crate so examples and integration tests can use a single
//! dependency. See `README.md` for the project overview and `ARCHITECTURE.md` for the
//! system design and experiment index.

pub use baselines;
pub use bytebrain;
pub use datasets;
pub use eval;
pub use logregex;
pub use logtok;
pub use service;
