//! `bytebrain-repro` — umbrella crate for the ByteBrain-LogParser reproduction.
//!
//! Re-exports every workspace crate so examples and integration tests can use a single
//! dependency. See `README.md` for the project overview and `DESIGN.md` for the system
//! inventory and experiment index.

pub use baselines;
pub use bytebrain;
pub use datasets;
pub use eval;
pub use logregex;
pub use logtok;
pub use service;
