//! Offline stand-in for `serde_json`: renders and parses the [`serde::Value`] data
//! model used by the vendored `serde` shim. Supports the full JSON grammar the
//! workspace produces (objects, arrays, strings with escapes, integers, floats, bools,
//! null).

pub use serde::{Error, Value};
use std::fmt::Write as _;

/// Serialize a value to compact JSON.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.serialize(), &mut out, None, 0);
    Ok(out)
}

/// Serialize a value to pretty-printed JSON (two-space indentation).
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.serialize(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parse JSON text into a `T`.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse_value(text)?;
    T::deserialize(&value)
}

// --- rendering --------------------------------------------------------------------------

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(value: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    let (open_sep, item_sep, pad, close_pad): (String, String, String, String) = match indent {
        Some(width) => {
            let pad = " ".repeat(width * (depth + 1));
            let close = " ".repeat(width * depth);
            ("\n".to_string(), ",\n".to_string(), pad, close)
        }
        None => (String::new(), ",".to_string(), String::new(), String::new()),
    };
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(u) => {
            let _ = write!(out, "{u}");
        }
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::Float(f) => {
            if f.is_finite() {
                if f.fract() == 0.0 && f.abs() < 1e15 {
                    // Keep integral floats distinguishable from integers.
                    let _ = write!(out, "{f:.1}");
                } else {
                    let _ = write!(out, "{f}");
                }
            } else {
                // JSON has no Inf/NaN; null is serde_json's lossy default.
                out.push_str("null");
            }
        }
        Value::String(s) => write_escaped(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            out.push_str(&open_sep);
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(&item_sep);
                }
                out.push_str(&pad);
                write_value(item, out, indent, depth + 1);
            }
            out.push_str(&open_sep);
            out.push_str(&close_pad);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            out.push_str(&open_sep);
            for (i, (key, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push_str(&item_sep);
                }
                out.push_str(&pad);
                write_escaped(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, depth + 1);
            }
            out.push_str(&open_sep);
            out.push_str(&close_pad);
            out.push('}');
        }
    }
}

// --- parsing ----------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, msg: &str) -> Error {
        Error::msg(format!("JSON parse error at byte {}: {msg}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected {:?}", b as char)))
        }
    }

    fn parse(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek().ok_or_else(|| self.error("unexpected end"))? {
            b'{' => self.parse_object(),
            b'[' => self.parse_array(),
            b'"' => Ok(Value::String(self.parse_string()?)),
            b't' => self.parse_keyword("true", Value::Bool(true)),
            b'f' => self.parse_keyword("false", Value::Bool(false)),
            b'n' => self.parse_keyword("null", Value::Null),
            _ => self.parse_number(),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected `{word}`")))
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.error("expected `,` or `}`")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]`")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self
                .peek()
                .ok_or_else(|| self.error("unterminated string"))?
            {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    match self.peek().ok_or_else(|| self.error("bad escape"))? {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.error("short \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.error("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("bad \\u escape"))?;
                            // Surrogate pairs are not produced by our writer; map lone
                            // surrogates to the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(self.error(&format!("bad escape \\{}", other as char))),
                    }
                    self.pos += 1;
                }
                _ => {
                    // Copy a full UTF-8 scalar.
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.error("invalid UTF-8"))?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        if text.is_empty() || text == "-" {
            return Err(self.error("invalid number"));
        }
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| self.error("invalid float"))
        } else if let Some(stripped) = text.strip_prefix('-') {
            stripped
                .parse::<u64>()
                .map_err(|_| self.error("integer overflow"))
                .and_then(|u| {
                    i64::try_from(u)
                        .map(|i| Value::Int(-i))
                        .map_err(|_| self.error("integer overflow"))
                })
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| self.error("integer overflow"))
        }
    }
}

/// Parse JSON text into a [`Value`].
pub fn parse_value(text: &str) -> Result<Value, Error> {
    let mut parser = Parser::new(text);
    let value = parser.parse()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing characters"));
    }
    Ok(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        for text in ["null", "true", "false", "0", "42", "-7", "3.5", "\"hi\""] {
            let v = parse_value(text).unwrap();
            let mut out = String::new();
            write_value(&v, &mut out, None, 0);
            assert_eq!(out, text);
        }
    }

    #[test]
    fn round_trips_nested_structures() {
        let text = r#"{"a":[1,2,{"b":"x\ny"}],"c":null,"d":18446744073709551615}"#;
        let v = parse_value(text).unwrap();
        let mut out = String::new();
        write_value(&v, &mut out, None, 0);
        assert_eq!(out, text);
    }

    #[test]
    fn u64_max_survives() {
        let v = parse_value("18446744073709551615").unwrap();
        assert_eq!(v, Value::UInt(u64::MAX));
    }

    #[test]
    fn pretty_printing_is_parseable() {
        let v = parse_value(r#"{"x":[1,2],"y":{"z":true}}"#).unwrap();
        let mut out = String::new();
        write_value(&v, &mut out, Some(2), 0);
        assert!(out.contains('\n'));
        assert_eq!(parse_value(&out).unwrap(), v);
    }

    #[test]
    fn errors_on_garbage() {
        assert!(parse_value("{invalid").is_err());
        assert!(parse_value("[1,2,").is_err());
        assert!(parse_value("12 34").is_err());
    }
}
