//! Offline stand-in for an HTTP server/client stack.
//!
//! The build environment has no network access to crates.io, so this workspace vendors
//! the minimal HTTP/1.1 surface the `server` crate needs — the same pattern as the
//! `serde`/`criterion` shims. What is implemented:
//!
//! * **Server**: a blocking `accept` loop over [`std::net::TcpListener`] feeding a
//!   fixed pool of worker threads (the "event loop" of the front end) through a
//!   **bounded** queue — connections past [`ServerConfig::max_pending_connections`]
//!   are refused with an immediate `503` rather than queued without bound. Each
//!   worker serves whole connections: HTTP/1.1 request parsing with `Content-Length`
//!   bodies, keep-alive by default (`Connection: close` honoured), one handler call
//!   per request. Handler panics are caught (`500`, connection closed) so a panic
//!   can never unwind — and permanently shrink — the worker pool.
//! * **Graceful shutdown**: [`Server::shutdown`] stops accepting, wakes the accept
//!   loop, and *drains* — every request already being read or processed completes and
//!   its response is written before the workers exit. Idle keep-alive connections are
//!   closed at the next poll tick.
//! * **Client**: [`ClientConn`], a keep-alive HTTP/1.1 client connection used by the
//!   loopback integration tests and benches.
//!
//! Not implemented (the workspace never produces them): chunked transfer encoding,
//! trailers, expect/continue, TLS, pipelining beyond sequential keep-alive.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How often blocked reads wake up to re-check the shutdown flag.
const POLL_TICK: Duration = Duration::from_millis(25);

/// One parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method (`GET`, `POST`, ...), uppercased as received.
    pub method: String,
    /// Request target as received (path + optional query string, percent-encoded).
    pub path: String,
    /// Header `(name, value)` pairs in arrival order; names are case-preserved,
    /// lookup via [`Request::header`] is case-insensitive.
    pub headers: Vec<(String, String)>,
    /// Raw request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// Case-insensitive header lookup (first match).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 text.
    pub fn body_str(&self) -> Result<&str, std::str::Utf8Error> {
        std::str::from_utf8(&self.body)
    }

    /// The path without its query string.
    pub fn path_only(&self) -> &str {
        self.path.split('?').next().unwrap_or(&self.path)
    }
}

/// An HTTP response under construction.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code (reason phrase is derived).
    pub status: u16,
    /// Extra headers (`Content-Length` and `Connection` are written automatically).
    pub headers: Vec<(String, String)>,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// An empty response with the given status.
    pub fn new(status: u16) -> Self {
        Response {
            status,
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    /// A `text/plain; charset=utf-8` response.
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Response::new(status)
            .with_header("Content-Type", "text/plain; charset=utf-8")
            .with_body(body.into().into_bytes())
    }

    /// An `application/json` response.
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        Response::new(status)
            .with_header("Content-Type", "application/json")
            .with_body(body.into().into_bytes())
    }

    /// Builder: append a header.
    pub fn with_header(mut self, name: &str, value: &str) -> Self {
        self.headers.push((name.to_string(), value.to_string()));
        self
    }

    /// Builder: set the body.
    pub fn with_body(mut self, body: Vec<u8>) -> Self {
        self.body = body;
        self
    }
}

fn reason_of(status: u16) -> &'static str {
    match status {
        200 => "OK",
        204 => "No Content",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Status",
    }
}

/// The request handler the server calls once per parsed request. Handlers run on
/// worker threads and may block (e.g. waiting for an ingest engine reply).
pub type Handler = Arc<dyn Fn(&Request) -> Response + Send + Sync>;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads serving connections (each worker owns one connection at a time).
    pub workers: usize,
    /// Idle keep-alive connections are closed after this long without a new request.
    pub keep_alive_timeout: Duration,
    /// A started request (first byte seen) must complete within this long.
    pub request_timeout: Duration,
    /// Requests with larger bodies are rejected with `413`.
    pub max_body_bytes: usize,
    /// Accepted connections not yet picked up by a worker are queued up to this
    /// bound; past it new connections are refused with an immediate `503` and
    /// closed, so a connection flood degrades predictably instead of growing an
    /// unbounded queue of open sockets.
    pub max_pending_connections: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            keep_alive_timeout: Duration::from_secs(5),
            request_timeout: Duration::from_secs(30),
            max_body_bytes: 64 << 20,
            max_pending_connections: 1024,
        }
    }
}

/// Aggregate counters of one server's lifetime (monotonic, lock-free reads).
#[derive(Debug, Default)]
pub struct ServerCounters {
    /// Connections accepted.
    pub connections: AtomicU64,
    /// Requests fully parsed and handled.
    pub requests: AtomicU64,
    /// Requests rejected before the handler ran (parse error, oversized body).
    pub rejected: AtomicU64,
    /// Connections refused with `503` because the pending-connection queue was full.
    pub refused: AtomicU64,
    /// Handler invocations that panicked (caught; answered with `500`).
    pub panicked: AtomicU64,
}

/// The running HTTP server: accept thread + worker pool. Dropping the server without
/// calling [`Server::shutdown`] also shuts down (without the graceful-drain guarantee
/// for connections never picked up by a worker).
pub struct Server {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    counters: Arc<ServerCounters>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("addr", &self.addr)
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl Server {
    /// Bind `addr` (e.g. `"127.0.0.1:0"`) and start serving `handler` on a pool of
    /// worker threads.
    pub fn bind(addr: &str, config: ServerConfig, handler: Handler) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let counters = Arc::new(ServerCounters::default());
        let (conn_tx, conn_rx) = sync_channel::<TcpStream>(config.max_pending_connections.max(1));
        let conn_rx = Arc::new(Mutex::new(conn_rx));
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let rx = Arc::clone(&conn_rx);
                let handler = Arc::clone(&handler);
                let shutdown = Arc::clone(&shutdown);
                let counters = Arc::clone(&counters);
                let config = config.clone();
                std::thread::Builder::new()
                    .name(format!("minihttp-worker-{i}"))
                    .spawn(move || loop {
                        // Receive one connection; exit when the accept loop has
                        // closed the channel and every queued connection is served.
                        let stream = { rx.lock().expect("conn_rx lock").recv() };
                        match stream {
                            Ok(stream) => {
                                serve_connection(stream, &handler, &shutdown, &config, &counters)
                            }
                            Err(_) => break,
                        }
                    })
                    .expect("spawn worker")
            })
            .collect();
        let accept_thread = {
            let shutdown = Arc::clone(&shutdown);
            let counters = Arc::clone(&counters);
            std::thread::Builder::new()
                .name("minihttp-accept".to_string())
                .spawn(move || {
                    for stream in listener.incoming() {
                        if shutdown.load(Ordering::SeqCst) {
                            break;
                        }
                        if let Ok(stream) = stream {
                            counters.connections.fetch_add(1, Ordering::Relaxed);
                            match conn_tx.try_send(stream) {
                                Ok(()) => {}
                                Err(TrySendError::Full(mut stream)) => {
                                    // Queue bound reached: refuse instead of growing
                                    // an unbounded backlog of open sockets.
                                    counters.refused.fetch_add(1, Ordering::Relaxed);
                                    let _ = stream.write_all(
                                        b"HTTP/1.1 503 Service Unavailable\r\n\
                                          Content-Length: 0\r\nConnection: close\r\n\r\n",
                                    );
                                }
                                Err(TrySendError::Disconnected(_)) => break,
                            }
                        }
                    }
                    // Dropping conn_tx lets the workers drain and exit.
                })
                .expect("spawn accept thread")
        };
        Ok(Server {
            addr,
            shutdown,
            accept_thread: Some(accept_thread),
            workers,
            counters,
        })
    }

    /// The bound local address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Lifetime counters (connections / requests / rejects).
    pub fn counters(&self) -> &ServerCounters {
        &self.counters
    }

    /// Graceful shutdown: stop accepting, then block until every in-flight request
    /// has been handled and its response written. Idle keep-alive connections close
    /// at the next poll tick (bounded by the internal 25ms `POLL_TICK`).
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Serve one connection until close / idle timeout / shutdown.
fn serve_connection(
    stream: TcpStream,
    handler: &Handler,
    shutdown: &AtomicBool,
    config: &ServerConfig,
    counters: &ServerCounters,
) {
    let mut stream = stream;
    if stream.set_read_timeout(Some(POLL_TICK)).is_err() {
        return;
    }
    let _ = stream.set_nodelay(true);
    let mut buf: Vec<u8> = Vec::new();
    loop {
        match read_request(&mut stream, &mut buf, shutdown, config) {
            Ok(Some(request)) => {
                counters.requests.fetch_add(1, Ordering::Relaxed);
                let close = request
                    .header("connection")
                    .map(|v| v.eq_ignore_ascii_case("close"))
                    .unwrap_or(false)
                    || shutdown.load(Ordering::SeqCst);
                // A panicking handler must not unwind the worker thread — the pool
                // is never respawned, so each escape would permanently shrink it.
                let response =
                    match std::panic::catch_unwind(AssertUnwindSafe(|| handler(&request))) {
                        Ok(response) => response,
                        Err(_) => {
                            counters.panicked.fetch_add(1, Ordering::Relaxed);
                            let _ = write_response(
                                &mut stream,
                                &Response::text(500, "handler panicked"),
                                true,
                            );
                            return;
                        }
                    };
                if write_response(&mut stream, &response, close).is_err() || close {
                    return;
                }
            }
            // Clean end: EOF between requests, idle timeout, or shutdown while idle.
            Ok(None) => return,
            Err(reject) => {
                counters.rejected.fetch_add(1, Ordering::Relaxed);
                let _ = write_response(
                    &mut stream,
                    &Response::text(reject.status, reject.msg),
                    true,
                );
                return;
            }
        }
    }
}

struct Reject {
    status: u16,
    msg: String,
}

impl Reject {
    fn bad(msg: impl Into<String>) -> Self {
        Reject {
            status: 400,
            msg: msg.into(),
        }
    }
}

/// Read one complete request off the connection, polling the shutdown flag while
/// blocked. `Ok(None)` means the connection ended cleanly between requests.
fn read_request(
    stream: &mut TcpStream,
    buf: &mut Vec<u8>,
    shutdown: &AtomicBool,
    config: &ServerConfig,
) -> Result<Option<Request>, Reject> {
    let idle_since = Instant::now();
    let mut chunk = [0u8; 16 * 1024];
    loop {
        if let Some((request, consumed)) = try_parse(buf, config)? {
            buf.drain(..consumed);
            return Ok(Some(request));
        }
        let mid_request = !buf.is_empty();
        if mid_request {
            // Drain in-flight: a started request is read to completion even during
            // shutdown, but never past the request timeout.
            if idle_since.elapsed() > config.request_timeout {
                return Err(Reject::bad("request timed out"));
            }
        } else {
            if shutdown.load(Ordering::SeqCst) {
                return Ok(None);
            }
            if idle_since.elapsed() > config.keep_alive_timeout {
                return Ok(None);
            }
        }
        match stream.read(&mut chunk) {
            Ok(0) => {
                return if mid_request {
                    Err(Reject::bad("connection closed mid-request"))
                } else {
                    Ok(None)
                };
            }
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut => {
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return Ok(None),
        }
    }
}

/// Try to parse one complete request from `buf`; `Ok(Some((request, bytes_consumed)))`
/// when the head and full body are present.
fn try_parse(buf: &[u8], config: &ServerConfig) -> Result<Option<(Request, usize)>, Reject> {
    let Some(head_end) = find_head_end(buf) else {
        if buf.len() > 64 * 1024 {
            return Err(Reject::bad("header section too large"));
        }
        return Ok(None);
    };
    let head = std::str::from_utf8(&buf[..head_end]).map_err(|_| Reject::bad("non-UTF8 header"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().ok_or_else(|| Reject::bad("empty request"))?;
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or_else(|| Reject::bad("missing method"))?;
    let path = parts.next().ok_or_else(|| Reject::bad("missing path"))?;
    let version = parts.next().ok_or_else(|| Reject::bad("missing version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(Reject::bad("unsupported HTTP version"));
    }
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| Reject::bad("malformed header line"))?;
        headers.push((name.trim().to_string(), value.trim().to_string()));
    }
    let content_length = headers
        .iter()
        .find(|(k, _)| k.eq_ignore_ascii_case("content-length"))
        .map(|(_, v)| {
            v.parse::<usize>()
                .map_err(|_| Reject::bad("bad content-length"))
        })
        .transpose()?
        .unwrap_or(0);
    if content_length > config.max_body_bytes {
        return Err(Reject {
            status: 413,
            msg: format!(
                "body of {content_length} bytes exceeds the {}-byte limit",
                config.max_body_bytes
            ),
        });
    }
    let body_start = head_end + 4;
    if buf.len() < body_start + content_length {
        return Ok(None);
    }
    let request = Request {
        method: method.to_string(),
        path: path.to_string(),
        headers,
        body: buf[body_start..body_start + content_length].to_vec(),
    };
    Ok(Some((request, body_start + content_length)))
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn write_response(stream: &mut TcpStream, response: &Response, close: bool) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\n",
        response.status,
        reason_of(response.status)
    );
    for (name, value) in &response.headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str(&format!("Content-Length: {}\r\n", response.body.len()));
    head.push_str(if close {
        "Connection: close\r\n"
    } else {
        "Connection: keep-alive\r\n"
    });
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(&response.body)?;
    stream.flush()
}

// --- client ----------------------------------------------------------------------------

/// A response as received by the client.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// Status code.
    pub status: u16,
    /// Header pairs in arrival order.
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// Case-insensitive header lookup (first match).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 text (lossy conversion never fails).
    pub fn body_str(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// A keep-alive HTTP/1.1 client connection (sequential request/response).
#[derive(Debug)]
pub struct ClientConn {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl ClientConn {
    /// Connect to `addr`.
    pub fn connect(addr: impl std::net::ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        stream.set_read_timeout(Some(Duration::from_secs(60)))?;
        Ok(ClientConn {
            stream,
            buf: Vec::new(),
        })
    }

    /// Send one request and block for its response.
    pub fn request(&mut self, method: &str, path: &str, body: &[u8]) -> io::Result<ClientResponse> {
        self.request_with_headers(method, path, &[], body)
    }

    /// [`ClientConn::request`] with extra headers.
    pub fn request_with_headers(
        &mut self,
        method: &str,
        path: &str,
        headers: &[(&str, &str)],
        body: &[u8],
    ) -> io::Result<ClientResponse> {
        let mut head = format!("{method} {path} HTTP/1.1\r\nHost: minihttp\r\n");
        for (name, value) in headers {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        if !body.is_empty() || method == "POST" || method == "PUT" {
            head.push_str(&format!("Content-Length: {}\r\n", body.len()));
        }
        head.push_str("\r\n");
        self.stream.write_all(head.as_bytes())?;
        self.stream.write_all(body)?;
        self.stream.flush()?;
        self.read_response()
    }

    fn read_response(&mut self) -> io::Result<ClientResponse> {
        let invalid = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg);
        let mut chunk = [0u8; 16 * 1024];
        loop {
            if let Some(head_end) = find_head_end(&self.buf) {
                let head = std::str::from_utf8(&self.buf[..head_end])
                    .map_err(|_| invalid("non-UTF8 response head"))?;
                let mut lines = head.split("\r\n");
                let status_line = lines.next().ok_or_else(|| invalid("empty response"))?;
                let status: u16 = status_line
                    .split(' ')
                    .nth(1)
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| invalid("bad status line"))?;
                let mut headers = Vec::new();
                for line in lines {
                    if line.is_empty() {
                        continue;
                    }
                    let (name, value) = line
                        .split_once(':')
                        .ok_or_else(|| invalid("malformed response header"))?;
                    headers.push((name.trim().to_string(), value.trim().to_string()));
                }
                let content_length = headers
                    .iter()
                    .find(|(k, _)| k.eq_ignore_ascii_case("content-length"))
                    .and_then(|(_, v)| v.parse::<usize>().ok())
                    .unwrap_or(0);
                let body_start = head_end + 4;
                if self.buf.len() >= body_start + content_length {
                    let body = self.buf[body_start..body_start + content_length].to_vec();
                    self.buf.drain(..body_start + content_length);
                    return Ok(ClientResponse {
                        status,
                        headers,
                        body,
                    });
                }
            }
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(invalid("connection closed before full response"));
            }
            self.buf.extend_from_slice(&chunk[..n]);
        }
    }
}

/// Percent-decode a path segment (`%41` → `A`, `+` left intact). Invalid escapes pass
/// through verbatim, so decoding never fails. Operates on bytes only: a `%` followed
/// by non-hex bytes — including the middle of a multibyte UTF-8 char — is not an
/// escape, never a slice at a non-char-boundary.
pub fn percent_decode(segment: &str) -> String {
    fn hex_digit(byte: u8) -> Option<u8> {
        match byte {
            b'0'..=b'9' => Some(byte - b'0'),
            b'a'..=b'f' => Some(byte - b'a' + 10),
            b'A'..=b'F' => Some(byte - b'A' + 10),
            _ => None,
        }
    }
    let bytes = segment.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' && i + 2 < bytes.len() {
            if let (Some(hi), Some(lo)) = (hex_digit(bytes[i + 1]), hex_digit(bytes[i + 2])) {
                out.push(hi << 4 | lo);
                i += 3;
                continue;
            }
        }
        out.push(bytes[i]);
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn echo_server() -> Server {
        let handler: Handler = Arc::new(|req: &Request| {
            Response::text(
                200,
                format!(
                    "{} {} body={}",
                    req.method,
                    req.path,
                    req.body_str().unwrap_or("<binary>")
                ),
            )
        });
        Server::bind("127.0.0.1:0", ServerConfig::default(), handler).expect("bind")
    }

    #[test]
    fn round_trips_requests_with_bodies() {
        let server = echo_server();
        let mut client = ClientConn::connect(server.addr()).unwrap();
        let response = client
            .request("POST", "/v1/t/ingest", b"hello world")
            .unwrap();
        assert_eq!(response.status, 200);
        assert_eq!(response.body_str(), "POST /v1/t/ingest body=hello world");
        server.shutdown();
    }

    #[test]
    fn keep_alive_serves_sequential_requests_on_one_connection() {
        let server = echo_server();
        let mut client = ClientConn::connect(server.addr()).unwrap();
        for i in 0..10 {
            let response = client.request("GET", &format!("/ping/{i}"), b"").unwrap();
            assert_eq!(response.status, 200);
            assert!(response.body_str().contains(&format!("/ping/{i}")));
        }
        assert_eq!(server.counters().connections.load(Ordering::Relaxed), 1);
        assert_eq!(server.counters().requests.load(Ordering::Relaxed), 10);
        server.shutdown();
    }

    #[test]
    fn concurrent_clients_are_served_in_parallel() {
        let server = echo_server();
        let addr = server.addr();
        let handles: Vec<_> = (0..8)
            .map(|i| {
                std::thread::spawn(move || {
                    let mut client = ClientConn::connect(addr).unwrap();
                    let response = client
                        .request("POST", "/work", format!("client-{i}").as_bytes())
                        .unwrap();
                    assert_eq!(response.status, 200);
                    assert!(response.body_str().contains(&format!("client-{i}")));
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        server.shutdown();
    }

    #[test]
    fn malformed_requests_are_rejected_with_400() {
        let server = echo_server();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream.write_all(b"NOT A REQUEST\r\n\r\n").unwrap();
        let mut out = Vec::new();
        stream.read_to_end(&mut out).unwrap();
        let text = String::from_utf8_lossy(&out);
        assert!(text.starts_with("HTTP/1.1 400"), "{text}");
        server.shutdown();
    }

    #[test]
    fn oversized_bodies_are_rejected_with_413() {
        let handler: Handler = Arc::new(|_req: &Request| Response::new(200));
        let config = ServerConfig {
            max_body_bytes: 16,
            ..ServerConfig::default()
        };
        let server = Server::bind("127.0.0.1:0", config, handler).unwrap();
        let mut client = ClientConn::connect(server.addr()).unwrap();
        let response = client.request("POST", "/big", &[b'x'; 64]).unwrap();
        assert_eq!(response.status, 413);
        server.shutdown();
    }

    #[test]
    fn graceful_shutdown_drains_in_flight_requests() {
        // The handler parks long enough that shutdown must arrive while the request
        // is in flight; the response must still be delivered intact.
        let handler: Handler = Arc::new(|_req: &Request| {
            std::thread::sleep(Duration::from_millis(200));
            Response::text(200, "slow but done")
        });
        let server = Server::bind("127.0.0.1:0", ServerConfig::default(), handler).unwrap();
        let addr = server.addr();
        let client = std::thread::spawn(move || {
            let mut client = ClientConn::connect(addr).unwrap();
            client.request("GET", "/slow", b"").unwrap()
        });
        std::thread::sleep(Duration::from_millis(50));
        server.shutdown(); // must block until the in-flight request completed
        let response = client.join().unwrap();
        assert_eq!(response.status, 200);
        assert_eq!(response.body_str(), "slow but done");
    }

    #[test]
    fn shutdown_closes_idle_keep_alive_connections() {
        let server = echo_server();
        let mut client = ClientConn::connect(server.addr()).unwrap();
        let response = client.request("GET", "/one", b"").unwrap();
        assert_eq!(response.status, 200);
        // The connection now sits idle; shutdown must not hang on it.
        let start = Instant::now();
        server.shutdown();
        assert!(
            start.elapsed() < Duration::from_secs(2),
            "shutdown hung on an idle keep-alive connection"
        );
    }

    #[test]
    fn percent_decoding_round_trips() {
        assert_eq!(percent_decode("plain-name_1"), "plain-name_1");
        assert_eq!(percent_decode("a%2Fb%20c"), "a/b c");
        assert_eq!(percent_decode("bad%zz"), "bad%zz");
        assert_eq!(percent_decode("tail%2"), "tail%2");
    }

    #[test]
    fn percent_decoding_survives_multibyte_neighbours() {
        // '%' with a multibyte char inside its 2-byte lookahead used to slice the
        // &str at a non-char boundary and panic; now it passes through verbatim.
        assert_eq!(percent_decode("%aé"), "%aé");
        assert_eq!(percent_decode("%é"), "%é");
        assert_eq!(percent_decode("a%éb%41"), "a%ébA");
        assert_eq!(percent_decode("日%本"), "日%本");
        // A valid escape directly before a multibyte char still decodes.
        assert_eq!(percent_decode("%41é"), "Aé");
    }

    #[test]
    fn handler_panics_do_not_shrink_the_worker_pool() {
        let handler: Handler = Arc::new(|req: &Request| {
            if req.path.starts_with("/boom") {
                panic!("handler bug");
            }
            Response::text(200, "ok")
        });
        let config = ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        };
        let server = Server::bind("127.0.0.1:0", config, handler).unwrap();
        // More panicking requests than workers: with unwinding workers the pool
        // would be empty after two and the server permanently unresponsive.
        for i in 0..6 {
            let mut client = ClientConn::connect(server.addr()).unwrap();
            let response = client.request("GET", &format!("/boom/{i}"), b"").unwrap();
            assert_eq!(response.status, 500);
        }
        let mut client = ClientConn::connect(server.addr()).unwrap();
        let response = client.request("GET", "/fine", b"").unwrap();
        assert_eq!(response.status, 200);
        assert_eq!(server.counters().panicked.load(Ordering::Relaxed), 6);
        server.shutdown();
    }

    #[test]
    fn connection_flood_past_the_queue_bound_is_refused_with_503() {
        let handler: Handler = Arc::new(|_req: &Request| {
            std::thread::sleep(Duration::from_millis(300));
            Response::text(200, "slow")
        });
        let config = ServerConfig {
            workers: 1,
            max_pending_connections: 1,
            // Accepted-but-idle flood sockets should close fast once a worker
            // picks them up, keeping this test snappy.
            keep_alive_timeout: Duration::from_millis(200),
            ..ServerConfig::default()
        };
        let server = Server::bind("127.0.0.1:0", config, handler).unwrap();
        // First connection occupies the single worker, second the single queue
        // slot; the rest must be refused immediately instead of queued.
        let busy = std::thread::spawn({
            let addr = server.addr();
            move || {
                let mut client = ClientConn::connect(addr).unwrap();
                client.request("GET", "/slow", b"").unwrap().status
            }
        });
        std::thread::sleep(Duration::from_millis(50));
        let mut refused = 0;
        let mut floods = Vec::new();
        for _ in 0..8 {
            floods.push(TcpStream::connect(server.addr()).unwrap());
        }
        for mut stream in floods {
            let mut out = Vec::new();
            stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
            if stream.read_to_end(&mut out).is_ok()
                && String::from_utf8_lossy(&out).starts_with("HTTP/1.1 503")
            {
                refused += 1;
            }
        }
        assert!(refused >= 1, "flood connections must be refused with 503");
        assert!(server.counters().refused.load(Ordering::Relaxed) >= 1);
        assert_eq!(busy.join().unwrap(), 200, "in-flight request unaffected");
        server.shutdown();
    }
}
