//! Offline stand-in for `criterion`.
//!
//! The build environment has no network access, so this workspace vendors a minimal
//! wall-clock benchmark harness exposing the `criterion` API subset its benches use:
//! [`Criterion::benchmark_group`], [`Criterion::bench_function`], [`Bencher::iter`],
//! [`Bencher::iter_batched`], per-group [`Throughput`], `sample_size`, and the
//! [`criterion_group!`]/[`criterion_main!`] macros. Each benchmark is warmed up, then
//! timed over a fixed number of samples; the mean, min, and (when configured) derived
//! throughput are printed to stdout.
//!
//! Numbers from this harness are honest wall-clock measurements, but it performs no
//! outlier rejection or statistical testing — treat small deltas with suspicion.

use std::hint::black_box as std_black_box;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box`, matching `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// How per-iteration inputs are batched in [`Bencher::iter_batched`]. The shim times
/// setup and routine together per element, subtracting nothing; batch size only caps
/// memory, matching criterion's semantics closely enough for relative comparisons.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: batch many per measurement.
    SmallInput,
    /// Large inputs: batch few per measurement.
    LargeInput,
    /// One input per measurement.
    PerIteration,
}

/// Throughput hint used to derive per-byte / per-element rates from elapsed time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// The routine processes this many bytes per iteration.
    Bytes(u64),
    /// The routine processes this many elements per iteration.
    Elements(u64),
}

/// Passed to benchmark closures; runs and times the measured routine.
pub struct Bencher {
    samples: usize,
    /// Mean time per iteration of the most recent `iter*` call.
    last_mean: Duration,
    /// Fastest observed sample.
    last_min: Duration,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Bencher {
            samples,
            last_mean: Duration::ZERO,
            last_min: Duration::MAX,
        }
    }

    /// Time `routine`, called once per iteration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run a few untimed iterations so lazy initialisation and cache
        // effects do not pollute the first sample.
        for _ in 0..2 {
            std_black_box(routine());
        }
        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        for _ in 0..self.samples {
            let start = Instant::now();
            std_black_box(routine());
            let elapsed = start.elapsed();
            total += elapsed;
            min = min.min(elapsed);
        }
        self.last_mean = total / self.samples as u32;
        self.last_min = min;
    }

    /// Time `routine` over inputs produced by `setup`. Setup time is excluded from the
    /// measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        std_black_box(routine(setup()));
        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            std_black_box(routine(input));
            let elapsed = start.elapsed();
            total += elapsed;
            min = min.min(elapsed);
        }
        self.last_mean = total / self.samples as u32;
        self.last_min = min;
    }
}

fn human(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.3} s", d.as_secs_f64())
    } else if nanos >= 1_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.3} µs", nanos as f64 / 1e3)
    } else {
        format!("{nanos} ns")
    }
}

/// One completed benchmark measurement, recorded for machine-readable reports
/// (real criterion persists these under `target/criterion`; this shim keeps an
/// in-process registry a custom `main` can drain with [`take_measurements`]).
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Group name, when the benchmark ran inside a [`BenchmarkGroup`].
    pub group: Option<String>,
    /// Benchmark name within the group.
    pub name: String,
    /// Mean wall-clock time per iteration, in nanoseconds.
    pub mean_ns: u128,
    /// Fastest observed sample, in nanoseconds.
    pub min_ns: u128,
    /// Throughput hint in force when the benchmark ran.
    pub throughput: Option<Throughput>,
}

impl Measurement {
    /// `group/name`, or the bare name outside a group.
    pub fn full_name(&self) -> String {
        match &self.group {
            Some(g) => format!("{g}/{}", self.name),
            None => self.name.clone(),
        }
    }

    /// Elements processed per second at the *fastest* sampled iteration, when
    /// the benchmark declared [`Throughput::Elements`]. Wall-clock noise on a
    /// shared runner is strictly additive (a scheduler tick can only make an
    /// iteration slower, never faster), so the minimum is the reproducible
    /// estimator of the code's intrinsic rate; the mean is still recorded in
    /// `mean_ns` for artifact readers who want it.
    pub fn elements_per_sec(&self) -> Option<f64> {
        match self.throughput {
            Some(Throughput::Elements(elements)) if self.min_ns > 0 => {
                Some(elements as f64 * 1e9 / self.min_ns as f64)
            }
            _ => None,
        }
    }
}

static MEASUREMENTS: Mutex<Vec<Measurement>> = Mutex::new(Vec::new());

/// Drain every measurement recorded since the last call (or process start), in
/// execution order. Benchmark binaries with a custom `main` use this to emit
/// machine-readable artifacts after the timed runs.
pub fn take_measurements() -> Vec<Measurement> {
    std::mem::take(&mut *MEASUREMENTS.lock().unwrap())
}

fn report(group: Option<&str>, name: &str, bencher: &Bencher, throughput: Option<Throughput>) {
    let full = match group {
        Some(g) => format!("{g}/{name}"),
        None => name.to_string(),
    };
    let mut line = format!(
        "bench {full:<48} mean {:>12}   min {:>12}",
        human(bencher.last_mean),
        human(bencher.last_min)
    );
    MEASUREMENTS.lock().unwrap().push(Measurement {
        group: group.map(str::to_string),
        name: name.to_string(),
        mean_ns: bencher.last_mean.as_nanos(),
        min_ns: bencher.last_min.as_nanos(),
        throughput,
    });
    if let Some(tp) = throughput {
        let secs = bencher.last_mean.as_secs_f64();
        if secs > 0.0 {
            match tp {
                Throughput::Bytes(bytes) => {
                    line.push_str(&format!(
                        "   {:>10.2} MiB/s",
                        bytes as f64 / secs / (1024.0 * 1024.0)
                    ));
                }
                Throughput::Elements(elements) => {
                    line.push_str(&format!("   {:>12.0} elem/s", elements as f64 / secs));
                }
            }
        }
    }
    println!("{line}");
}

/// A named group of related benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'c> {
    name: String,
    samples: usize,
    throughput: Option<Throughput>,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the throughput hint used to derive rates for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.samples = samples.max(1);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher::new(self.samples);
        f(&mut bencher);
        report(Some(&self.name), name, &bencher, self.throughput);
        self
    }

    /// Finish the group (prints nothing; exists for API compatibility).
    pub fn finish(self) {}
}

/// Top-level harness handle, mirroring `criterion::Criterion`.
pub struct Criterion {
    samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { samples: 20 }
    }
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let samples = self.samples;
        BenchmarkGroup {
            name: name.to_string(),
            samples,
            throughput: None,
            _criterion: self,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher::new(self.samples);
        f(&mut bencher);
        report(None, name, &bencher, None);
        self
    }
}

/// Collect benchmark functions into a runner, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit a `main` that runs the given groups, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
