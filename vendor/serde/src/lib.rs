//! Offline stand-in for `serde`.
//!
//! The build environment has no network access, so this workspace vendors a minimal
//! serde-compatible surface: [`Serialize`]/[`Deserialize`] traits over an in-memory
//! JSON [`Value`] data model, plus `#[derive(Serialize, Deserialize)]` macros
//! (re-exported from the local `serde_derive` shim). The `serde_json` shim renders and
//! parses [`Value`]s. Only what this repository uses is implemented: plain structs,
//! tuple structs, and enums with unit or one-field tuple variants.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// In-memory JSON data model shared by the `serde` and `serde_json` shims.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer (kept as `u64` so 64-bit hashes round-trip exactly).
    UInt(u64),
    /// Negative integer.
    Int(i64),
    /// Floating-point number.
    Float(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object. Insertion order is preserved so output is deterministic.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Look up a key of an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Deserialization error: a human-readable description of the mismatch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    /// Build an error from anything displayable.
    pub fn msg(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves into the JSON [`Value`] data model.
pub trait Serialize {
    /// Convert `self` to a [`Value`].
    fn serialize(&self) -> Value;
}

/// Types that can be reconstructed from the JSON [`Value`] data model.
pub trait Deserialize: Sized {
    /// Reconstruct `Self` from a [`Value`].
    fn deserialize(value: &Value) -> Result<Self, Error>;
}

// --- primitive impls --------------------------------------------------------------------

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::msg(format!("expected bool, got {other:?}"))),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let raw = match value {
                    Value::UInt(u) => *u,
                    Value::Int(i) if *i >= 0 => *i as u64,
                    Value::Float(f) if f.fract() == 0.0 && *f >= 0.0 => *f as u64,
                    other => return Err(Error::msg(format!(
                        "expected unsigned integer, got {other:?}"
                    ))),
                };
                <$t>::try_from(raw).map_err(|_| Error::msg(format!(
                    "integer {raw} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                let v = *self as i64;
                if v < 0 { Value::Int(v) } else { Value::UInt(v as u64) }
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let raw: i64 = match value {
                    Value::Int(i) => *i,
                    Value::UInt(u) => i64::try_from(*u)
                        .map_err(|_| Error::msg(format!("integer {u} overflows i64")))?,
                    Value::Float(f) if f.fract() == 0.0 => *f as i64,
                    other => return Err(Error::msg(format!(
                        "expected integer, got {other:?}"
                    ))),
                };
                <$t>::try_from(raw).map_err(|_| Error::msg(format!(
                    "integer {raw} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Float(f) => Ok(*f as $t),
                    Value::UInt(u) => Ok(*u as $t),
                    Value::Int(i) => Ok(*i as $t),
                    other => Err(Error::msg(format!("expected number, got {other:?}"))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::String(s) => Ok(s.clone()),
            other => Err(Error::msg(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn serialize(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::String(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error::msg(format!(
                "expected single-char string, got {other:?}"
            ))),
        }
    }
}

// --- container impls --------------------------------------------------------------------

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(inner) => inner.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::deserialize).collect(),
            other => Err(Error::msg(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        T::deserialize(value).map(Box::new)
    }
}

impl<T: Serialize> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.serialize()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, v)| V::deserialize(v).map(|v| (k.clone(), v)))
                .collect(),
            other => Err(Error::msg(format!("expected object, got {other:?}"))),
        }
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn serialize(&self) -> Value {
        // Sort keys so serialized output is deterministic.
        let mut fields: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.serialize()))
            .collect();
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(fields)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, v)| V::deserialize(v).map(|v| (k.clone(), v)))
                .collect(),
            other => Err(Error::msg(format!("expected object, got {other:?}"))),
        }
    }
}

/// Tuples serialize as fixed-length arrays — the on-disk framing used by the
/// service storage tier relies on `(String, String)` pairs round-tripping.
macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+) with $len:expr;)+) => {
        $(
            impl<$($name: Serialize),+> Serialize for ($($name,)+) {
                fn serialize(&self) -> Value {
                    Value::Array(vec![$(self.$idx.serialize()),+])
                }
            }

            impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
                fn deserialize(value: &Value) -> Result<Self, Error> {
                    match value {
                        Value::Array(items) if items.len() == $len => {
                            Ok(($($name::deserialize(&items[$idx])?,)+))
                        }
                        other => Err(Error::msg(format!(
                            "expected {}-element array, got {other:?}",
                            $len
                        ))),
                    }
                }
            }
        )+
    };
}

impl_tuple! {
    (A: 0, B: 1) with 2;
    (A: 0, B: 1, C: 2) with 3;
    (A: 0, B: 1, C: 2, D: 3) with 4;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_round_trip() {
        assert_eq!(Some(3u64).serialize(), Value::UInt(3));
        assert_eq!(Option::<u64>::deserialize(&Value::Null).unwrap(), None);
        assert_eq!(
            Option::<u64>::deserialize(&Value::UInt(9)).unwrap(),
            Some(9)
        );
    }

    #[test]
    fn u64_precision_is_preserved() {
        let big = u64::MAX - 1;
        let v = big.serialize();
        assert_eq!(u64::deserialize(&v).unwrap(), big);
    }

    #[test]
    fn vec_round_trip() {
        let xs = vec!["a".to_string(), "b".to_string()];
        let v = xs.serialize();
        assert_eq!(Vec::<String>::deserialize(&v).unwrap(), xs);
    }

    #[test]
    fn type_mismatch_is_an_error() {
        assert!(bool::deserialize(&Value::String("no".into())).is_err());
        assert!(u8::deserialize(&Value::UInt(10_000)).is_err());
    }

    #[test]
    fn tuple_round_trip() {
        let pair = ("mask".to_string(), "<IP>".to_string());
        let v = pair.serialize();
        assert_eq!(<(String, String)>::deserialize(&v).unwrap(), pair);

        let triple = (1u64, "x".to_string(), true);
        let v = triple.serialize();
        assert_eq!(<(u64, String, bool)>::deserialize(&v).unwrap(), triple);
    }

    #[test]
    fn tuple_arity_mismatch_is_an_error() {
        let v = Value::Array(vec![Value::UInt(1)]);
        assert!(<(u64, u64)>::deserialize(&v).is_err());
    }
}
