//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so this workspace vendors the small
//! slice of the `rand` 0.8 API it actually uses: [`rngs::StdRng`] seeded via
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over half-open ranges,
//! [`Rng::gen_bool`], and [`seq::SliceRandom::shuffle`]. The generator is
//! xoshiro256** seeded with SplitMix64 — deterministic, fast, and statistically far
//! better than the code paths here (ablation tie-breaking, corpus sampling) require.

/// Low-level generator interface: a source of uniformly distributed `u64`s.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators (subset: seeding from a `u64`).
pub trait SeedableRng: Sized {
    /// Construct the generator from a 64-bit seed. The same seed always produces the
    /// same stream.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A half-open range that a uniform value can be drawn from.
pub trait SampleRange<T> {
    /// Draw one uniform value from the range.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range called with empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                // Multiply-shift bounded sampling (Lemire); the bias for spans this far
                // below 2^64 is negligible for the simulation workloads in this repo.
                let hi = ((rng.next_u64() as u128 * span) >> 64) as u128;
                (self.start as u128 + hi) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range called with empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let hi = (rng.next_u64() as u128 * span) >> 64;
                (self.start as i128 + hi as i128) as $t
            }
        }
    )*};
}

impl_signed_range!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range called with empty range");
        // 53 high bits -> uniform in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        let range = self.start as f64..self.end as f64;
        range.sample_one(rng) as f32
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value from a half-open range, e.g. `rng.gen_range(0..10u32)`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_one(self)
    }

    /// Bernoulli trial: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        ((self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)) < p
    }
}

impl<T: RngCore> Rng for T {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256** seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the 64-bit seed into the 256-bit state, as
            // recommended by the xoshiro authors.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence-related sampling (subset: in-place shuffling).

    use super::{Rng, RngCore};

    /// Extension trait for slices, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Shuffle the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000u64), b.gen_range(0..1_000_000u64));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10..20usize);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(-1.0..1.0f64);
            assert!((-1.0..1.0).contains(&f));
            let i = rng.gen_range(-5..5i64);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!(
            (2_000..3_000).contains(&hits),
            "p=0.25 produced {hits}/10000"
        );
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "shuffle left the slice in order (astronomically unlikely)"
        );
    }
}
