//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the type shapes
//! this workspace actually contains — non-generic structs with named fields, tuple
//! structs, and enums whose variants are unit or tuple variants — without depending on
//! `syn`/`quote` (the build environment has no network access). The input item is
//! parsed directly from the `proc_macro::TokenStream` and the generated impl is built
//! as a string and re-parsed, which is entirely adequate for these shapes.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The shape of the deriving item, extracted from its token stream.
enum Item {
    /// Struct with named fields.
    Struct { name: String, fields: Vec<String> },
    /// Tuple struct with `arity` fields.
    TupleStruct { name: String, arity: usize },
    /// Enum; each variant is a name plus its tuple arity (0 = unit variant).
    Enum {
        name: String,
        variants: Vec<(String, usize)>,
    },
}

/// Skip attributes (`#[...]`) and visibility (`pub`, `pub(...)`) at the cursor.
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // `#` followed by a bracketed group.
                i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => return i,
        }
    }
}

/// Count top-level comma-separated entries inside a group (0 for an empty group).
fn count_top_level_entries(group: &[TokenTree]) -> usize {
    if group.is_empty() {
        return 0;
    }
    let mut count = 1;
    for token in group {
        if let TokenTree::Punct(p) = token {
            if p.as_char() == ',' {
                count += 1;
            }
        }
    }
    // A trailing comma does not start a new entry.
    if matches!(group.last(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
        count -= 1;
    }
    count
}

/// Parse named-struct fields: identifiers immediately followed by `:` at top level.
fn parse_named_fields(group: &[TokenTree]) -> Vec<String> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < group.len() {
        i = skip_attrs_and_vis(group, i);
        // Field name.
        let Some(TokenTree::Ident(id)) = group.get(i) else {
            break;
        };
        let name = id.to_string();
        // `:`
        match group.get(i + 1) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            _ => panic!("serde_derive shim: expected `:` after field `{name}`"),
        }
        fields.push(name);
        // Skip the type up to the next top-level comma. Generic angle brackets contain
        // no commas at proc-macro top level only if we track `<`/`>` depth.
        i += 2;
        let mut angle_depth = 0i32;
        while i < group.len() {
            match &group[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

/// Parse enum variants: name plus tuple arity (0 = unit). Struct variants are rejected.
fn parse_variants(group: &[TokenTree]) -> Vec<(String, usize)> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < group.len() {
        i = skip_attrs_and_vis(group, i);
        let Some(TokenTree::Ident(id)) = group.get(i) else {
            break;
        };
        let name = id.to_string();
        i += 1;
        let mut arity = 0;
        match group.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                arity = count_top_level_entries(&inner);
                i += 1;
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                panic!("serde_derive shim: struct enum variants are not supported ({name})");
            }
            _ => {}
        }
        // Skip a discriminant (`= expr`) and the separating comma.
        while i < group.len() {
            if let TokenTree::Punct(p) = &group[i] {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
        variants.push((name, arity));
    }
    variants
}

/// Parse the deriving item out of the raw derive input.
fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive shim: expected struct/enum, got {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive shim: expected type name, got {other:?}"),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive shim: generic type {name} is not supported");
    }
    match (kind.as_str(), tokens.get(i)) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            Item::Struct {
                name,
                fields: parse_named_fields(&inner),
            }
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            Item::TupleStruct {
                name,
                arity: count_top_level_entries(&inner),
            }
        }
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            Item::Enum {
                name,
                variants: parse_variants(&inner),
            }
        }
        _ => panic!("serde_derive shim: unsupported item shape for {name}"),
    }
}

/// `#[derive(Serialize)]`: implement `serde::Serialize` (to the `serde::Value` model).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let body = match parse_item(input) {
        Item::Struct { name, fields } => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "fields.push((\"{f}\".to_string(), ::serde::Serialize::serialize(&self.{f})));\n"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize(&self) -> ::serde::Value {{\n\
                         let mut fields: Vec<(String, ::serde::Value)> = Vec::new();\n\
                         {pushes}\
                         ::serde::Value::Object(fields)\n\
                     }}\n\
                 }}"
            )
        }
        Item::TupleStruct { name, arity } => {
            let expr = if arity == 1 {
                "::serde::Serialize::serialize(&self.0)".to_string()
            } else {
                let items: Vec<String> = (0..arity)
                    .map(|i| format!("::serde::Serialize::serialize(&self.{i})"))
                    .collect();
                format!("::serde::Value::Array(vec![{}])", items.join(", "))
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize(&self) -> ::serde::Value {{ {expr} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|(v, arity)| match arity {
                    0 => format!(
                        "{name}::{v} => ::serde::Value::String(\"{v}\".to_string()),\n"
                    ),
                    1 => format!(
                        "{name}::{v}(inner) => ::serde::Value::Object(vec![(\"{v}\".to_string(), ::serde::Serialize::serialize(inner))]),\n"
                    ),
                    n => {
                        let binders: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let items: Vec<String> = binders
                            .iter()
                            .map(|b| format!("::serde::Serialize::serialize({b})"))
                            .collect();
                        format!(
                            "{name}::{v}({}) => ::serde::Value::Object(vec![(\"{v}\".to_string(), ::serde::Value::Array(vec![{}]))]),\n",
                            binders.join(", "),
                            items.join(", ")
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize(&self) -> ::serde::Value {{\n\
                         match self {{\n{arms}}}\n\
                     }}\n\
                 }}"
            )
        }
    };
    body.parse()
        .expect("serde_derive shim generated invalid Serialize impl")
}

/// `#[derive(Deserialize)]`: implement `serde::Deserialize` (from the `serde::Value`
/// model).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let body = match parse_item(input) {
        Item::Struct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::deserialize(value.get(\"{f}\").unwrap_or(&::serde::Value::Null)).map_err(|e| ::serde::Error::msg(format!(\"{name}.{f}: {{e}}\")))?,\n"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn deserialize(value: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                         Ok({name} {{\n{inits}}})\n\
                     }}\n\
                 }}"
            )
        }
        Item::TupleStruct { name, arity } => {
            let body = if arity == 1 {
                format!("Ok({name}(::serde::Deserialize::deserialize(value)?))")
            } else {
                let gets: Vec<String> = (0..arity)
                    .map(|i| format!("::serde::Deserialize::deserialize(&items[{i}])?"))
                    .collect();
                format!(
                    "match value {{\n\
                         ::serde::Value::Array(items) if items.len() == {arity} => Ok({name}({})),\n\
                         other => Err(::serde::Error::msg(format!(\"expected {arity}-element array for {name}, got {{other:?}}\"))),\n\
                     }}",
                    gets.join(", ")
                )
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn deserialize(value: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                         {body}\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|(_, arity)| *arity == 0)
                .map(|(v, _)| format!("\"{v}\" => Ok({name}::{v}),\n"))
                .collect();
            let tuple_arms: String = variants
                .iter()
                .filter(|(_, arity)| *arity > 0)
                .map(|(v, arity)| {
                    if *arity == 1 {
                        format!(
                            "\"{v}\" => Ok({name}::{v}(::serde::Deserialize::deserialize(inner)?)),\n"
                        )
                    } else {
                        let gets: Vec<String> = (0..*arity)
                            .map(|i| format!("::serde::Deserialize::deserialize(&items[{i}])?"))
                            .collect();
                        format!(
                            "\"{v}\" => match inner {{\n\
                                 ::serde::Value::Array(items) if items.len() == {arity} => Ok({name}::{v}({})),\n\
                                 other => Err(::serde::Error::msg(format!(\"expected {arity}-element array for {name}::{v}, got {{other:?}}\"))),\n\
                             }},\n",
                            gets.join(", ")
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn deserialize(value: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                         match value {{\n\
                             ::serde::Value::String(s) => match s.as_str() {{\n\
                                 {unit_arms}\
                                 other => Err(::serde::Error::msg(format!(\"unknown {name} variant {{other:?}}\"))),\n\
                             }},\n\
                             ::serde::Value::Object(fields) if fields.len() == 1 => {{\n\
                                 let (variant, inner) = &fields[0];\n\
                                 #[allow(unused_variables)]\n\
                                 match variant.as_str() {{\n\
                                     {tuple_arms}\
                                     other => Err(::serde::Error::msg(format!(\"unknown {name} variant {{other:?}}\"))),\n\
                                 }}\n\
                             }}\n\
                             other => Err(::serde::Error::msg(format!(\"expected {name} variant, got {{other:?}}\"))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    body.parse()
        .expect("serde_derive shim generated invalid Deserialize impl")
}
