//! Kill-and-recover differential tests for the durable storage tier.
//!
//! Every test follows the same shape: run a durable topic through a workload,
//! capture its externally observable state (stats, model JSON, query output at a
//! ladder of thresholds, template distribution), simulate a crash by dropping the
//! in-process state (optionally snapshotting the directory mid-flight, the way a
//! `kill -9` freezes the disk), reopen with [`LogTopic::open`] /
//! [`ServiceManager::open_with`], and assert the recovered topic is byte-identical
//! to the never-restarted one. The fuzz test varies the interleaving of
//! ingest / retrain / delta maintenance / snapshot prune / retention with the
//! base seed taken from `BYTEBRAIN_TEST_SEED` (CI varies it across a matrix).

use bytebrain::incremental::DriftConfig;
use service::ingest::IngestConfig;
use service::{
    LogTopic, MaintenancePolicy, QueryOptions, ServiceManager, StorageConfig, TopicConfig,
    TopicStats,
};
use std::fs;
use std::path::{Path, PathBuf};
use std::time::Duration;

// ---------------------------------------------------------------------------
// Harness helpers
// ---------------------------------------------------------------------------

fn base_seed() -> u64 {
    std::env::var("BYTEBRAIN_TEST_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0xB10C_5EED)
}

/// Tiny deterministic generator (splitmix64) for the interleaving fuzz test.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bb-recovery-{tag}-{}", std::process::id()));
    if dir.exists() {
        fs::remove_dir_all(&dir).expect("clear stale scratch dir");
    }
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn copy_dir_all(src: &Path, dst: &Path) {
    fs::create_dir_all(dst).expect("create snapshot dir");
    for entry in fs::read_dir(src).expect("read src dir") {
        let entry = entry.expect("dir entry");
        let target = dst.join(entry.file_name());
        if entry.file_type().expect("file type").is_dir() {
            copy_dir_all(&entry.path(), &target);
        } else {
            fs::copy(entry.path(), &target).expect("copy file");
        }
    }
}

fn fast_storage() -> StorageConfig {
    // Small segments exercise seal/replay paths; fsync off keeps the suite quick
    // (crash simulation copies the live directory, so OS-cache durability is moot).
    StorageConfig::default()
        .with_segment_records(64)
        .with_fsync(false)
}

fn web_access_batch(offset: usize, n: usize) -> Vec<String> {
    (0..n)
        .map(|i| {
            let code = [200, 200, 200, 404, 500][(offset + i) % 5];
            format!(
                "GET /api/v1/items/{} HTTP/1.1 status {} bytes {} latency {}ms",
                (offset + i) % 50,
                code,
                100 + (offset + i) % 900,
                1 + (offset + i) % 40
            )
        })
        .collect()
}

fn auth_batch(offset: usize, n: usize) -> Vec<String> {
    (0..n)
        .map(|i| {
            format!(
                "user u{} login from 10.0.{}.{} session {}",
                (offset + i) % 40,
                (offset + i) % 16,
                (offset + i) % 250,
                offset + i
            )
        })
        .collect()
}

fn novel_batch(offset: usize, n: usize) -> Vec<String> {
    (0..n)
        .map(|i| {
            format!(
                "disk scrubber pass {} repaired sector {} on volume vol-{}",
                (offset + i) % 7,
                offset + i,
                (offset + i) % 3
            )
        })
        .collect()
}

const THRESHOLDS: [f64; 6] = [0.0, 0.35, 0.6, 0.8, 0.9, 1.0];

/// Everything a client can observe about a topic, captured for the differential.
struct Expectation {
    stats: TopicStats,
    model_version: u64,
    model_json: String,
    record_count: usize,
    records: Vec<String>,
    groups: Vec<Vec<service::TemplateGroup>>,
    distribution: Vec<(String, u64)>,
}

fn capture(topic: &LogTopic) -> Expectation {
    Expectation {
        stats: topic.stats(),
        model_version: topic.model_version(),
        model_json: serde_json::to_string(topic.model()).expect("model serializes"),
        record_count: topic.records().len(),
        records: topic.records().iter().map(|r| r.record.clone()).collect(),
        groups: THRESHOLDS
            .iter()
            .map(|&t| {
                (*topic.query(QueryOptions {
                    saturation_threshold: t,
                    limit: usize::MAX,
                }))
                .clone()
            })
            .collect(),
        distribution: topic.template_distribution(0.9),
    }
}

fn assert_recovered(recovered: &LogTopic, expected: &Expectation, ctx: &str) {
    assert_eq!(
        recovered.records().len(),
        expected.record_count,
        "{ctx}: record count"
    );
    let recovered_records: Vec<String> = recovered
        .records()
        .iter()
        .map(|r| r.record.clone())
        .collect();
    assert_eq!(recovered_records, expected.records, "{ctx}: record texts");
    assert_eq!(
        recovered.model_version(),
        expected.model_version,
        "{ctx}: model version"
    );
    assert_eq!(
        serde_json::to_string(recovered.model()).expect("model serializes"),
        expected.model_json,
        "{ctx}: model JSON (byte-identical)"
    );
    assert_eq!(recovered.stats(), expected.stats, "{ctx}: topic stats");
    for (i, &t) in THRESHOLDS.iter().enumerate() {
        let groups = (*recovered.query(QueryOptions {
            saturation_threshold: t,
            limit: usize::MAX,
        }))
        .clone();
        assert_eq!(
            groups, expected.groups[i],
            "{ctx}: group_by_template at threshold {t}"
        );
    }
    assert_eq!(
        recovered.template_distribution(0.9),
        expected.distribution,
        "{ctx}: template_distribution"
    );
}

// ---------------------------------------------------------------------------
// Durable wiring is semantically invisible
// ---------------------------------------------------------------------------

#[test]
fn durable_topic_matches_in_memory_twin() {
    let dir = scratch_dir("twin");
    let config = TopicConfig::new("web-access").with_volume_threshold(250);
    let mut durable =
        LogTopic::durable(config.clone(), &dir, fast_storage()).expect("create durable topic");
    let mut twin = LogTopic::new(config);

    for batch in [
        web_access_batch(0, 200),
        novel_batch(0, 120),
        web_access_batch(200, 150),
        novel_batch(120, 80),
    ] {
        durable.ingest(&batch);
        twin.ingest(&batch);
    }

    let d = durable.stats();
    let t = twin.stats();
    assert_eq!(d.total_records, t.total_records);
    assert_eq!(d.total_bytes, t.total_bytes);
    assert_eq!(d.templates, t.templates);
    assert_eq!(d.training_runs, t.training_runs);
    assert_eq!(d.maintenance_runs, t.maintenance_runs);
    for &threshold in &THRESHOLDS {
        let options = QueryOptions {
            saturation_threshold: threshold,
            limit: usize::MAX,
        };
        assert_eq!(
            *durable.query(options),
            *twin.query(options),
            "durable and in-memory topics must serve identical groups at {threshold}"
        );
    }
    assert_eq!(
        durable.template_distribution(0.9),
        twin.template_distribution(0.9)
    );
    fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------------
// Kill-and-recover differentials
// ---------------------------------------------------------------------------

#[test]
fn kill_and_recover_full_retrain_byte_identical() {
    let dir = scratch_dir("full-retrain");
    let config = TopicConfig::new("web-access").with_volume_threshold(250);
    let mut topic = LogTopic::durable(config, &dir, fast_storage()).expect("create durable topic");

    // Two full training runs (initial + volume-triggered) with temporary templates
    // from the novel family layered on top of the second epoch.
    topic.ingest(&web_access_batch(0, 200));
    topic.ingest(&novel_batch(0, 120));
    topic.ingest(&web_access_batch(200, 150));
    topic.ingest(&novel_batch(120, 80));
    assert!(topic.stats().training_runs >= 2, "retrain must have run");

    let expected = capture(&topic);
    let live_generation = topic.generation();
    drop(topic); // kill: all in-process state gone

    let recovered = LogTopic::open(&dir, fast_storage()).expect("recover topic");
    assert_recovered(&recovered, &expected, "full-retrain recovery");
    assert!(
        recovered.generation() > live_generation,
        "recovery must bump the topic generation"
    );
    assert!(recovered.storage().is_some());

    // A second restart replays the (generation-bumped) state just as faithfully.
    drop(recovered);
    let again = LogTopic::open(&dir, fast_storage()).expect("recover topic twice");
    assert_recovered(&again, &expected, "second recovery");
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn kill_and_recover_incremental_stream_maintenance() {
    let dir = scratch_dir("incremental");
    let config = TopicConfig::new("web-access-inc")
        .with_volume_threshold(100_000)
        .with_maintenance(MaintenancePolicy::Incremental {
            drift: DriftConfig::default()
                .with_window(200)
                .with_min_samples(50)
                .with_max_unmatched_rate(0.3),
            check_interval: 64,
        });
    let mut topic = LogTopic::durable(config, &dir, fast_storage()).expect("create durable topic");

    // Cold-start train on the known family, then stream a drifting workload so the
    // mid-stream drift check fires incremental maintenance (delta events in the
    // event log, moves re-applied on replay).
    topic.ingest(&web_access_batch(0, 300));
    let stream_config = IngestConfig {
        shards: 2,
        batch_records: 64,
        workers: 2,
        ..IngestConfig::default()
    };
    topic.ingest_stream(novel_batch(0, 400), &stream_config);
    topic.ingest(&web_access_batch(300, 100));
    assert!(
        topic.stats().maintenance_runs >= 1,
        "drift maintenance must have produced at least one delta event"
    );

    let expected = capture(&topic);
    drop(topic);

    let recovered = LogTopic::open(&dir, fast_storage()).expect("recover topic");
    assert_recovered(&recovered, &expected, "incremental recovery");
    fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------------
// WAL replay ≡ live state at every event boundary (seeded fuzz, satellite 4)
// ---------------------------------------------------------------------------

#[test]
fn wal_replay_equals_live_at_every_boundary() {
    let seeds = base_seed()..base_seed() + 3;
    for seed in seeds {
        let dir = scratch_dir(&format!("fuzz-{seed}"));
        let config = TopicConfig::new("fuzz")
            .with_volume_threshold(400)
            .with_maintenance(MaintenancePolicy::Incremental {
                drift: DriftConfig::default()
                    .with_window(200)
                    .with_min_samples(50)
                    .with_max_unmatched_rate(0.3),
                check_interval: 128,
            });
        let storage = fast_storage().with_retention_ttl(Duration::ZERO);
        let mut topic =
            LogTopic::durable(config, &dir, storage.clone()).expect("create durable topic");

        let mut rng = Rng(seed);
        let mut offset = 0usize;
        for op_index in 0..10 {
            let op = rng.below(6);
            match op {
                0 | 1 => {
                    let n = 40 + rng.below(80) as usize;
                    topic.ingest(&web_access_batch(offset, n));
                    offset += n;
                }
                2 => {
                    let n = 30 + rng.below(60) as usize;
                    topic.ingest(&novel_batch(offset, n));
                    offset += n;
                }
                3 => topic.run_training(),
                4 => {
                    topic.run_incremental_maintenance();
                }
                _ => {
                    topic.store().prune(2);
                    topic.run_storage_maintenance();
                }
            }

            // Kill here: freeze the directory exactly as the crash would leave it,
            // then recover from the frozen copy and compare against the live topic.
            let frozen = scratch_dir(&format!("fuzz-{seed}-boundary-{op_index}"));
            fs::remove_dir_all(&frozen).ok();
            copy_dir_all(&dir, &frozen);
            let expected = capture(&topic);
            let recovered = LogTopic::open(&frozen, storage.clone())
                .unwrap_or_else(|e| panic!("seed {seed} op {op_index} ({op}): recover: {e}"));
            assert_recovered(
                &recovered,
                &expected,
                &format!("seed {seed} boundary after op {op_index} (kind {op})"),
            );
            fs::remove_dir_all(&frozen).ok();
        }
        fs::remove_dir_all(&dir).ok();
    }
}

// ---------------------------------------------------------------------------
// Query-cache generation key (satellite 1 regression)
// ---------------------------------------------------------------------------

#[test]
fn query_cache_generation_prevents_stale_hits_after_eviction() {
    let dir = scratch_dir("cache-gen");
    let config = TopicConfig::new("cache-gen").with_volume_threshold(1_000_000);
    let storage = fast_storage().with_retention_ttl(Duration::ZERO);
    let mut topic = LogTopic::durable(config, &dir, storage).expect("create durable topic");

    // Train over two families, then query: the result (web + auth groups) lands in
    // the cache under (model_version, generation, record_count, threshold).
    let mut batch = web_access_batch(0, 150);
    batch.extend(auth_batch(0, 150));
    topic.ingest(&batch);
    let version_before = topic.model_version();
    let stale = (*topic.query(QueryOptions::default())).clone();
    assert!(!stale.is_empty());

    // TTL retention evicts every record; the generation must move so the old cache
    // entry can never be served again.
    let generation_before = topic.generation();
    let outcome = topic.run_storage_maintenance();
    assert_eq!(outcome.dropped_records, 300, "TTL=0 must evict everything");
    assert!(topic.records().is_empty());
    assert!(
        topic.generation() > generation_before,
        "retention must bump the generation"
    );

    // Refill to the *same* record count at the *same* model version with a
    // different record set. Without the generation in the key this collides with
    // the stale entry and the query would serve the evicted web+auth groups.
    topic.ingest(&auth_batch(1_000, 300));
    assert_eq!(
        topic.model_version(),
        version_before,
        "matched refill must not bump the model version (the collision scenario)"
    );
    assert_eq!(topic.records().len(), 300);

    let fresh = (*topic.query(QueryOptions::default())).clone();
    assert_ne!(fresh, stale, "cache must not serve pre-eviction groups");
    let total: usize = fresh.iter().map(|g| g.count()).sum();
    assert_eq!(
        total, 300,
        "fresh result must cover exactly the live records"
    );
    let (hits, misses) = topic.query_cache_stats();
    assert_eq!(hits, 0, "no query may hit across the eviction");
    assert_eq!(misses, 2);
    fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------------
// Crash windows: torn WAL tail, orphan segment files
// ---------------------------------------------------------------------------

#[test]
fn torn_wal_tail_and_orphan_segments_are_discarded() {
    use std::io::Write;

    let dir = scratch_dir("crash-window");
    let config = TopicConfig::new("crash").with_volume_threshold(1_000_000);
    let mut topic = LogTopic::durable(config, &dir, fast_storage()).expect("create durable topic");
    topic.ingest(&web_access_batch(0, 200));
    topic.ingest(&web_access_batch(200, 90)); // 26 records stay in the WAL tail
    let expected = capture(&topic);
    drop(topic);

    // Torn tail: the process died halfway through framing the next record.
    let mut wal = fs::OpenOptions::new()
        .append(true)
        .open(dir.join("wal.log"))
        .expect("open wal for corruption");
    wal.write_all(&[0x42, 0x00, 0x00, 0x00, 0xDE, 0xAD])
        .expect("append torn frame");
    drop(wal);

    // Orphan segment: flushed to disk but the crash hit before the manifest
    // recorded it. The manifest is the source of truth; the file must be ignored
    // and garbage-collected.
    let orphan = dir.join("segments").join("seg-99999999.seg");
    fs::write(&orphan, b"not a segment").expect("plant orphan segment");

    let recovered = LogTopic::open(&dir, fast_storage()).expect("recover after crash");
    assert_recovered(&recovered, &expected, "crash-window recovery");
    assert!(
        !orphan.exists(),
        "orphan segment file must be garbage-collected on open"
    );
    fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------------
// Fleet recovery through ServiceManager::open
// ---------------------------------------------------------------------------

#[test]
fn manager_fleet_recovery_round_trips_all_topics() {
    let root = scratch_dir("fleet");
    let storage = fast_storage();
    let mut manager =
        ServiceManager::durable(&root, storage.clone()).expect("create durable manager");

    // Tenant/topic names with separators and non-ASCII exercise the directory
    // encoding; each topic gets a distinct workload.
    manager.ingest("acme", "web", &web_access_batch(0, 200));
    manager.ingest("acme", "auth:prod", &auth_batch(0, 180));
    manager.ingest("globex/β", "scrub", &novel_batch(0, 160));
    manager.ingest("acme", "web", &web_access_batch(200, 120));

    let keys = [
        ("acme", "web"),
        ("acme", "auth:prod"),
        ("globex/β", "scrub"),
    ];
    let expected: Vec<Expectation> = keys
        .iter()
        .map(|(tenant, topic)| capture(manager.topic(tenant, topic).expect("topic exists")))
        .collect();
    let fleet_before = manager.fleet_stats();
    drop(manager);

    let recovered = ServiceManager::open_with(&root, storage).expect("reopen fleet");
    assert_eq!(recovered.topic_count(), 3);
    let mut acme_topics = recovered.topics_of("acme");
    acme_topics.sort_unstable();
    assert_eq!(acme_topics, vec!["auth:prod", "web"]);
    assert_eq!(recovered.topics_of("globex/β"), vec!["scrub"]);
    for ((tenant, topic), exp) in keys.iter().zip(&expected) {
        let recovered_topic = recovered
            .topic(tenant, topic)
            .unwrap_or_else(|| panic!("topic {tenant}/{topic} missing after recovery"));
        assert_recovered(
            recovered_topic,
            exp,
            &format!("fleet topic {tenant}/{topic}"),
        );
    }
    assert_eq!(recovered.fleet_stats(), fleet_before);
    fs::remove_dir_all(&root).ok();
}
