//! Multi-tenant service manager.
//!
//! The paper's setting is a cloud log service where many tenants each own many log
//! topics, every topic gets out-of-the-box parsing, and compute is bounded per topic
//! (1–5 cores, §3 "Parallel"). `ServiceManager` is the thin multi-tenant layer on top of
//! [`LogTopic`]: it routes ingestion to the right topic, creates topics on first use with
//! per-tenant defaults, and exposes fleet-wide statistics of the kind Table 5 reports.

use crate::ingest::IngestConfig;
use crate::query::{QueryOptions, QuerySnapshot, QueryValue, TemplateGroup};
use crate::storage::{self, RetentionOutcome, StorageConfig, TopicStorage};
use crate::topic::{
    IngestOutcome, LogTopic, MaintenancePolicy, StreamOutcome, StreamOverloaded, TopicConfig,
    TopicStats,
};
use bytebrain::{MatchEngine, QueryPlan};
use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Per-tenant configuration defaults applied to newly created topics.
#[derive(Debug, Clone)]
pub struct TenantDefaults {
    /// Train after this many newly ingested records.
    pub volume_threshold: u64,
    /// Worker threads per topic (the paper bounds this to 1–5 in production).
    pub parallelism: usize,
    /// Model-maintenance policy for the tenant's topics (full retrain by default;
    /// evolving-workload tenants opt into incremental maintenance).
    pub maintenance: MaintenancePolicy,
    /// Matching engine for the tenant's topics (compiled automaton by default;
    /// [`MatchEngine::TreeWalk`] is the escape hatch).
    pub match_engine: MatchEngine,
}

impl Default for TenantDefaults {
    fn default() -> Self {
        TenantDefaults {
            volume_threshold: 50_000,
            parallelism: 2,
            maintenance: MaintenancePolicy::FullRetrain,
            match_engine: MatchEngine::default(),
        }
    }
}

/// Fleet-wide statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetStats {
    /// Number of tenants with at least one topic.
    pub tenants: usize,
    /// Number of topics.
    pub topics: usize,
    /// Total records ingested across all topics.
    pub total_records: u64,
    /// Total bytes ingested across all topics.
    pub total_bytes: u64,
    /// Sum of all model sizes, in bytes.
    pub total_model_bytes: u64,
}

/// The multi-tenant manager: `(tenant, topic name)` → [`LogTopic`].
#[derive(Debug, Default)]
pub struct ServiceManager {
    topics: BTreeMap<(String, String), LogTopic>,
    defaults: BTreeMap<String, TenantDefaults>,
    /// When set, topics are durable: auto-created under
    /// `<root>/<tenant dir>/<topic dir>` and recovered by [`ServiceManager::open`].
    storage_root: Option<PathBuf>,
    storage_config: StorageConfig,
}

/// Encode a tenant/topic key as a filesystem directory name: alphanumerics, `-` and
/// `_` pass through, everything else is percent-encoded byte-wise. Injective, so two
/// distinct keys can never collide on one directory.
fn dir_name_of(key: &str) -> String {
    let mut out = String::with_capacity(key.len());
    for byte in key.bytes() {
        match byte {
            b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'-' | b'_' => out.push(byte as char),
            other => out.push_str(&format!("%{other:02X}")),
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

impl ServiceManager {
    /// An empty manager.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty **durable** manager: every topic created through it is backed by the
    /// storage tier under `root` (see [`ServiceManager::open`] to recover one).
    pub fn durable(root: &Path, storage: StorageConfig) -> io::Result<Self> {
        fs::create_dir_all(root)?;
        Ok(ServiceManager {
            storage_root: Some(root.to_path_buf()),
            storage_config: storage,
            ..Self::default()
        })
    }

    /// Open (or initialize) a durable service at `root` with default storage tuning:
    /// every topic store under `<root>/<tenant>/<topic>` is recovered — model lineage
    /// replayed, postings loaded from segments, no retraining and no re-matching —
    /// and new topics are auto-created durable.
    pub fn open(root: &Path) -> io::Result<Self> {
        Self::open_with(root, StorageConfig::default())
    }

    /// [`ServiceManager::open`] with explicit storage tuning.
    pub fn open_with(root: &Path, storage_config: StorageConfig) -> io::Result<Self> {
        let mut manager = Self::durable(root, storage_config.clone())?;
        for tenant_entry in fs::read_dir(root)? {
            let tenant_dir = tenant_entry?.path();
            if !tenant_dir.is_dir() {
                continue;
            }
            for topic_entry in fs::read_dir(&tenant_dir)? {
                let dir = topic_entry?.path();
                if !dir.is_dir() || !TopicStorage::exists(&dir) {
                    continue;
                }
                let meta = storage::read_topic_meta(&dir)?;
                let topic = LogTopic::open(&dir, storage_config.clone())?;
                manager
                    .topics
                    .insert((meta.tenant.clone(), meta.topic.clone()), topic);
            }
        }
        Ok(manager)
    }

    /// The storage root of a durable manager (`None` for in-memory managers).
    pub fn storage_root(&self) -> Option<&Path> {
        self.storage_root.as_deref()
    }

    /// Run TTL retention + segment compaction across the whole fleet (the
    /// "background" maintenance pass — call it from a scheduler loop). Returns the
    /// per-topic outcomes of topics that dropped anything.
    pub fn run_storage_maintenance(&mut self) -> Vec<((String, String), RetentionOutcome)> {
        let mut outcomes = Vec::new();
        for (key, topic) in &mut self.topics {
            let outcome = topic.run_storage_maintenance();
            if outcome.dropped_segments > 0 {
                outcomes.push((key.clone(), outcome));
            }
        }
        outcomes
    }

    /// Set per-tenant defaults used when the tenant's topics are auto-created.
    pub fn set_tenant_defaults(&mut self, tenant: &str, defaults: TenantDefaults) {
        self.defaults.insert(tenant.to_string(), defaults);
    }

    /// Number of topics across all tenants.
    pub fn topic_count(&self) -> usize {
        self.topics.len()
    }

    /// Names of a tenant's topics.
    pub fn topics_of(&self, tenant: &str) -> Vec<&str> {
        self.topics
            .keys()
            .filter(|(t, _)| t == tenant)
            .map(|(_, name)| name.as_str())
            .collect()
    }

    /// Get (or create) a tenant's topic.
    pub fn topic_mut(&mut self, tenant: &str, topic: &str) -> &mut LogTopic {
        let key = (tenant.to_string(), topic.to_string());
        if !self.topics.contains_key(&key) {
            let defaults = self.defaults.get(tenant).cloned().unwrap_or_default();
            let mut config = TopicConfig::new(&format!("{tenant}/{topic}"))
                .with_volume_threshold(defaults.volume_threshold)
                .with_maintenance(defaults.maintenance)
                .with_match_engine(defaults.match_engine);
            config.train.parallelism = defaults.parallelism;
            let created = match &self.storage_root {
                Some(root) => {
                    let dir = root.join(dir_name_of(tenant)).join(dir_name_of(topic));
                    LogTopic::durable_keyed(
                        tenant,
                        topic,
                        config,
                        &dir,
                        self.storage_config.clone(),
                    )
                    .expect("create durable topic store")
                }
                None => LogTopic::new(config),
            };
            self.topics.insert(key.clone(), created);
        }
        self.topics.get_mut(&key).expect("topic just ensured")
    }

    /// Borrow an existing topic.
    pub fn topic(&self, tenant: &str, topic: &str) -> Option<&LogTopic> {
        self.topics.get(&(tenant.to_string(), topic.to_string()))
    }

    /// Ingest a batch into a tenant's topic (creating it on first use).
    pub fn ingest<S: AsRef<str> + Sync>(
        &mut self,
        tenant: &str,
        topic: &str,
        batch: &[S],
    ) -> IngestOutcome {
        self.topic_mut(tenant, topic).ingest(batch)
    }

    /// Ingest a record stream into a tenant's topic (creating it on first use) through
    /// the sharded streaming engine. The engine's worker count is clamped to the
    /// topic's provisioned per-topic parallelism, mirroring the paper's 1–5 core bound.
    pub fn ingest_stream<I>(
        &mut self,
        tenant: &str,
        topic: &str,
        records: I,
        config: &IngestConfig,
    ) -> StreamOutcome
    where
        I: IntoIterator<Item = String>,
    {
        let topic = self.topic_mut(tenant, topic);
        // Clamp against what the topic was provisioned with, not the (mutable)
        // tenant-defaults map — later default changes must not widen existing topics.
        let parallelism = topic.config().train.parallelism.max(1);
        let config = config.clone().with_workers(config.workers.min(parallelism));
        topic.ingest_stream(records, &config)
    }

    /// Bounded-back-pressure variant of [`ServiceManager::ingest_stream`]: sheds
    /// instead of blocking indefinitely when the pool saturates past `wait`. See
    /// [`LogTopic::ingest_stream_bounded`] for the prefix/remainder contract.
    pub fn ingest_stream_bounded<I>(
        &mut self,
        tenant: &str,
        topic: &str,
        records: I,
        config: &IngestConfig,
        wait: std::time::Duration,
    ) -> Result<StreamOutcome, Box<StreamOverloaded>>
    where
        I: IntoIterator<Item = String>,
    {
        let topic = self.topic_mut(tenant, topic);
        let parallelism = topic.config().train.parallelism.max(1);
        let config = config.clone().with_workers(config.workers.min(parallelism));
        topic.ingest_stream_bounded(records, &config, wait)
    }

    /// Query a tenant's topic: group its stored records by template at the requested
    /// precision through the indexed path (postings + saturation ladder + LRU cache).
    /// Returns `None` when the topic does not exist. Takes `&self` — queries never
    /// block or mutate topic state, and many can run side by side; the result is the
    /// cache-shared `Arc`, so warm queries copy nothing.
    pub fn query(
        &self,
        tenant: &str,
        topic: &str,
        options: QueryOptions,
    ) -> Option<std::sync::Arc<Vec<TemplateGroup>>> {
        self.topic(tenant, topic).map(|t| t.query(options))
    }

    /// Execute a composed [`QueryPlan`] against a tenant's topic through the
    /// planned push-down path (cached). Returns `None` when the topic does not
    /// exist. This is the full query surface — predicates, time windows,
    /// top-k, distribution, count-distinct — of which [`ServiceManager::query`]
    /// and [`ServiceManager::template_distribution`] are fixed-shape special
    /// cases.
    pub fn execute(&self, tenant: &str, topic: &str, plan: &QueryPlan) -> Option<QueryValue> {
        self.topic(tenant, topic).map(|t| t.execute(plan))
    }

    /// Template-count distribution of a tenant's topic at the requested precision
    /// (planned path, counts-only): deterministic `(template, count)` pairs sorted
    /// by count descending then template ascending. Returns `None` when the topic
    /// does not exist.
    pub fn template_distribution(
        &self,
        tenant: &str,
        topic: &str,
        threshold: f64,
    ) -> Option<Vec<(String, u64)>> {
        self.topic(tenant, topic)
            .map(|t| t.template_distribution(threshold))
    }

    /// An immutable query snapshot of a tenant's topic (model + ladder + postings
    /// behind `Arc`s): hand it to worker threads and keep ingesting — the topic
    /// copies-on-write whatever the snapshot still shares.
    pub fn query_snapshot(&self, tenant: &str, topic: &str) -> Option<QuerySnapshot> {
        self.topic(tenant, topic).map(|t| t.query_snapshot())
    }

    /// Per-topic statistics, keyed by `(tenant, topic)`.
    pub fn topic_stats(&self) -> Vec<((String, String), TopicStats)> {
        self.topics
            .iter()
            .map(|(key, topic)| (key.clone(), topic.stats()))
            .collect()
    }

    /// Fleet-wide aggregate statistics.
    pub fn fleet_stats(&self) -> FleetStats {
        let mut tenants: std::collections::BTreeSet<&str> = std::collections::BTreeSet::new();
        let mut total_records = 0u64;
        let mut total_bytes = 0u64;
        let mut total_model_bytes = 0u64;
        for ((tenant, _), topic) in &self.topics {
            tenants.insert(tenant.as_str());
            let stats = topic.stats();
            total_records += stats.total_records;
            total_bytes += stats.total_bytes;
            total_model_bytes += stats.model_size_bytes;
        }
        FleetStats {
            tenants: tenants.len(),
            topics: self.topics.len(),
            total_records,
            total_bytes,
            total_model_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch(prefix: &str, n: usize) -> Vec<String> {
        (0..n)
            .map(|i| format!("{prefix} event {} completed with status {}", i, i % 4))
            .collect()
    }

    #[test]
    fn topics_are_created_on_first_ingest() {
        let mut manager = ServiceManager::new();
        assert_eq!(manager.topic_count(), 0);
        manager.ingest("tenant-a", "web", &batch("web", 200));
        manager.ingest("tenant-a", "db", &batch("db", 200));
        manager.ingest("tenant-b", "web", &batch("web", 200));
        assert_eq!(manager.topic_count(), 3);
        assert_eq!(manager.topics_of("tenant-a"), vec!["db", "web"]);
    }

    #[test]
    fn topics_are_isolated_between_tenants() {
        let mut manager = ServiceManager::new();
        manager.ingest("a", "logs", &batch("alpha", 300));
        manager.ingest("b", "logs", &batch("beta", 100));
        let a = manager.topic("a", "logs").unwrap().stats();
        let b = manager.topic("b", "logs").unwrap().stats();
        assert_eq!(a.total_records, 300);
        assert_eq!(b.total_records, 100);
        // Each tenant's model is trained only on its own stream.
        assert!(manager
            .topic("a", "logs")
            .unwrap()
            .model()
            .nodes
            .iter()
            .all(|n| !n.template_text().contains("beta")));
    }

    #[test]
    fn tenant_defaults_apply_to_new_topics() {
        let mut manager = ServiceManager::new();
        manager.set_tenant_defaults(
            "big-tenant",
            TenantDefaults {
                volume_threshold: 10,
                parallelism: 1,
                ..TenantDefaults::default()
            },
        );
        // The low volume threshold makes the second small batch trigger retraining.
        manager.ingest("big-tenant", "app", &batch("app", 50));
        let outcome = manager.ingest("big-tenant", "app", &batch("app", 50));
        assert!(outcome.trained);
    }

    #[test]
    fn fleet_stats_aggregate_all_topics() {
        let mut manager = ServiceManager::new();
        manager.ingest("a", "x", &batch("x", 100));
        manager.ingest("a", "y", &batch("y", 100));
        manager.ingest("b", "z", &batch("z", 100));
        let fleet = manager.fleet_stats();
        assert_eq!(fleet.tenants, 2);
        assert_eq!(fleet.topics, 3);
        assert_eq!(fleet.total_records, 300);
        assert!(fleet.total_bytes > 0);
        assert!(fleet.total_model_bytes > 0);
        assert_eq!(manager.topic_stats().len(), 3);
    }

    #[test]
    fn missing_topic_lookup_returns_none() {
        let manager = ServiceManager::new();
        assert!(manager.topic("nobody", "nothing").is_none());
    }

    #[test]
    fn query_entry_point_serves_indexed_groups() {
        let mut manager = ServiceManager::new();
        manager.ingest("a", "web", &batch("web", 300));
        let groups = manager
            .query("a", "web", QueryOptions::default())
            .expect("topic exists");
        let covered: usize = groups.iter().map(|g| g.count()).sum();
        assert_eq!(covered, 300);
        let distribution = manager
            .template_distribution("a", "web", 0.9)
            .expect("topic exists");
        assert_eq!(distribution.iter().map(|(_, c)| *c).sum::<u64>(), 300);
        assert!(manager
            .query("nobody", "nothing", QueryOptions::default())
            .is_none());
        assert!(manager.query_snapshot("nobody", "nothing").is_none());
    }

    #[test]
    fn snapshot_queries_run_concurrently_with_ingestion() {
        let mut manager = ServiceManager::new();
        manager.ingest("a", "web", &batch("web", 400));
        let snapshot = manager.query_snapshot("a", "web").expect("topic exists");
        let baseline = snapshot.group_by_template(QueryOptions::default());
        std::thread::scope(|scope| {
            // Queries serve from the immutable snapshot on worker threads...
            let workers: Vec<_> = (0..4)
                .map(|_| {
                    let snapshot = snapshot.clone();
                    scope.spawn(move || snapshot.group_by_template(QueryOptions::default()))
                })
                .collect();
            // ...while the manager keeps ingesting into the same topic.
            manager.ingest("a", "web", &batch("more", 200));
            for worker in workers {
                let groups = worker.join().expect("query thread panicked");
                assert_eq!(groups, baseline, "snapshot must be immutable under ingest");
            }
        });
        // The live topic sees the new records; the old snapshot still does not.
        let live = manager
            .query("a", "web", QueryOptions::default())
            .expect("topic exists");
        assert_eq!(live.iter().map(|g| g.count()).sum::<usize>(), 600);
        assert_eq!(snapshot.records(), 400);
    }

    #[test]
    fn incremental_tenant_defaults_propagate_to_topics() {
        use bytebrain::incremental::DriftConfig;
        let mut manager = ServiceManager::new();
        manager.set_tenant_defaults(
            "evolving",
            TenantDefaults {
                maintenance: MaintenancePolicy::Incremental {
                    drift: DriftConfig::default()
                        .with_window(200)
                        .with_min_samples(50)
                        .with_max_unmatched_rate(0.3),
                    check_interval: 512,
                },
                ..TenantDefaults::default()
            },
        );
        manager.ingest("evolving", "app", &batch("app", 300));
        // A drifting follow-up maintains incrementally instead of retraining.
        let novel: Vec<String> = (0..150)
            .map(|i| format!("thermal throttle on core {} at {} mC", i % 8, 70_000 + i))
            .collect();
        let outcome = manager.ingest("evolving", "app", &novel);
        assert!(!outcome.trained);
        assert!(outcome.maintained >= 1, "drift must maintain: {outcome:?}");
        let stats = manager.topic("evolving", "app").unwrap().stats();
        assert_eq!(stats.training_runs, 1);
        assert!(stats.maintenance_runs >= 1);
    }
}
