//! Durable snapshot/delta lineage for the model store.
//!
//! `lineage.log` holds one CRC frame per [`ModelStore`](crate::store::ModelStore)
//! snapshot: the [`SnapshotInfo`] metadata (version,
//! kind, parent link) plus the JSON payload — a full model for
//! `SnapshotKind::Full`, a `ModelDelta` for `SnapshotKind::Delta`. On restart
//! the whole store is restored from this log, so a recovered topic replays its
//! cold-start training plus the delta chain instead of retraining; the
//! f64 fields round-trip exactly (shortest-representation JSON floats), which
//! the byte-identity recovery differential depends on.
//!
//! The log is append-only; [`LineageSink::rewrite`] (used by
//! `ModelStore::prune`) atomically replaces it with the retained set via a tmp
//! file + rename.

use super::framing::{Dec, Enc, FrameLog};
use crate::store::{SnapshotInfo, SnapshotKind};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// One restored lineage entry: snapshot metadata plus its JSON payload.
#[derive(Debug, Clone)]
pub struct LineageEntry {
    /// Snapshot metadata (version, kind, parent link, sizes).
    pub info: SnapshotInfo,
    /// The serialized model (full) or delta payload.
    pub payload: String,
}

fn encode_entry(info: &SnapshotInfo, payload: &str) -> Vec<u8> {
    let mut enc = Enc::new();
    enc.u64(info.version);
    enc.u8(match info.kind {
        SnapshotKind::Full => 0,
        SnapshotKind::Delta => 1,
    });
    enc.u64(info.parent.map(|p| p + 1).unwrap_or(0));
    enc.u64(info.num_templates as u64);
    enc.u64(info.size_bytes);
    enc.u64(info.trained_records);
    enc.bytes(payload.as_bytes());
    enc.finish()
}

fn decode_entry(payload: &[u8]) -> io::Result<LineageEntry> {
    let mut dec = Dec::new(payload);
    let version = dec.u64()?;
    let kind = match dec.u8()? {
        0 => SnapshotKind::Full,
        1 => SnapshotKind::Delta,
        other => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unknown snapshot kind {other}"),
            ))
        }
    };
    let parent_raw = dec.u64()?;
    let parent = if parent_raw == 0 {
        None
    } else {
        Some(parent_raw - 1)
    };
    let num_templates = dec.u64()? as usize;
    let size_bytes = dec.u64()?;
    let trained_records = dec.u64()?;
    let body = dec.string()?;
    Ok(LineageEntry {
        info: SnapshotInfo {
            version,
            kind,
            parent,
            num_templates,
            size_bytes,
            trained_records,
        },
        payload: body,
    })
}

/// The append side of the lineage log, shared between the topic's
/// [`TopicStorage`](super::TopicStorage) (which owns fsync batching) and its
/// [`ModelStore`](crate::store::ModelStore) (which appends on every save).
#[derive(Debug, Clone)]
pub struct LineageSink {
    inner: Arc<Mutex<LineageLog>>,
}

#[derive(Debug)]
struct LineageLog {
    path: PathBuf,
    log: FrameLog,
}

impl LineageSink {
    /// Open (or create) `lineage.log` in `dir`, returning the sink plus every
    /// intact entry already on disk (append order == version order).
    pub fn open(dir: &Path) -> io::Result<(Self, Vec<LineageEntry>)> {
        let path = dir.join("lineage.log");
        let mut entries = Vec::new();
        let mut bad = false;
        let log = FrameLog::open(&path, |frame| match decode_entry(frame) {
            Ok(entry) => entries.push(entry),
            Err(_) => bad = true,
        })?;
        if bad {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "undecodable lineage entry",
            ));
        }
        Ok((
            LineageSink {
                inner: Arc::new(Mutex::new(LineageLog { path, log })),
            },
            entries,
        ))
    }

    /// Append one snapshot (called by `ModelStore::save`/`save_delta` while it
    /// holds its own lock; durability lands at the next storage commit).
    pub fn append(&self, info: &SnapshotInfo, payload: &str) -> io::Result<()> {
        let mut inner = self.inner.lock().expect("lineage sink poisoned");
        inner.log.append(&encode_entry(info, payload))
    }

    /// Atomically replace the log with `retained` (ascending version order) —
    /// the durable counterpart of `ModelStore::prune`.
    pub fn rewrite(&self, retained: &[(SnapshotInfo, String)]) -> io::Result<()> {
        let mut inner = self.inner.lock().expect("lineage sink poisoned");
        let tmp = inner.path.with_extension("log.tmp");
        {
            let mut fresh = FrameLog::open(&tmp, |_| {})?;
            fresh.truncate()?;
            for (info, payload) in retained {
                fresh.append(&encode_entry(info, payload))?;
            }
            fresh.sync()?;
        }
        std::fs::rename(&tmp, &inner.path)?;
        // Reopen the renamed file so future appends extend the rewritten log.
        inner.log = FrameLog::open(&inner.path, |_| {})?;
        Ok(())
    }

    /// Flush appended entries to stable storage (fsync-batched by the topic's
    /// commit points).
    pub fn sync(&self) -> io::Result<()> {
        self.inner.lock().expect("lineage sink poisoned").log.sync()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn info(version: u64, kind: SnapshotKind, parent: Option<u64>) -> SnapshotInfo {
        SnapshotInfo {
            version,
            kind,
            parent,
            num_templates: 5,
            size_bytes: 100,
            trained_records: 42,
        }
    }

    #[test]
    fn lineage_appends_survive_reopen() {
        let dir = std::env::temp_dir().join(format!("bb-lineage-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        {
            let (sink, entries) = LineageSink::open(&dir).unwrap();
            assert!(entries.is_empty());
            sink.append(&info(1, SnapshotKind::Full, None), "{\"full\":1}")
                .unwrap();
            sink.append(&info(2, SnapshotKind::Delta, Some(1)), "{\"delta\":2}")
                .unwrap();
            sink.sync().unwrap();
        }
        let (sink, entries) = LineageSink::open(&dir).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].info.version, 1);
        assert_eq!(entries[0].info.kind, SnapshotKind::Full);
        assert_eq!(entries[1].info.parent, Some(1));
        assert_eq!(entries[1].payload, "{\"delta\":2}");
        // Rewrite with only the delta's chain retained.
        sink.rewrite(&[(entries[1].info.clone(), entries[1].payload.clone())])
            .unwrap();
        let (_, entries) = LineageSink::open(&dir).unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].info.version, 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
