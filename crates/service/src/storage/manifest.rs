//! The topic manifest: the single source of truth for what is durable.
//!
//! `MANIFEST.json` names the live segments and the epoch/counter state a
//! replay needs. It is rewritten atomically (tmp + fsync + rename) at every
//! seal, epoch boundary, retention pass and compaction — a crash leaves either
//! the old manifest or the new one, never a torn file. Anything on disk the
//! manifest does not reference (an orphan segment from a crash mid-seal) is
//! garbage and is deleted on open.

use serde::{Deserialize, Serialize};
use std::fs::{self, File};
use std::io::{self, Write};
use std::path::Path;

/// Current manifest format version.
pub const MANIFEST_FORMAT: u32 = 1;

/// Metadata of one sealed segment, as recorded in the manifest.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SegmentMeta {
    /// Segment id (names the file `seg-<id>.seg`).
    pub id: u64,
    /// Sequence number of the segment's first record.
    pub first_seq: u64,
    /// Number of records sealed in the segment.
    pub records: u64,
    /// Accounted bytes (text + newline per record).
    pub bytes: u64,
    /// Records flagged unmatched-at-ingest. A segment is only droppable by
    /// retention when this is zero — replaying the epoch's model re-executes
    /// the temporary-template insertion of every flagged record, so their
    /// texts must survive as long as the epoch does.
    pub flagged: u64,
    /// Seal wall-clock time (unix seconds) — the TTL clock.
    pub created_at: u64,
    /// Ingest throughput (records/s) of the run that sealed the segment; `0.0`
    /// when unknown. Always finite: the stats path clamps empty reports.
    pub throughput: f64,
}

impl SegmentMeta {
    /// Sequence number one past the segment's last record.
    pub fn end_seq(&self) -> u64 {
        self.first_seq + self.records
    }
}

/// The durable topic state (see module docs for the rewrite points).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Manifest {
    /// Manifest format version.
    pub format: u32,
    /// Monotonic topic generation: bumped on recovery, retention expiry and
    /// compaction. Part of the query-cache key, so results cached against a
    /// previous record *set* (same count, different records) can never be
    /// served after the set changed.
    pub generation: u64,
    /// WAL records with `seq <` this are already sealed into segments and are
    /// skipped during replay (a crash between manifest rewrite and WAL
    /// truncation leaves such duplicates behind).
    pub wal_base_seq: u64,
    /// Sequence number of the oldest retained record (advanced by retention).
    pub first_live_seq: u64,
    /// Sequence position of the current epoch boundary (the last full
    /// retrain): records at or past it feed the training/unmatched buffers.
    pub epoch_start_seq: u64,
    /// Model-store version of the epoch's base snapshot (0 = no model yet).
    /// Replay starts from this full snapshot and folds the event log's deltas
    /// in — a restart never retrains.
    pub epoch_base_version: u64,
    /// Topic model version at the epoch boundary (replay adds one bump per
    /// temporary insertion and per delta event, reproducing the live value).
    pub model_version_at_epoch: u64,
    /// Completed incremental maintenance runs as of the epoch boundary
    /// (replayed delta events are added on top).
    pub maintenance_runs_at_epoch: u64,
    /// Wall-clock seconds of the most recent maintenance run as of the epoch
    /// boundary (a retrain truncates the event log, so replay cannot derive it).
    pub last_maintenance_seconds_at_epoch: f64,
    /// Completed full training runs.
    pub training_runs: u64,
    /// Wall-clock seconds of the most recent full training run.
    pub last_training_seconds: f64,
    /// Accounted bytes of records dropped by retention (keeps `total_bytes`
    /// exact across restarts even after segments are gone).
    pub bytes_dropped: u64,
    /// Next segment id to allocate.
    pub next_segment_id: u64,
    /// Live segments, ascending by `first_seq` (contiguous sequence ranges).
    pub segments: Vec<SegmentMeta>,
}

impl Manifest {
    /// The manifest of a brand-new topic.
    pub fn new() -> Self {
        Manifest {
            format: MANIFEST_FORMAT,
            generation: 0,
            wal_base_seq: 0,
            first_live_seq: 0,
            epoch_start_seq: 0,
            epoch_base_version: 0,
            model_version_at_epoch: 0,
            maintenance_runs_at_epoch: 0,
            last_maintenance_seconds_at_epoch: 0.0,
            training_runs: 0,
            last_training_seconds: 0.0,
            bytes_dropped: 0,
            next_segment_id: 1,
            segments: Vec::new(),
        }
    }

    /// Sequence number the WAL tail resumes at (one past the last sealed
    /// record).
    pub fn sealed_end_seq(&self) -> u64 {
        self.segments
            .last()
            .map(|s| s.end_seq())
            .unwrap_or(self.wal_base_seq)
            .max(self.wal_base_seq)
    }
}

impl Default for Manifest {
    fn default() -> Self {
        Self::new()
    }
}

/// Atomically persist the manifest at `path` (tmp + fsync + rename).
pub fn write_manifest(path: &Path, manifest: &Manifest) -> io::Result<()> {
    let json = serde_json::to_string_pretty(manifest)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    let tmp = path.with_extension("json.tmp");
    {
        let mut file = File::create(&tmp)?;
        file.write_all(json.as_bytes())?;
        file.sync_data()?;
    }
    fs::rename(&tmp, path)
}

/// Load the manifest at `path`; `Ok(None)` when no manifest exists yet.
pub fn read_manifest(path: &Path) -> io::Result<Option<Manifest>> {
    let text = match fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    let corrupt = |msg: String| io::Error::new(io::ErrorKind::InvalidData, msg);
    let manifest: Manifest =
        serde_json::from_str(&text).map_err(|e| corrupt(format!("manifest decode error: {e}")))?;
    if manifest.format != MANIFEST_FORMAT {
        return Err(corrupt(format!(
            "unsupported manifest format {}",
            manifest.format
        )));
    }
    Ok(Some(manifest))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_round_trip() {
        let dir = std::env::temp_dir().join(format!("bb-manifest-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("MANIFEST.json");
        assert!(read_manifest(&path).unwrap().is_none());
        let mut manifest = Manifest::new();
        manifest.generation = 3;
        manifest.training_runs = 2;
        manifest.last_training_seconds = 0.25;
        manifest.segments.push(SegmentMeta {
            id: 1,
            first_seq: 0,
            records: 512,
            bytes: 20_000,
            flagged: 0,
            created_at: 1_700_000_000,
            throughput: 150_000.0,
        });
        write_manifest(&path, &manifest).unwrap();
        let loaded = read_manifest(&path).unwrap().expect("manifest exists");
        assert_eq!(loaded.generation, 3);
        assert_eq!(loaded.training_runs, 2);
        assert_eq!(loaded.segments.len(), 1);
        assert_eq!(loaded.segments[0].end_seq(), 512);
        assert_eq!(loaded.sealed_end_seq(), 512);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
