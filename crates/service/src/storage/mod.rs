//! Durable tiered storage: WAL → immutable columnar segments → retention.
//!
//! Everything a [`LogTopic`](crate::topic::LogTopic) needs to survive a crash
//! lives in one directory per topic:
//!
//! ```text
//! <topic dir>/
//!   meta.json       topic configuration (name, policy, train config)
//!   MANIFEST.json   durable state: live segments, epoch, counters, generation
//!   wal.log         CRC-framed records since the last segment seal
//!   events.log      CRC-framed delta events since the last epoch boundary
//!   lineage.log     model snapshot/delta lineage (the ModelStore, durable)
//!   segments/       immutable columnar segments (seg-<id>.seg)
//! ```
//!
//! **Write path.** Every ingested record is appended to the WAL with its
//! ingest-time match outcome; appends are fsync-batched at commit points (the
//! end of each ingest call and every maintenance checkpoint). When enough
//! records accumulate, the commit seals them into a columnar segment —
//! template-id column, text column, variable column, per-node postings — and
//! restarts the WAL. Incremental maintenance appends one event (delta version
//! and record moves) to the event log; a full retrain is an **epoch boundary**:
//! it rewrites every live record into fresh baseline segments carrying the
//! post-retrain assignments, truncates the WAL and event log, and atomically
//! swaps the manifest.
//!
//! **Recovery** ([`TopicStorage::open`]) replays the manifest's segments, the
//! WAL tail and the event log on top of the epoch's base model snapshot from
//! the lineage log. The replay re-executes the deterministic
//! temporary-template insertions of flagged records and folds in the stored
//! deltas — it never re-matches a line (postings come from the segments) and
//! never retrains.
//!
//! **Retention invariant.** A segment may be dropped only when (a) its TTL
//! expired, (b) it holds zero unmatched-at-ingest records (their texts drive
//! the epoch's model replay), (c) it sits outside the current training window
//! (sealed before the epoch, or past the training-buffer capacity), and
//! (d) every older segment was dropped first (the record store stays a
//! contiguous sequence range). Compaction merges adjacent under-filled
//! segments; both passes bump the topic **generation**, which is part of the
//! query-cache key.

pub mod framing;
pub mod lineage;
pub mod manifest;
pub mod segment;
pub mod summary;
pub mod wal;

pub use lineage::{LineageEntry, LineageSink};
pub use manifest::{Manifest, SegmentMeta};
pub use segment::Segment;
pub use summary::SegmentSummary;
pub use wal::{DeltaEvent, RecordMove, WalRecord};

use crate::topic::{MaintenancePolicy, StoredRecord, TopicConfig};
use bytebrain::incremental::DriftConfig;
use bytebrain::{MatchEngine, NodeId, TrainConfig};
use framing::FrameLog;
use serde::{Deserialize, Serialize};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Tuning knobs of the storage tier.
#[derive(Debug, Clone)]
pub struct StorageConfig {
    /// Seal a columnar segment once this many records sit in the WAL.
    pub segment_records: usize,
    /// fsync at commit points (disable only for benchmarks — a crash may then
    /// lose the tail the OS had not flushed, though framing keeps it safe).
    pub fsync: bool,
    /// Drop expired segments that satisfy the retention invariant; `None`
    /// keeps everything forever.
    pub retention_ttl: Option<Duration>,
    /// Compaction merges adjacent segments smaller than this.
    pub compact_min_records: usize,
}

impl Default for StorageConfig {
    fn default() -> Self {
        StorageConfig {
            segment_records: 4096,
            fsync: true,
            retention_ttl: None,
            compact_min_records: 1024,
        }
    }
}

impl StorageConfig {
    /// Override the segment seal threshold.
    pub fn with_segment_records(mut self, records: usize) -> Self {
        self.segment_records = records.max(1);
        self
    }

    /// Override the TTL retention bound.
    pub fn with_retention_ttl(mut self, ttl: Duration) -> Self {
        self.retention_ttl = Some(ttl);
        self
    }

    /// Enable or disable fsync at commit points.
    pub fn with_fsync(mut self, fsync: bool) -> Self {
        self.fsync = fsync;
        self
    }

    /// Override the compaction threshold.
    pub fn with_compact_min_records(mut self, records: usize) -> Self {
        self.compact_min_records = records;
        self
    }
}

/// Durable topic configuration, persisted as `meta.json` so
/// [`ServiceManager::open`](crate::manager::ServiceManager::open) can rebuild
/// the topic exactly as provisioned. The maintenance policy is flattened into
/// `maintenance_kind` + `drift` + `check_interval` fields.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TopicMeta {
    /// Tenant key (empty for standalone topics).
    pub tenant: String,
    /// Topic key within the tenant.
    pub topic: String,
    /// Topic display name.
    pub name: String,
    /// Train after this many newly ingested records.
    pub volume_threshold: u64,
    /// Train after this many milliseconds since the last run.
    pub interval_ms: u64,
    /// Training-buffer capacity.
    pub training_buffer: usize,
    /// Merge threshold for full retrains.
    pub merge_threshold: f64,
    /// `"full"` or `"incremental"`.
    pub maintenance_kind: String,
    /// Drift bounds (incremental policy only).
    pub drift: Option<DriftConfig>,
    /// Mid-stream drift check interval (incremental policy only).
    pub check_interval: u64,
    /// Matching engine.
    pub match_engine: MatchEngine,
    /// Full training configuration.
    pub train: TrainConfig,
}

impl TopicMeta {
    /// Capture a topic's provisioned configuration.
    pub fn from_config(tenant: &str, topic: &str, config: &TopicConfig) -> Self {
        let (maintenance_kind, drift, check_interval) = match &config.maintenance {
            MaintenancePolicy::FullRetrain => ("full".to_string(), None, 0),
            MaintenancePolicy::Incremental {
                drift,
                check_interval,
            } => (
                "incremental".to_string(),
                Some(drift.clone()),
                *check_interval as u64,
            ),
        };
        TopicMeta {
            tenant: tenant.to_string(),
            topic: topic.to_string(),
            name: config.name.clone(),
            volume_threshold: config.volume_threshold,
            interval_ms: config.interval.as_millis() as u64,
            training_buffer: config.training_buffer,
            merge_threshold: config.merge_threshold,
            maintenance_kind,
            drift,
            check_interval,
            match_engine: config.match_engine,
            train: config.train.clone(),
        }
    }

    /// Rebuild the provisioned topic configuration.
    pub fn to_config(&self) -> TopicConfig {
        let maintenance = if self.maintenance_kind == "incremental" {
            MaintenancePolicy::Incremental {
                drift: self.drift.clone().unwrap_or_default(),
                check_interval: self.check_interval as usize,
            }
        } else {
            MaintenancePolicy::FullRetrain
        };
        TopicConfig {
            name: self.name.clone(),
            train: self.train.clone(),
            volume_threshold: self.volume_threshold,
            interval: Duration::from_millis(self.interval_ms),
            training_buffer: self.training_buffer,
            merge_threshold: self.merge_threshold,
            maintenance,
            match_engine: self.match_engine,
        }
    }
}

/// Everything [`TopicStorage::open`] recovered from disk, handed to
/// `LogTopic::recover` for state reconstruction.
#[derive(Debug)]
pub struct RecoveredTopic {
    /// The provisioned topic configuration.
    pub meta: TopicMeta,
    /// The manifest as of open (recovery generation bump already applied).
    pub manifest: Manifest,
    /// Decoded live segments, ascending by sequence.
    pub segments: Vec<Segment>,
    /// WAL records not yet sealed into a segment, ascending by sequence.
    pub wal_tail: Vec<WalRecord>,
    /// Delta events since the epoch boundary, in append order.
    pub events: Vec<DeltaEvent>,
    /// Model snapshot lineage, in version order.
    pub lineage: Vec<LineageEntry>,
}

/// What a retention pass removed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetentionOutcome {
    /// Records dropped (always a prefix of the live sequence range).
    pub dropped_records: u64,
    /// Accounted bytes dropped.
    pub dropped_bytes: u64,
    /// Segments dropped.
    pub dropped_segments: usize,
}

fn unix_now() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

fn io_invalid(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Read just the persisted topic configuration of a topic store (used by
/// [`ServiceManager::open`](crate::manager::ServiceManager::open) to key
/// recovered topics without replaying them first).
pub fn read_topic_meta(dir: &Path) -> io::Result<TopicMeta> {
    let json = fs::read_to_string(dir.join("meta.json"))?;
    serde_json::from_str(&json).map_err(|e| io_invalid(format!("meta.json: {e}")))
}

/// The per-topic durable store: WAL + segments + event log + lineage +
/// manifest, all under one directory. Owned by the topic; every mutation goes
/// through the topic so in-memory and on-disk state advance together.
#[derive(Debug)]
pub struct TopicStorage {
    dir: PathBuf,
    config: StorageConfig,
    manifest: Manifest,
    wal: FrameLog,
    events: FrameLog,
    lineage: LineageSink,
    /// WAL records not yet sealed (the WAL file's decoded contents).
    pending: Vec<WalRecord>,
    /// Next sequence number to assign.
    next_seq: u64,
    /// Throughput metadata stamped on the next sealed segments.
    last_throughput: f64,
    /// Derived push-down summaries, one per live segment (lockstep with
    /// `manifest.segments`); recomputed from the decoded columns on open.
    summaries: Vec<SegmentSummary>,
    /// `at_seq` of the latest delta event since the epoch boundary (0 when
    /// none): summaries of segments sealed before it are stale — the delta
    /// may have re-matched their records — and must not prune.
    last_delta_seq: u64,
}

impl TopicStorage {
    fn paths(dir: &Path) -> (PathBuf, PathBuf, PathBuf, PathBuf) {
        (
            dir.join("meta.json"),
            dir.join("MANIFEST.json"),
            dir.join("wal.log"),
            dir.join("events.log"),
        )
    }

    /// True when `dir` holds an initialized topic store.
    pub fn exists(dir: &Path) -> bool {
        dir.join("MANIFEST.json").is_file()
    }

    /// Initialize a fresh topic store in `dir` (creates the directory tree,
    /// persists `meta.json` and an empty manifest).
    pub fn create(dir: &Path, config: StorageConfig, meta: &TopicMeta) -> io::Result<Self> {
        fs::create_dir_all(dir.join("segments"))?;
        let (meta_path, manifest_path, wal_path, events_path) = Self::paths(dir);
        let json = serde_json::to_string_pretty(meta).map_err(|e| io_invalid(e.to_string()))?;
        fs::write(&meta_path, json)?;
        let manifest = Manifest::new();
        manifest::write_manifest(&manifest_path, &manifest)?;
        let wal = FrameLog::open(&wal_path, |_| {})?;
        let events = FrameLog::open(&events_path, |_| {})?;
        let (lineage, _) = LineageSink::open(dir)?;
        Ok(TopicStorage {
            dir: dir.to_path_buf(),
            config,
            manifest,
            wal,
            events,
            lineage,
            pending: Vec::new(),
            next_seq: 0,
            last_throughput: 0.0,
            summaries: Vec::new(),
            last_delta_seq: 0,
        })
    }

    /// Open an existing topic store: verify and load the manifest's segments,
    /// replay the WAL tail and event log, restore the lineage, delete orphan
    /// files from crashed seals, and bump the recovery generation. The caller
    /// feeds the returned [`RecoveredTopic`] into `LogTopic::recover`.
    pub fn open(dir: &Path, config: StorageConfig) -> io::Result<(Self, RecoveredTopic)> {
        let (meta_path, manifest_path, wal_path, events_path) = Self::paths(dir);
        let meta_json = fs::read_to_string(&meta_path)?;
        let meta: TopicMeta =
            serde_json::from_str(&meta_json).map_err(|e| io_invalid(format!("meta.json: {e}")))?;
        let mut manifest = manifest::read_manifest(&manifest_path)?
            .ok_or_else(|| io_invalid("missing MANIFEST.json".to_string()))?;

        // Garbage-collect files the manifest does not reference: a crash
        // between segment write and manifest rewrite leaves orphans behind.
        let seg_dir = dir.join("segments");
        fs::create_dir_all(&seg_dir)?;
        let live: std::collections::HashSet<String> = manifest
            .segments
            .iter()
            .map(|s| segment::segment_file_name(s.id))
            .collect();
        for entry in fs::read_dir(&seg_dir)? {
            let entry = entry?;
            let name = entry.file_name().to_string_lossy().into_owned();
            if !live.contains(&name) {
                let _ = fs::remove_file(entry.path());
            }
        }

        let mut segments = Vec::with_capacity(manifest.segments.len());
        for seg_meta in &manifest.segments {
            let seg =
                segment::read_segment(&seg_dir.join(segment::segment_file_name(seg_meta.id)))?;
            if seg.first_seq != seg_meta.first_seq || seg.records.len() as u64 != seg_meta.records {
                return Err(io_invalid(format!(
                    "segment {} disagrees with manifest",
                    seg_meta.id
                )));
            }
            segments.push(seg);
        }

        // WAL tail: frames below `wal_base_seq` were already sealed (the crash
        // hit between manifest rewrite and WAL truncation) and are skipped.
        let sealed_end = manifest.sealed_end_seq();
        let mut wal_tail: Vec<WalRecord> = Vec::new();
        let mut bad = false;
        let wal = FrameLog::open(&wal_path, |frame| match WalRecord::decode(frame) {
            Ok(rec) => {
                if rec.seq >= sealed_end {
                    wal_tail.push(rec);
                }
            }
            Err(_) => bad = true,
        })?;
        if bad {
            return Err(io_invalid("undecodable WAL frame".to_string()));
        }
        let mut events_list: Vec<DeltaEvent> = Vec::new();
        let events = FrameLog::open(&events_path, |frame| match DeltaEvent::decode(frame) {
            Ok(event) => events_list.push(event),
            Err(_) => bad = true,
        })?;
        if bad {
            return Err(io_invalid("undecodable event frame".to_string()));
        }
        let (lineage, lineage_entries) = LineageSink::open(dir)?;

        let next_seq = wal_tail.last().map(|r| r.seq + 1).unwrap_or(sealed_end);
        // Recovery is a state change the query cache must observe: a recovered
        // record set may coincide in count and model version with a cached one.
        manifest.generation += 1;
        manifest::write_manifest(&manifest_path, &manifest)?;

        // Summaries are derived state: recompute from the decoded variable
        // columns, so they can never disagree with what is on disk.
        let summaries = segments
            .iter()
            .map(|seg| SegmentSummary::build(&seg.variables))
            .collect();
        let last_delta_seq = events_list.iter().map(|e| e.at_seq).max().unwrap_or(0);

        let recovered = RecoveredTopic {
            meta,
            manifest: manifest.clone(),
            segments,
            wal_tail: wal_tail.clone(),
            events: events_list,
            lineage: lineage_entries,
        };
        Ok((
            TopicStorage {
                dir: dir.to_path_buf(),
                config,
                manifest,
                wal,
                events,
                lineage,
                pending: wal_tail,
                next_seq,
                last_throughput: 0.0,
                summaries,
                last_delta_seq,
            },
            recovered,
        ))
    }

    /// The storage directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The monotonic topic generation (recovery / retention / compaction).
    pub fn generation(&self) -> u64 {
        self.manifest.generation
    }

    /// Next sequence number to assign.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Sequence number of the oldest retained record.
    pub fn first_live_seq(&self) -> u64 {
        self.manifest.first_live_seq
    }

    /// Accounted bytes dropped by retention so far.
    pub fn bytes_dropped(&self) -> u64 {
        self.manifest.bytes_dropped
    }

    /// Live segment metadata (ascending by sequence).
    pub fn segments(&self) -> &[SegmentMeta] {
        &self.manifest.segments
    }

    /// Live segments paired with their push-down summaries (ascending by
    /// sequence). The planner consults these to skip whole segments before
    /// touching any record.
    pub fn segment_summaries(&self) -> impl Iterator<Item = (&SegmentMeta, &SegmentSummary)> {
        debug_assert_eq!(self.summaries.len(), self.manifest.segments.len());
        self.manifest.segments.iter().zip(self.summaries.iter())
    }

    /// `at_seq` of the latest delta event since the epoch boundary (0 when
    /// none). Variable-column summaries of segments whose `first_seq` is
    /// below this are stale (the delta may have re-matched their records or
    /// patched their templates) and must not prune.
    pub fn last_delta_seq(&self) -> u64 {
        self.last_delta_seq
    }

    /// A shared handle to the lineage sink (attached to the topic's
    /// [`ModelStore`](crate::store::ModelStore)).
    pub fn lineage_sink(&self) -> LineageSink {
        self.lineage.clone()
    }

    /// Stamp the throughput recorded on segments sealed by the next commits
    /// (the streaming engine reports it per run; must be finite).
    pub fn set_ingest_throughput(&mut self, records_per_second: f64) {
        debug_assert!(records_per_second.is_finite());
        self.last_throughput = if records_per_second.is_finite() {
            records_per_second
        } else {
            0.0
        };
    }

    /// Append one ingested record to the WAL (durability lands at the next
    /// [`TopicStorage::commit`]). Returns the record's sequence number.
    pub fn append_record(
        &mut self,
        unmatched: bool,
        node: Option<NodeId>,
        text: &str,
    ) -> io::Result<u64> {
        let rec = WalRecord {
            seq: self.next_seq,
            unmatched,
            node,
            text: text.to_string(),
        };
        self.wal.append(&rec.encode())?;
        self.pending.push(rec);
        self.next_seq += 1;
        Ok(self.next_seq - 1)
    }

    /// Append one incremental-maintenance event (delta version + record
    /// moves) to the event log. Marks summaries of every already-sealed
    /// segment stale for push-down pruning (see
    /// [`TopicStorage::last_delta_seq`]).
    pub fn append_delta_event(&mut self, event: &DeltaEvent) -> io::Result<()> {
        self.last_delta_seq = self.last_delta_seq.max(event.at_seq);
        self.events.append(&event.encode())
    }

    /// Commit point: seal full segments out of the WAL (extracting variable
    /// columns via `vars_of`), then fsync every dirty log in one batch.
    /// Returns the number of segments sealed.
    pub fn commit(
        &mut self,
        mut vars_of: impl FnMut(&WalRecord) -> Vec<String>,
    ) -> io::Result<usize> {
        let mut sealed = 0usize;
        while self.pending.len() >= self.config.segment_records {
            let chunk: Vec<WalRecord> = self.pending.drain(..self.config.segment_records).collect();
            self.seal_segment(&chunk, &mut vars_of)?;
            sealed += 1;
        }
        if sealed > 0 {
            manifest::write_manifest(&self.dir.join("MANIFEST.json"), &self.manifest)?;
            // Restart the WAL with just the unsealed remainder. A crash before
            // this point leaves sealed duplicates in the WAL; replay skips
            // them by sequence number.
            self.wal.truncate()?;
            for rec in &self.pending {
                self.wal.append(&rec.encode())?;
            }
        }
        if self.config.fsync {
            self.wal.sync()?;
            self.events.sync()?;
            self.lineage.sync()?;
        }
        Ok(sealed)
    }

    fn seal_segment(
        &mut self,
        chunk: &[WalRecord],
        vars_of: &mut impl FnMut(&WalRecord) -> Vec<String>,
    ) -> io::Result<()> {
        debug_assert!(!chunk.is_empty());
        let variables: Vec<Vec<String>> = chunk.iter().map(&mut *vars_of).collect();
        let id = self.manifest.next_segment_id;
        segment::write_segment(
            &self.dir.join("segments"),
            id,
            chunk[0].seq,
            chunk,
            &variables,
        )?;
        self.summaries.push(SegmentSummary::build(&variables));
        self.manifest.next_segment_id += 1;
        self.manifest.segments.push(SegmentMeta {
            id,
            first_seq: chunk[0].seq,
            records: chunk.len() as u64,
            bytes: chunk.iter().map(|r| r.accounted_bytes()).sum(),
            flagged: chunk.iter().filter(|r| r.unmatched).count() as u64,
            created_at: unix_now(),
            throughput: self.last_throughput,
        });
        self.manifest.wal_base_seq = chunk.last().expect("non-empty chunk").seq + 1;
        Ok(())
    }

    /// Epoch boundary (full retrain): rewrite every live record as fresh
    /// baseline segments carrying the post-retrain assignments, truncate the
    /// WAL and event log, and swap the manifest. `records` are the topic's
    /// live records after `rematch_all`; their flags are cleared — the new
    /// epoch's model replay starts from the `base_version` snapshot, which
    /// already absorbed every temporary.
    #[allow(clippy::too_many_arguments)]
    pub fn checkpoint_retrain(
        &mut self,
        records: &[StoredRecord],
        base_version: u64,
        model_version: u64,
        maintenance_runs: u64,
        last_maintenance_seconds: f64,
        training_runs: u64,
        last_training_seconds: f64,
        mut vars_of: impl FnMut(&WalRecord) -> Vec<String>,
    ) -> io::Result<()> {
        let first_live = self.manifest.first_live_seq;
        debug_assert_eq!(
            first_live + records.len() as u64,
            self.next_seq,
            "live records must cover the retained sequence range"
        );
        let old_segments = std::mem::take(&mut self.manifest.segments);
        self.summaries.clear();
        let mut baseline: Vec<WalRecord> = Vec::with_capacity(self.config.segment_records);
        for (seq, stored) in (first_live..).zip(records.iter()) {
            baseline.push(WalRecord {
                seq,
                unmatched: false,
                node: stored.template,
                text: stored.record.clone(),
            });
            if baseline.len() == self.config.segment_records {
                self.seal_segment(&baseline, &mut vars_of)?;
                baseline.clear();
            }
        }
        if !baseline.is_empty() {
            self.seal_segment(&baseline, &mut vars_of)?;
        }
        self.manifest.wal_base_seq = self.next_seq;
        self.manifest.epoch_start_seq = self.next_seq;
        self.manifest.epoch_base_version = base_version;
        self.manifest.model_version_at_epoch = model_version;
        self.manifest.maintenance_runs_at_epoch = maintenance_runs;
        self.manifest.last_maintenance_seconds_at_epoch = last_maintenance_seconds;
        self.manifest.training_runs = training_runs;
        self.manifest.last_training_seconds = last_training_seconds;
        manifest::write_manifest(&self.dir.join("MANIFEST.json"), &self.manifest)?;
        // Only now is the old epoch unreachable: drop its WAL, events and
        // superseded segment files.
        self.pending.clear();
        self.wal.truncate()?;
        self.events.truncate()?;
        // Fresh epoch: every segment was resealed with current assignments,
        // so all summaries are trustworthy again.
        self.last_delta_seq = 0;
        for old in old_segments {
            let _ = fs::remove_file(
                self.dir
                    .join("segments")
                    .join(segment::segment_file_name(old.id)),
            );
        }
        if self.config.fsync {
            self.lineage.sync()?;
        }
        Ok(())
    }

    /// True when the segment may be dropped by retention: no flagged records
    /// (their texts drive the epoch's model replay) and outside the current
    /// training window (`training_cap` = the topic's training-buffer size).
    fn droppable(&self, seg: &SegmentMeta, training_cap: u64) -> bool {
        seg.flagged == 0
            && (seg.end_seq() <= self.manifest.epoch_start_seq
                || seg.first_seq >= self.manifest.epoch_start_seq.saturating_add(training_cap))
    }

    /// TTL retention: drop the longest expired, droppable prefix of segments.
    /// The caller (the topic) drains the same record prefix from memory and
    /// rebuilds its postings. No-op when no TTL is configured.
    pub fn retention_pass(&mut self, training_cap: u64) -> io::Result<RetentionOutcome> {
        let Some(ttl) = self.config.retention_ttl else {
            return Ok(RetentionOutcome::default());
        };
        let now = unix_now();
        let mut outcome = RetentionOutcome::default();
        let mut dropped_ids = Vec::new();
        while let Some(seg) = self.manifest.segments.first() {
            let expired = seg.created_at.saturating_add(ttl.as_secs()) <= now;
            if !(expired && self.droppable(seg, training_cap)) {
                break;
            }
            let seg = self.manifest.segments.remove(0);
            self.summaries.remove(0);
            outcome.dropped_records += seg.records;
            outcome.dropped_bytes += seg.bytes;
            outcome.dropped_segments += 1;
            self.manifest.first_live_seq = seg.end_seq();
            dropped_ids.push(seg.id);
        }
        if outcome.dropped_segments > 0 {
            self.manifest.bytes_dropped += outcome.dropped_bytes;
            self.manifest.generation += 1;
            manifest::write_manifest(&self.dir.join("MANIFEST.json"), &self.manifest)?;
            for id in dropped_ids {
                let _ = fs::remove_file(
                    self.dir
                        .join("segments")
                        .join(segment::segment_file_name(id)),
                );
            }
        }
        Ok(outcome)
    }

    /// Compaction: merge adjacent segments that are both under the configured
    /// minimum (as long as the merge stays within one segment's capacity).
    /// Returns the number of merges performed; any merge bumps the generation.
    pub fn compaction_pass(&mut self) -> io::Result<usize> {
        let mut merges = 0usize;
        let mut i = 0usize;
        let mut stale_ids = Vec::new();
        while i + 1 < self.manifest.segments.len() {
            let a = &self.manifest.segments[i];
            let b = &self.manifest.segments[i + 1];
            let small = (a.records as usize) < self.config.compact_min_records
                && (b.records as usize) < self.config.compact_min_records;
            let fits = (a.records + b.records) as usize <= self.config.segment_records;
            if !(small && fits) {
                i += 1;
                continue;
            }
            let seg_dir = self.dir.join("segments");
            let left = segment::read_segment(&seg_dir.join(segment::segment_file_name(a.id)))?;
            let right = segment::read_segment(&seg_dir.join(segment::segment_file_name(b.id)))?;
            let mut records = left.records;
            records.extend(right.records);
            let mut variables = left.variables;
            variables.extend(right.variables);
            let id = self.manifest.next_segment_id;
            self.manifest.next_segment_id += 1;
            segment::write_segment(&seg_dir, id, left.first_seq, &records, &variables)?;
            let merged = SegmentMeta {
                id,
                first_seq: a.first_seq,
                records: a.records + b.records,
                bytes: a.bytes + b.bytes,
                flagged: a.flagged + b.flagged,
                // The younger seal time: TTL expiry is delayed, never hastened.
                created_at: a.created_at.max(b.created_at),
                throughput: if a.records + b.records > 0 {
                    (a.throughput * a.records as f64 + b.throughput * b.records as f64)
                        / (a.records + b.records) as f64
                } else {
                    0.0
                },
            };
            stale_ids.push(a.id);
            stale_ids.push(b.id);
            self.manifest.segments.splice(i..i + 2, [merged]);
            // Rebuild the merged summary from the concatenated columns (an
            // exact rebuild, not a lossy bloom union).
            self.summaries
                .splice(i..i + 2, [SegmentSummary::build(&variables)]);
            merges += 1;
            // Stay at `i`: the merged segment may merge again with its new
            // right neighbour.
        }
        if merges > 0 {
            self.manifest.generation += 1;
            manifest::write_manifest(&self.dir.join("MANIFEST.json"), &self.manifest)?;
            for id in stale_ids {
                let _ = fs::remove_file(
                    self.dir
                        .join("segments")
                        .join(segment::segment_file_name(id)),
                );
            }
        }
        Ok(merges)
    }
}
