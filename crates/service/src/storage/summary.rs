//! Per-segment column summaries serving query push-down.
//!
//! A [`SegmentSummary`] condenses one sealed segment's **variable column**
//! into a membership filter the planner can consult before touching any
//! postings or records: a small bloom filter over the variable tokens plus
//! the lexicographic min/max token. A required `VariableEquals` conjunct
//! whose value the summary rules out proves that *no* record in the segment
//! can match, so the whole segment is skipped. (Time-window conjuncts prune
//! on the segment's sequence range, which the manifest already carries.)
//!
//! Summaries are **derived, in-memory state**: they are computed from the
//! variable column at seal time and recomputed from the decoded segments on
//! recovery — nothing about them is persisted, so the segment and manifest
//! formats are unchanged and a summary can never disagree with the column it
//! indexes.
//!
//! Soundness under maintenance: the variable column is extracted with the
//! model as of seal time. A later incremental delta can re-match sealed
//! records or patch node templates, changing what query-time extraction
//! returns — so the planner only trusts a summary for segments sealed
//! *after* the latest delta event ([`super::TopicStorage::last_delta_seq`]
//! (`super::TopicStorage::last_delta_seq`)); a full-retrain epoch rewrites
//! every segment with current assignments and resets that bound. Stale
//! segments are never pruned, merely evaluated record by record.

/// Bloom bits budgeted per variable token (~3% false positives at 3 probes).
const BITS_PER_ITEM: usize = 8;
/// Number of bloom probes per value (double hashing).
const PROBES: u64 = 3;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(seed: u64, bytes: &[u8]) -> u64 {
    let mut hash = seed;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Summary of one segment's variable column: bloom filter + min/max token.
/// `may_contain` answers "could any record in this segment carry this exact
/// variable token?" with no false negatives.
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentSummary {
    /// Bit set, power-of-two sized (in bits), 64-bit words.
    bloom: Vec<u64>,
    /// Lexicographically smallest variable token; `None` when the segment
    /// has no variables at all.
    min_var: Option<String>,
    /// Lexicographically largest variable token.
    max_var: Option<String>,
}

impl SegmentSummary {
    /// Build the summary of a segment's per-record variable tokens.
    pub fn build(variables: &[Vec<String>]) -> Self {
        let items: usize = variables.iter().map(|vars| vars.len()).sum();
        let bits = (items * BITS_PER_ITEM).next_power_of_two().max(64);
        let mut summary = SegmentSummary {
            bloom: vec![0u64; bits / 64],
            min_var: None,
            max_var: None,
        };
        for vars in variables {
            for var in vars {
                summary.insert(var);
            }
        }
        summary
    }

    fn insert(&mut self, value: &str) {
        let bits = (self.bloom.len() * 64) as u64;
        let h1 = fnv1a(FNV_OFFSET, value.as_bytes());
        let h2 = fnv1a(FNV_OFFSET ^ 0x5bd1_e995_5bd1_e995, value.as_bytes()) | 1;
        for probe in 0..PROBES {
            let bit = h1.wrapping_add(probe.wrapping_mul(h2)) % bits;
            self.bloom[(bit / 64) as usize] |= 1u64 << (bit % 64);
        }
        if self.min_var.as_deref().is_none_or(|min| value < min) {
            self.min_var = Some(value.to_string());
        }
        if self.max_var.as_deref().is_none_or(|max| value > max) {
            self.max_var = Some(value.to_string());
        }
    }

    /// Could any record in the segment carry `value` as an exact variable
    /// token? `false` is definitive; `true` may be a false positive.
    pub fn may_contain(&self, value: &str) -> bool {
        let (Some(min), Some(max)) = (self.min_var.as_deref(), self.max_var.as_deref()) else {
            return false; // no variables in the whole segment
        };
        if value < min || value > max {
            return false;
        }
        let bits = (self.bloom.len() * 64) as u64;
        let h1 = fnv1a(FNV_OFFSET, value.as_bytes());
        let h2 = fnv1a(FNV_OFFSET ^ 0x5bd1_e995_5bd1_e995, value.as_bytes()) | 1;
        (0..PROBES).all(|probe| {
            let bit = h1.wrapping_add(probe.wrapping_mul(h2)) % bits;
            self.bloom[(bit / 64) as usize] & (1u64 << (bit % 64)) != 0
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vars(rows: &[&[&str]]) -> Vec<Vec<String>> {
        rows.iter()
            .map(|row| row.iter().map(|s| s.to_string()).collect())
            .collect()
    }

    #[test]
    fn no_false_negatives() {
        let rows = vars(&[&["10.0.0.5", "22"], &[], &["10.0.0.9", "443", "alice"]]);
        let summary = SegmentSummary::build(&rows);
        for row in &rows {
            for var in row {
                assert!(summary.may_contain(var), "inserted token {var:?} must hit");
            }
        }
    }

    #[test]
    fn out_of_range_values_are_definitively_absent() {
        let summary = SegmentSummary::build(&vars(&[&["bbb", "ccc"]]));
        assert!(!summary.may_contain("aaa"), "below min");
        assert!(!summary.may_contain("zzz"), "above max");
    }

    #[test]
    fn empty_segment_contains_nothing() {
        let summary = SegmentSummary::build(&vars(&[&[], &[]]));
        assert!(!summary.may_contain("anything"));
        assert!(!summary.may_contain(""));
    }

    #[test]
    fn absent_in_range_values_mostly_miss() {
        // Selectivity sanity: with ~1k distinct tokens inserted, the vast
        // majority of absent in-range probes must miss (the bloom is sized
        // for ~3% false positives).
        let rows: Vec<Vec<String>> = (0..1_000).map(|i| vec![format!("tok-{i:04}")]).collect();
        let summary = SegmentSummary::build(&rows);
        let false_positives = (0..1_000)
            .filter(|i| summary.may_contain(&format!("tok-{:04}x", i)))
            .count();
        assert!(
            false_positives < 150,
            "bloom saturated: {false_positives}/1000 false positives"
        );
    }
}
