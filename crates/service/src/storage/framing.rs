//! CRC-framed append-log primitives shared by the WAL, the event log and the
//! lineage log.
//!
//! Every frame on disk is `[len: u32 LE][crc32: u32 LE][payload: len bytes]`.
//! The CRC covers the payload only; the length is sanity-bounded so a torn or
//! garbage header cannot trigger a huge allocation. Readers stop at the first
//! frame that is short, over-long, or fails its checksum — everything before
//! that point is intact (frames are appended and fsynced in order), everything
//! after is a torn tail from a crash mid-write and is discarded by truncating
//! the file back to the last good frame.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;

/// Upper bound on a single frame payload (64 MiB): far above any record or
/// model snapshot this service writes, low enough that a corrupt length field
/// cannot OOM the reader.
const MAX_FRAME_LEN: u32 = 64 * 1024 * 1024;

/// CRC-32 (IEEE 802.3, reflected) lookup table, built once at first use.
fn crc32_table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    0xEDB8_8320 ^ (crc >> 1)
                } else {
                    crc >> 1
                };
            }
            *entry = crc;
        }
        table
    })
}

/// CRC-32 (IEEE) of `bytes` — the checksum in every frame header and at the
/// tail of every sealed segment.
pub fn crc32(bytes: &[u8]) -> u32 {
    let table = crc32_table();
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = table[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// An append-only log of CRC-framed payloads backed by one file.
#[derive(Debug)]
pub struct FrameLog {
    file: File,
    /// Bytes of fully written frames (append position).
    len: u64,
    /// Set when frames were appended since the last [`FrameLog::sync`].
    dirty: bool,
}

impl FrameLog {
    /// Open (or create) the log at `path`, replay every intact frame into
    /// `on_frame`, and truncate away any torn tail so the next append starts at
    /// a clean boundary. Frames are delivered in append order.
    pub fn open(path: &Path, mut on_frame: impl FnMut(&[u8])) -> io::Result<Self> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let good = scan_frames(&bytes, |payload| on_frame(payload));
        if good < bytes.len() as u64 {
            // Torn tail from a crash mid-append: drop it.
            file.set_len(good)?;
            file.sync_data()?;
        }
        file.seek(SeekFrom::Start(good))?;
        Ok(FrameLog {
            file,
            len: good,
            dirty: false,
        })
    }

    /// Append one frame. Durability is deferred to [`FrameLog::sync`] — appends
    /// are batched per ingest call, not fsynced one by one.
    pub fn append(&mut self, payload: &[u8]) -> io::Result<()> {
        debug_assert!(payload.len() as u64 <= MAX_FRAME_LEN as u64);
        let mut frame = Vec::with_capacity(8 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        self.file.write_all(&frame)?;
        self.len += frame.len() as u64;
        self.dirty = true;
        Ok(())
    }

    /// Flush appended frames to stable storage (one fsync per batch).
    pub fn sync(&mut self) -> io::Result<()> {
        if self.dirty {
            self.file.sync_data()?;
            self.dirty = false;
        }
        Ok(())
    }

    /// Drop every frame: the log restarts empty (used when a retrain seals the
    /// epoch and the WAL/event history is rewritten into baseline segments).
    pub fn truncate(&mut self) -> io::Result<()> {
        self.file.set_len(0)?;
        self.file.seek(SeekFrom::Start(0))?;
        self.file.sync_data()?;
        self.len = 0;
        self.dirty = false;
        Ok(())
    }

    /// Bytes of intact frames currently in the log.
    pub fn len_bytes(&self) -> u64 {
        self.len
    }
}

/// Walk `bytes` frame by frame, calling `on_frame` for each intact payload.
/// Returns the byte offset of the first torn/corrupt frame (== `bytes.len()`
/// when the whole file is clean).
fn scan_frames(bytes: &[u8], mut on_frame: impl FnMut(&[u8])) -> u64 {
    let mut pos = 0usize;
    loop {
        let Some(header) = bytes.get(pos..pos + 8) else {
            return pos as u64;
        };
        let len = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
        if len as u32 > MAX_FRAME_LEN {
            return pos as u64;
        }
        let Some(payload) = bytes.get(pos + 8..pos + 8 + len) else {
            return pos as u64;
        };
        if crc32(payload) != crc {
            return pos as u64;
        }
        on_frame(payload);
        pos += 8 + len;
    }
}

// ---------------------------------------------------------------------------
// Little-endian payload encoding helpers (the storage tier's binary idiom)
// ---------------------------------------------------------------------------

/// Append-side cursor over a payload being encoded.
#[derive(Debug, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// An empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a `u8`.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a `u32` (little-endian).
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64` (little-endian).
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `f64` (little-endian bit pattern — exact round-trip).
    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a length-prefixed byte string.
    pub fn bytes(&mut self, v: &[u8]) {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }

    /// The encoded payload.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Read-side cursor over a decoded payload. Every accessor returns
/// `io::Result` so truncated payloads surface as corruption errors instead of
/// panics.
#[derive(Debug)]
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// A cursor at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        let slice = self
            .buf
            .get(self.pos..self.pos + n)
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "truncated payload"))?;
        self.pos += n;
        Ok(slice)
    }

    /// Read a `u8`.
    pub fn u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Read a `u32`.
    pub fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    /// Read a `u64`.
    pub fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    /// Read an `f64`.
    pub fn f64(&mut self) -> io::Result<f64> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    /// Read a length-prefixed byte string.
    pub fn bytes(&mut self) -> io::Result<&'a [u8]> {
        let len = self.u32()? as usize;
        self.take(len)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn string(&mut self) -> io::Result<String> {
        String::from_utf8(self.bytes()?.to_vec())
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "invalid UTF-8 in payload"))
    }

    /// True when the cursor consumed the whole payload.
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frames_round_trip_and_torn_tail_is_dropped() {
        let dir = std::env::temp_dir().join(format!("bb-framing-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("log");
        {
            let mut log = FrameLog::open(&path, |_| panic!("fresh log has no frames")).unwrap();
            log.append(b"alpha").unwrap();
            log.append(b"beta").unwrap();
            log.sync().unwrap();
        }
        // Simulate a crash mid-append: a partial header at the tail.
        {
            let mut file = OpenOptions::new().append(true).open(&path).unwrap();
            file.write_all(&[9, 0, 0]).unwrap();
        }
        let mut seen = Vec::new();
        let log = FrameLog::open(&path, |p| seen.push(p.to_vec())).unwrap();
        assert_eq!(seen, vec![b"alpha".to_vec(), b"beta".to_vec()]);
        // The torn tail was truncated away.
        assert_eq!(log.len_bytes(), std::fs::metadata(&path).unwrap().len());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_frame_stops_replay() {
        let dir = std::env::temp_dir().join(format!("bb-framing-c-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("log");
        {
            let mut log = FrameLog::open(&path, |_| {}).unwrap();
            log.append(b"good").unwrap();
            log.append(b"casualty").unwrap();
            log.sync().unwrap();
        }
        // Flip a payload byte in the second frame.
        {
            let mut bytes = std::fs::read(&path).unwrap();
            let last = bytes.len() - 1;
            bytes[last] ^= 0xFF;
            std::fs::write(&path, bytes).unwrap();
        }
        let mut seen = Vec::new();
        FrameLog::open(&path, |p| seen.push(p.to_vec())).unwrap();
        assert_eq!(seen, vec![b"good".to_vec()]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn enc_dec_round_trip() {
        let mut enc = Enc::new();
        enc.u8(7);
        enc.u32(u32::MAX - 1);
        enc.u64(1 << 40);
        enc.f64(2.0 / 3.0);
        enc.bytes(b"payload");
        let buf = enc.finish();
        let mut dec = Dec::new(&buf);
        assert_eq!(dec.u8().unwrap(), 7);
        assert_eq!(dec.u32().unwrap(), u32::MAX - 1);
        assert_eq!(dec.u64().unwrap(), 1 << 40);
        assert_eq!(dec.f64().unwrap(), 2.0 / 3.0);
        assert_eq!(dec.bytes().unwrap(), b"payload");
        assert!(dec.is_exhausted());
        assert!(dec.u8().is_err(), "reading past the end must error");
    }
}
