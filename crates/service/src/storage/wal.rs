//! Write-ahead log frames: ingested records and model events.
//!
//! Two append-only logs share the [`FrameLog`](super::framing::FrameLog)
//! framing:
//!
//! * `wal.log` — one [`WalRecord`] per ingested record *since the last segment
//!   seal*: sequence number, ingest-time match outcome, and the raw text.
//!   Sealed records move into immutable columnar segments and the WAL restarts.
//! * `events.log` — one [`DeltaEvent`] per incremental maintenance run *since
//!   the last epoch boundary (full retrain)*: the snapshot version the delta
//!   produced, the sequence position it fired at, and the record moves its
//!   post-delta re-match produced. A retrain truncates the event log — the
//!   baseline segments it rewrites already carry the final assignments.

use super::framing::{Dec, Enc};
use bytebrain::NodeId;
use std::io;

/// Sentinel for "no template assigned" in on-disk node columns.
pub(crate) const NO_NODE: u32 = u32::MAX;

pub(crate) fn encode_node(node: Option<NodeId>) -> u32 {
    match node {
        Some(id) => id.0 as u32,
        None => NO_NODE,
    }
}

pub(crate) fn decode_node(raw: u32) -> Option<NodeId> {
    if raw == NO_NODE {
        None
    } else {
        Some(NodeId(raw as usize))
    }
}

/// One ingested record as logged in the WAL (and later sealed into a segment).
#[derive(Debug, Clone, PartialEq)]
pub struct WalRecord {
    /// Topic-wide monotonic sequence number (never reused, survives restarts).
    pub seq: u64,
    /// The record matched no template at ingest time. Replay re-executes the
    /// deterministic temporary-template insertion for flagged records, so
    /// segments holding them can never be dropped by retention while the
    /// current epoch's model replay still needs them.
    pub unmatched: bool,
    /// Ingest-time template assignment (later delta re-matches are recorded as
    /// [`DeltaEvent`] moves, never by rewriting this).
    pub node: Option<NodeId>,
    /// The raw log text.
    pub text: String,
}

impl WalRecord {
    /// Bytes this record accounts for in topic statistics (text + newline).
    pub fn accounted_bytes(&self) -> u64 {
        self.text.len() as u64 + 1
    }

    pub(crate) fn encode(&self) -> Vec<u8> {
        let mut enc = Enc::new();
        enc.u64(self.seq);
        enc.u8(self.unmatched as u8);
        enc.u32(encode_node(self.node));
        enc.bytes(self.text.as_bytes());
        enc.finish()
    }

    pub(crate) fn decode(payload: &[u8]) -> io::Result<Self> {
        let mut dec = Dec::new(payload);
        let seq = dec.u64()?;
        let unmatched = dec.u8()? != 0;
        let node = decode_node(dec.u32()?);
        let text = dec.string()?;
        Ok(WalRecord {
            seq,
            unmatched,
            node,
            text,
        })
    }
}

/// One record move produced by the post-delta re-match: the record at `seq`
/// left `old` (a retired temporary or no assignment) for `new`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordMove {
    /// Sequence number of the moved record.
    pub seq: u64,
    /// Assignment before the delta.
    pub old: Option<NodeId>,
    /// Assignment after the delta.
    pub new: Option<NodeId>,
}

/// One incremental maintenance run, as logged in `events.log`.
#[derive(Debug, Clone, PartialEq)]
pub struct DeltaEvent {
    /// The snapshot version the delta produced (its payload lives in the
    /// lineage log under this version).
    pub version: u64,
    /// Sequence position the maintenance run fired at: every record with
    /// `seq < at_seq` was already stored when the delta applied. Replay
    /// interleaves events with records on this boundary.
    pub at_seq: u64,
    /// Wall-clock seconds the maintenance run took (feeds recovered stats).
    pub elapsed_seconds: f64,
    /// Record moves from the post-delta re-match.
    pub moves: Vec<RecordMove>,
}

impl DeltaEvent {
    pub(crate) fn encode(&self) -> Vec<u8> {
        let mut enc = Enc::new();
        enc.u64(self.version);
        enc.u64(self.at_seq);
        enc.f64(self.elapsed_seconds);
        enc.u32(self.moves.len() as u32);
        for mv in &self.moves {
            enc.u64(mv.seq);
            enc.u32(encode_node(mv.old));
            enc.u32(encode_node(mv.new));
        }
        enc.finish()
    }

    pub(crate) fn decode(payload: &[u8]) -> io::Result<Self> {
        let mut dec = Dec::new(payload);
        let version = dec.u64()?;
        let at_seq = dec.u64()?;
        let elapsed_seconds = dec.f64()?;
        let count = dec.u32()? as usize;
        let mut moves = Vec::with_capacity(count);
        for _ in 0..count {
            moves.push(RecordMove {
                seq: dec.u64()?,
                old: decode_node(dec.u32()?),
                new: decode_node(dec.u32()?),
            });
        }
        Ok(DeltaEvent {
            version,
            at_seq,
            elapsed_seconds,
            moves,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wal_record_round_trip() {
        let rec = WalRecord {
            seq: 42,
            unmatched: true,
            node: Some(NodeId(7)),
            text: "kernel oops at ffffffffc0401234".to_string(),
        };
        assert_eq!(WalRecord::decode(&rec.encode()).unwrap(), rec);
        let none = WalRecord {
            seq: 0,
            unmatched: false,
            node: None,
            text: String::new(),
        };
        assert_eq!(WalRecord::decode(&none.encode()).unwrap(), none);
    }

    #[test]
    fn delta_event_round_trip() {
        let event = DeltaEvent {
            version: 3,
            at_seq: 1_000,
            elapsed_seconds: 0.125,
            moves: vec![
                RecordMove {
                    seq: 17,
                    old: None,
                    new: Some(NodeId(4)),
                },
                RecordMove {
                    seq: 900,
                    old: Some(NodeId(9)),
                    new: None,
                },
            ],
        };
        assert_eq!(DeltaEvent::decode(&event.encode()).unwrap(), event);
    }

    #[test]
    fn truncated_payload_is_an_error_not_a_panic() {
        let rec = WalRecord {
            seq: 1,
            unmatched: false,
            node: None,
            text: "abc".into(),
        };
        let bytes = rec.encode();
        assert!(WalRecord::decode(&bytes[..bytes.len() - 2]).is_err());
    }
}
