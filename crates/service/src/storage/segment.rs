//! Immutable columnar segments.
//!
//! A segment is a batch of consecutive records sealed out of the WAL (or
//! rewritten wholesale at an epoch boundary). The layout is columnar so that
//! recovery — and future scans — touch only the columns they need:
//!
//! ```text
//! magic "BBSG" | format u32
//! first_seq u64 | record_count u32
//! flags column      : count × u8   (bit 0 = unmatched at ingest)
//! node column       : count × u32  (ingest-time template id, u32::MAX = none)
//! text offsets      : (count+1) × u32 into the text blob
//! text blob         : concatenated UTF-8 record texts
//! variable offsets  : (count+1) × u32 into the variable blob
//! variable blob     : per record, `u16 n` then n length-prefixed tokens
//! postings          : u32 node_count, then per node
//!                     (u32 node | u32 len | len × u32 local record offsets)
//! crc32 u32         : over everything before it
//! ```
//!
//! The per-segment postings mirror the node column inverted: they exist so a
//! restart can rebuild [`QueryIndex`](crate::query::QueryIndex) by
//! concatenating posting lists — without re-matching a single line. Later
//! re-assignments (post-delta moves) are logged as events and patched on top;
//! a sealed segment is never rewritten in place.
//!
//! The variable column stores the concrete tokens that sat at the matched
//! template's wildcard positions, extracted once at seal time. It is
//! best-effort metadata for segment consumers (the template text plus the
//! variables reconstruct the record): replay correctness never depends on it.

use super::framing::crc32;
use super::wal::{decode_node, encode_node, WalRecord, NO_NODE};
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 4] = b"BBSG";
const FORMAT: u32 = 1;

/// A fully decoded segment: the records it sealed plus the inverted postings.
#[derive(Debug, Clone)]
pub struct Segment {
    /// Sequence number of the first record.
    pub first_seq: u64,
    /// The sealed records, in sequence order.
    pub records: Vec<WalRecord>,
    /// Per-record variable tokens (wildcard-position tokens at seal time).
    pub variables: Vec<Vec<String>>,
    /// `(node, ascending local record offsets)` — the node column inverted.
    pub postings: Vec<(u32, Vec<u32>)>,
}

impl Segment {
    /// Sequence number one past the last record.
    pub fn end_seq(&self) -> u64 {
        self.first_seq + self.records.len() as u64
    }
}

/// On-disk segment file name for a segment id.
pub fn segment_file_name(id: u64) -> String {
    format!("seg-{id:08}.seg")
}

/// Encode and atomically write a segment file (tmp + fsync + rename): a crash
/// mid-seal leaves either no file or a complete one, never a half-written
/// segment reachable from the manifest.
pub fn write_segment(
    dir: &Path,
    id: u64,
    first_seq: u64,
    records: &[WalRecord],
    variables: &[Vec<String>],
) -> io::Result<PathBuf> {
    debug_assert_eq!(records.len(), variables.len());
    let mut body = Vec::new();
    body.extend_from_slice(MAGIC);
    body.extend_from_slice(&FORMAT.to_le_bytes());
    body.extend_from_slice(&first_seq.to_le_bytes());
    body.extend_from_slice(&(records.len() as u32).to_le_bytes());
    // Flags column.
    for rec in records {
        body.push(rec.unmatched as u8);
    }
    // Node column.
    for rec in records {
        body.extend_from_slice(&encode_node(rec.node).to_le_bytes());
    }
    // Text column: offsets then blob.
    let mut offset = 0u32;
    for rec in records {
        body.extend_from_slice(&offset.to_le_bytes());
        offset += rec.text.len() as u32;
    }
    body.extend_from_slice(&offset.to_le_bytes());
    for rec in records {
        body.extend_from_slice(rec.text.as_bytes());
    }
    // Variable column: offsets then blob of `u16 n | n × (u16 len | bytes)`.
    let mut var_blob = Vec::new();
    let mut var_offsets = Vec::with_capacity(records.len() + 1);
    for vars in variables {
        var_offsets.push(var_blob.len() as u32);
        var_blob.extend_from_slice(&(vars.len() as u16).to_le_bytes());
        for var in vars {
            var_blob.extend_from_slice(&(var.len() as u16).to_le_bytes());
            var_blob.extend_from_slice(var.as_bytes());
        }
    }
    var_offsets.push(var_blob.len() as u32);
    for off in var_offsets {
        body.extend_from_slice(&off.to_le_bytes());
    }
    body.extend_from_slice(&var_blob);
    // Postings: invert the node column (local offsets ascend naturally).
    let mut postings: Vec<(u32, Vec<u32>)> = Vec::new();
    {
        use std::collections::BTreeMap;
        let mut by_node: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
        for (i, rec) in records.iter().enumerate() {
            let raw = encode_node(rec.node);
            if raw != NO_NODE {
                by_node.entry(raw).or_default().push(i as u32);
            }
        }
        postings.extend(by_node);
    }
    body.extend_from_slice(&(postings.len() as u32).to_le_bytes());
    for (node, offsets) in &postings {
        body.extend_from_slice(&node.to_le_bytes());
        body.extend_from_slice(&(offsets.len() as u32).to_le_bytes());
        for off in offsets {
            body.extend_from_slice(&off.to_le_bytes());
        }
    }
    let checksum = crc32(&body);
    body.extend_from_slice(&checksum.to_le_bytes());

    let final_path = dir.join(segment_file_name(id));
    let tmp_path = dir.join(format!("{}.tmp", segment_file_name(id)));
    {
        let mut file = File::create(&tmp_path)?;
        file.write_all(&body)?;
        file.sync_data()?;
    }
    fs::rename(&tmp_path, &final_path)?;
    Ok(final_path)
}

/// Read and verify a segment file.
pub fn read_segment(path: &Path) -> io::Result<Segment> {
    let mut bytes = Vec::new();
    OpenOptions::new()
        .read(true)
        .open(path)?
        .read_to_end(&mut bytes)?;
    let corrupt = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
    if bytes.len() < 4 {
        return Err(corrupt("segment too short for checksum"));
    }
    let (body, tail) = bytes.split_at(bytes.len() - 4);
    let stored = u32::from_le_bytes(tail.try_into().expect("4 bytes"));
    if crc32(body) != stored {
        return Err(corrupt("segment checksum mismatch"));
    }
    let mut pos = 0usize;
    let mut take = |n: usize| -> io::Result<&[u8]> {
        let slice = body
            .get(pos..pos + n)
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "truncated segment"))?;
        pos += n;
        Ok(slice)
    };
    if take(4)? != MAGIC {
        return Err(corrupt("bad segment magic"));
    }
    let format = u32::from_le_bytes(take(4)?.try_into().expect("4"));
    if format != FORMAT {
        return Err(corrupt("unknown segment format"));
    }
    let first_seq = u64::from_le_bytes(take(8)?.try_into().expect("8"));
    let count = u32::from_le_bytes(take(4)?.try_into().expect("4")) as usize;
    let flags = take(count)?.to_vec();
    let mut nodes = Vec::with_capacity(count);
    for _ in 0..count {
        nodes.push(u32::from_le_bytes(take(4)?.try_into().expect("4")));
    }
    let mut text_offsets = Vec::with_capacity(count + 1);
    for _ in 0..=count {
        text_offsets.push(u32::from_le_bytes(take(4)?.try_into().expect("4")) as usize);
    }
    let text_blob = take(*text_offsets.last().unwrap_or(&0))?;
    let mut records = Vec::with_capacity(count);
    for i in 0..count {
        let text = text_blob
            .get(text_offsets[i]..text_offsets[i + 1])
            .ok_or_else(|| corrupt("text offsets out of range"))?;
        records.push(WalRecord {
            seq: first_seq + i as u64,
            unmatched: flags[i] != 0,
            node: decode_node(nodes[i]),
            text: String::from_utf8(text.to_vec())
                .map_err(|_| corrupt("invalid UTF-8 in text column"))?,
        });
    }
    let mut var_offsets = Vec::with_capacity(count + 1);
    for _ in 0..=count {
        var_offsets.push(u32::from_le_bytes(take(4)?.try_into().expect("4")) as usize);
    }
    let var_blob = take(*var_offsets.last().unwrap_or(&0))?;
    let mut variables = Vec::with_capacity(count);
    for i in 0..count {
        let mut slice = var_blob
            .get(var_offsets[i]..var_offsets[i + 1])
            .ok_or_else(|| corrupt("variable offsets out of range"))?;
        let mut vars = Vec::new();
        if slice.len() < 2 {
            return Err(corrupt("truncated variable entry"));
        }
        let n = u16::from_le_bytes(slice[..2].try_into().expect("2")) as usize;
        slice = &slice[2..];
        for _ in 0..n {
            if slice.len() < 2 {
                return Err(corrupt("truncated variable token"));
            }
            let len = u16::from_le_bytes(slice[..2].try_into().expect("2")) as usize;
            let token = slice
                .get(2..2 + len)
                .ok_or_else(|| corrupt("variable token out of range"))?;
            vars.push(
                String::from_utf8(token.to_vec())
                    .map_err(|_| corrupt("invalid UTF-8 in variable column"))?,
            );
            slice = &slice[2 + len..];
        }
        variables.push(vars);
    }
    let posting_nodes = u32::from_le_bytes(take(4)?.try_into().expect("4")) as usize;
    let mut postings = Vec::with_capacity(posting_nodes);
    for _ in 0..posting_nodes {
        let node = u32::from_le_bytes(take(4)?.try_into().expect("4"));
        let len = u32::from_le_bytes(take(4)?.try_into().expect("4")) as usize;
        let mut offsets = Vec::with_capacity(len);
        for _ in 0..len {
            offsets.push(u32::from_le_bytes(take(4)?.try_into().expect("4")));
        }
        postings.push((node, offsets));
    }
    Ok(Segment {
        first_seq,
        records,
        variables,
        postings,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytebrain::NodeId;

    fn sample_records() -> (Vec<WalRecord>, Vec<Vec<String>>) {
        let records = vec![
            WalRecord {
                seq: 100,
                unmatched: false,
                node: Some(NodeId(3)),
                text: "GET /api/items/7 took 12ms".into(),
            },
            WalRecord {
                seq: 101,
                unmatched: true,
                node: Some(NodeId(9)),
                text: "segfault in thread reaper".into(),
            },
            WalRecord {
                seq: 102,
                unmatched: false,
                node: Some(NodeId(3)),
                text: "GET /api/items/8 took 9ms".into(),
            },
            WalRecord {
                seq: 103,
                unmatched: false,
                node: None,
                text: "".into(),
            },
        ];
        let variables = vec![
            vec!["7".to_string(), "12ms".to_string()],
            vec![],
            vec!["8".to_string(), "9ms".to_string()],
            vec![],
        ];
        (records, variables)
    }

    #[test]
    fn segment_round_trip_preserves_columns_and_postings() {
        let dir = std::env::temp_dir().join(format!("bb-seg-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let (records, variables) = sample_records();
        let path = write_segment(&dir, 1, 100, &records, &variables).unwrap();
        let seg = read_segment(&path).unwrap();
        assert_eq!(seg.first_seq, 100);
        assert_eq!(seg.records, records);
        assert_eq!(seg.variables, variables);
        assert_eq!(seg.end_seq(), 104);
        // Postings invert the node column, offsets ascending.
        assert_eq!(
            seg.postings,
            vec![(3, vec![0, 2]), (9, vec![1])],
            "postings must mirror the node column"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupted_segment_is_rejected() {
        let dir = std::env::temp_dir().join(format!("bb-seg-c-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let (records, variables) = sample_records();
        let path = write_segment(&dir, 2, 0, &records, &variables).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[20] ^= 0x55;
        std::fs::write(&path, bytes).unwrap();
        assert!(read_segment(&path).is_err(), "bit rot must not decode");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
