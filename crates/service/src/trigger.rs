//! Training triggers (§3 "Offline Training"): a training cycle starts when either a
//! volume threshold is reached or a time interval has elapsed since the last run.

use std::time::{Duration, Instant};

/// Why (or whether) a training cycle should start now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TriggerDecision {
    /// Not enough new data and not enough elapsed time.
    Wait,
    /// The configured record-volume threshold has been reached.
    VolumeReached,
    /// The configured time interval has elapsed since the last training run.
    IntervalElapsed,
    /// The topic has never been trained and has at least one record (initial training; the
    /// paper configures this to finish within five minutes of topic creation).
    InitialTraining,
}

impl TriggerDecision {
    /// True for any decision other than [`TriggerDecision::Wait`].
    pub fn should_train(&self) -> bool {
        !matches!(self, TriggerDecision::Wait)
    }
}

/// Volume/time training trigger.
#[derive(Debug, Clone)]
pub struct TrainingTrigger {
    /// Train after this many newly-ingested records.
    pub volume_threshold: u64,
    /// Train after this much time since the previous training run.
    pub interval: Duration,
    records_since_training: u64,
    last_training: Option<Instant>,
    ever_trained: bool,
}

impl TrainingTrigger {
    /// Create a trigger with the given thresholds.
    pub fn new(volume_threshold: u64, interval: Duration) -> Self {
        TrainingTrigger {
            volume_threshold,
            interval,
            records_since_training: 0,
            last_training: None,
            ever_trained: false,
        }
    }

    /// Record that `count` new records were ingested.
    pub fn observe(&mut self, count: u64) {
        self.records_since_training += count;
    }

    /// Number of records ingested since the last training run.
    pub fn pending_records(&self) -> u64 {
        self.records_since_training
    }

    /// Decide whether training should run now.
    pub fn decide(&self, now: Instant) -> TriggerDecision {
        if !self.ever_trained {
            return if self.records_since_training > 0 {
                TriggerDecision::InitialTraining
            } else {
                TriggerDecision::Wait
            };
        }
        if self.records_since_training >= self.volume_threshold {
            return TriggerDecision::VolumeReached;
        }
        match self.last_training {
            Some(last) if now.duration_since(last) >= self.interval => {
                if self.records_since_training > 0 {
                    TriggerDecision::IntervalElapsed
                } else {
                    TriggerDecision::Wait
                }
            }
            _ => TriggerDecision::Wait,
        }
    }

    /// Mark that a training run completed at `now`.
    pub fn mark_trained(&mut self, now: Instant) {
        self.records_since_training = 0;
        self.last_training = Some(now);
        self.ever_trained = true;
    }

    /// Mark that an incremental maintenance run completed at `now`. Same effect as
    /// [`TrainingTrigger::mark_trained`] — the pending-record counter resets and the
    /// interval clock restarts — kept distinct so call sites record whether a full
    /// retrain or a delta absorption satisfied the trigger.
    pub fn mark_maintained(&mut self, now: Instant) {
        self.mark_trained(now);
    }
}

impl Default for TrainingTrigger {
    fn default() -> Self {
        // Production-flavoured defaults: retrain every 100k records or 10 minutes.
        TrainingTrigger::new(100_000, Duration::from_secs(600))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_record_triggers_initial_training() {
        let mut t = TrainingTrigger::new(1_000, Duration::from_secs(60));
        assert_eq!(t.decide(Instant::now()), TriggerDecision::Wait);
        t.observe(1);
        assert_eq!(t.decide(Instant::now()), TriggerDecision::InitialTraining);
        assert!(t.decide(Instant::now()).should_train());
    }

    #[test]
    fn volume_threshold_triggers_training() {
        let mut t = TrainingTrigger::new(100, Duration::from_secs(3600));
        let now = Instant::now();
        t.observe(1);
        t.mark_trained(now);
        t.observe(99);
        assert_eq!(t.decide(now), TriggerDecision::Wait);
        t.observe(1);
        assert_eq!(t.decide(now), TriggerDecision::VolumeReached);
    }

    #[test]
    fn interval_triggers_training_when_data_pending() {
        let mut t = TrainingTrigger::new(1_000_000, Duration::from_millis(10));
        let start = Instant::now();
        t.observe(5);
        t.mark_trained(start);
        t.observe(3);
        let later = start + Duration::from_millis(20);
        assert_eq!(t.decide(later), TriggerDecision::IntervalElapsed);
    }

    #[test]
    fn interval_without_new_data_waits() {
        let mut t = TrainingTrigger::new(1_000, Duration::from_millis(10));
        let start = Instant::now();
        t.observe(5);
        t.mark_trained(start);
        let later = start + Duration::from_secs(10);
        assert_eq!(t.decide(later), TriggerDecision::Wait);
    }

    #[test]
    fn mark_trained_resets_pending_count() {
        let mut t = TrainingTrigger::default();
        t.observe(42);
        assert_eq!(t.pending_records(), 42);
        t.mark_trained(Instant::now());
        assert_eq!(t.pending_records(), 0);
    }
}
