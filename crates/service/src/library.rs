//! The template library (§6): users save selected templates and attach alert rules to
//! them (e.g. "alert when this template's count jumps" or "alert when a new template
//! appears"). The library also powers matching incoming logs against known failure
//! scenarios.

use serde::{Deserialize, Serialize};

/// An alert rule attached to a saved template.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AlertRule {
    /// Alert whenever the template's count in a window exceeds this value.
    CountAbove(u64),
    /// Alert whenever the template's count in a window falls below this value.
    CountBelow(u64),
    /// Alert the first time the template appears at all.
    OnAppearance,
}

/// A saved library entry.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LibraryEntry {
    /// User-facing name ("OOM killer", "disk failure", …).
    pub name: String,
    /// The template text (presentation form, wildcards as `*`).
    pub template: String,
    /// Attached alert rules.
    pub rules: Vec<AlertRule>,
}

/// A fired alert.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Alert {
    /// Name of the library entry that fired.
    pub entry: String,
    /// The rule that fired.
    pub rule: AlertRule,
    /// Observed count in the evaluated window.
    pub observed: u64,
}

/// The per-topic template library.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct TemplateLibrary {
    entries: Vec<LibraryEntry>,
}

impl TemplateLibrary {
    /// An empty library.
    pub fn new() -> Self {
        Self::default()
    }

    /// Save a template under a name (replaces an existing entry with the same name).
    pub fn save(&mut self, name: &str, template: &str, rules: Vec<AlertRule>) {
        self.entries.retain(|e| e.name != name);
        self.entries.push(LibraryEntry {
            name: name.to_string(),
            template: template.to_string(),
            rules,
        });
    }

    /// Remove an entry by name; returns true when something was removed.
    pub fn remove(&mut self, name: &str) -> bool {
        let before = self.entries.len();
        self.entries.retain(|e| e.name != name);
        self.entries.len() != before
    }

    /// Number of saved entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the library is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Look up an entry by name.
    pub fn get(&self, name: &str) -> Option<&LibraryEntry> {
        self.entries.iter().find(|e| e.name == name)
    }

    /// All entries.
    pub fn entries(&self) -> &[LibraryEntry] {
        &self.entries
    }

    /// Match a template text against the library: returns the names of entries whose
    /// template is position-wise compatible (a library wildcard matches anything; equal
    /// constants match each other). Used to map parsed templates to known failure
    /// scenarios.
    pub fn match_template(&self, template: &str) -> Vec<&str> {
        let tokens: Vec<&str> = template.split_whitespace().collect();
        self.entries
            .iter()
            .filter(|entry| {
                let entry_tokens: Vec<&str> = entry.template.split_whitespace().collect();
                entry_tokens.len() == tokens.len()
                    && entry_tokens
                        .iter()
                        .zip(&tokens)
                        .all(|(e, t)| *e == "*" || *t == "*" || e == t)
            })
            .map(|entry| entry.name.as_str())
            .collect()
    }

    /// Evaluate every alert rule against a template-count distribution for a window
    /// (`(template, count)` pairs as returned by `template_distribution`).
    pub fn evaluate_alerts(&self, distribution: &[(String, u64)]) -> Vec<Alert> {
        let mut alerts = Vec::new();
        for entry in &self.entries {
            // Aggregate the counts of all distribution templates compatible with this entry.
            let observed: u64 = distribution
                .iter()
                .filter(|(template, _)| {
                    self.match_template(template)
                        .iter()
                        .any(|name| *name == entry.name)
                })
                .map(|(_, count)| *count)
                .sum();
            for rule in &entry.rules {
                let fired = match rule {
                    AlertRule::CountAbove(limit) => observed > *limit,
                    AlertRule::CountBelow(limit) => observed < *limit,
                    AlertRule::OnAppearance => observed > 0,
                };
                if fired {
                    alerts.push(Alert {
                        entry: entry.name.clone(),
                        rule: *rule,
                        observed,
                    });
                }
            }
        }
        alerts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn distribution(pairs: &[(&str, u64)]) -> Vec<(String, u64)> {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    #[test]
    fn save_get_and_remove() {
        let mut lib = TemplateLibrary::new();
        lib.save(
            "oom",
            "Out of memory: Killed process *",
            vec![AlertRule::OnAppearance],
        );
        assert_eq!(lib.len(), 1);
        assert!(lib.get("oom").is_some());
        assert!(lib.remove("oom"));
        assert!(lib.is_empty());
        assert!(!lib.remove("oom"));
    }

    #[test]
    fn saving_same_name_replaces_entry() {
        let mut lib = TemplateLibrary::new();
        lib.save("x", "a *", vec![]);
        lib.save("x", "b *", vec![]);
        assert_eq!(lib.len(), 1);
        assert_eq!(lib.get("x").unwrap().template, "b *");
    }

    #[test]
    fn template_matching_respects_wildcards() {
        let mut lib = TemplateLibrary::new();
        lib.save("disk", "disk failure on *", vec![]);
        lib.save("net", "connection refused from *", vec![]);
        assert_eq!(lib.match_template("disk failure on sda1"), vec!["disk"]);
        assert_eq!(lib.match_template("disk failure on *"), vec!["disk"]);
        assert!(lib.match_template("disk failure").is_empty());
    }

    #[test]
    fn appearance_alert_fires_when_template_seen() {
        let mut lib = TemplateLibrary::new();
        lib.save(
            "oom",
            "Out of memory: Killed process *",
            vec![AlertRule::OnAppearance],
        );
        let alerts = lib.evaluate_alerts(&distribution(&[
            ("Out of memory: Killed process *", 3),
            ("user login *", 500),
        ]));
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].entry, "oom");
        assert_eq!(alerts[0].observed, 3);
    }

    #[test]
    fn count_threshold_alerts() {
        let mut lib = TemplateLibrary::new();
        lib.save(
            "errors",
            "request failed with status *",
            vec![AlertRule::CountAbove(100)],
        );
        lib.save(
            "heartbeat",
            "heartbeat from *",
            vec![AlertRule::CountBelow(5)],
        );
        let alerts = lib.evaluate_alerts(&distribution(&[
            ("request failed with status *", 250),
            ("heartbeat from *", 2),
        ]));
        assert_eq!(alerts.len(), 2);
    }

    #[test]
    fn no_alerts_when_rules_not_met() {
        let mut lib = TemplateLibrary::new();
        lib.save(
            "errors",
            "request failed with status *",
            vec![AlertRule::CountAbove(100)],
        );
        let alerts = lib.evaluate_alerts(&distribution(&[("request failed with status *", 10)]));
        assert!(alerts.is_empty());
    }
}
