//! The "internal topic" (§3): a per-topic store of model snapshots. Each node persists its
//! template text, saturation score and parent/child relationships, which is exactly what
//! online matching and query-time threshold navigation need — no external database.

use bytebrain::ParserModel;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::RwLock;

/// Metadata describing one persisted model snapshot.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SnapshotInfo {
    /// Monotonically increasing snapshot version (1 = first training run).
    pub version: u64,
    /// Number of templates (tree nodes) in the snapshot.
    pub num_templates: usize,
    /// Approximate serialized size in bytes.
    pub size_bytes: u64,
    /// Number of raw records the model was trained on.
    pub trained_records: u64,
}

/// In-memory model store with versioned snapshots (the production system writes the same
/// payload to an internal log topic; an in-process store exercises the identical code
/// path at laptop scale).
#[derive(Debug, Default)]
pub struct ModelStore {
    inner: RwLock<StoreInner>,
}

#[derive(Debug, Default)]
struct StoreInner {
    snapshots: HashMap<u64, (SnapshotInfo, String)>,
    latest: u64,
}

impl ModelStore {
    /// Create an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Persist `model` as the next snapshot version and return its metadata.
    pub fn save(&self, model: &ParserModel) -> SnapshotInfo {
        let payload = serde_json::to_string(model).expect("model serializes to JSON");
        let mut inner = self.inner.write().expect("store lock poisoned");
        let version = inner.latest + 1;
        let info = SnapshotInfo {
            version,
            num_templates: model.len(),
            size_bytes: payload.len() as u64,
            trained_records: model.trained_records(),
        };
        inner.snapshots.insert(version, (info.clone(), payload));
        inner.latest = version;
        info
    }

    /// Load a snapshot by version.
    pub fn load(&self, version: u64) -> Option<ParserModel> {
        let inner = self.inner.read().expect("store lock poisoned");
        inner
            .snapshots
            .get(&version)
            .map(|(_, payload)| serde_json::from_str(payload).expect("stored model deserializes"))
    }

    /// Load the most recent snapshot.
    pub fn load_latest(&self) -> Option<ParserModel> {
        let version = self.inner.read().expect("store lock poisoned").latest;
        if version == 0 {
            None
        } else {
            self.load(version)
        }
    }

    /// Metadata of the most recent snapshot.
    pub fn latest_info(&self) -> Option<SnapshotInfo> {
        let inner = self.inner.read().expect("store lock poisoned");
        inner
            .snapshots
            .get(&inner.latest)
            .map(|(info, _)| info.clone())
    }

    /// Number of stored snapshots.
    pub fn len(&self) -> usize {
        self.inner
            .read()
            .expect("store lock poisoned")
            .snapshots
            .len()
    }

    /// True when no snapshot has been stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop all snapshots older than the most recent `keep` versions (retention policy —
    /// storage efficiency is one of the paper's stated goals).
    pub fn prune(&self, keep: usize) {
        let mut inner = self.inner.write().expect("store lock poisoned");
        let latest = inner.latest;
        inner
            .snapshots
            .retain(|&version, _| latest.saturating_sub(version) < keep as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytebrain::{train::train, TrainConfig};

    fn trained_model() -> ParserModel {
        let records: Vec<String> = (0..30)
            .map(|i| format!("request {} served in {}ms", i, i * 2))
            .collect();
        train(&records, &TrainConfig::default()).model
    }

    #[test]
    fn save_and_load_round_trip() {
        let store = ModelStore::new();
        let model = trained_model();
        let info = store.save(&model);
        assert_eq!(info.version, 1);
        assert_eq!(info.num_templates, model.len());
        let loaded = store.load(1).unwrap();
        assert_eq!(loaded.len(), model.len());
        let texts_a: Vec<String> = model.nodes.iter().map(|n| n.template_text()).collect();
        let texts_b: Vec<String> = loaded.nodes.iter().map(|n| n.template_text()).collect();
        assert_eq!(texts_a, texts_b);
    }

    #[test]
    fn versions_increase_and_latest_wins() {
        let store = ModelStore::new();
        let model = trained_model();
        assert!(store.load_latest().is_none());
        let a = store.save(&model);
        let b = store.save(&model);
        assert_eq!(a.version, 1);
        assert_eq!(b.version, 2);
        assert_eq!(store.latest_info().unwrap().version, 2);
        assert!(store.load_latest().is_some());
    }

    #[test]
    fn prune_keeps_recent_snapshots() {
        let store = ModelStore::new();
        let model = trained_model();
        for _ in 0..5 {
            store.save(&model);
        }
        assert_eq!(store.len(), 5);
        store.prune(2);
        assert_eq!(store.len(), 2);
        assert!(store.load(5).is_some());
        assert!(store.load(4).is_some());
        assert!(store.load(1).is_none());
    }

    #[test]
    fn missing_version_returns_none() {
        let store = ModelStore::new();
        assert!(store.load(7).is_none());
        assert!(store.is_empty());
    }

    #[test]
    fn snapshot_size_is_reported() {
        let store = ModelStore::new();
        let info = store.save(&trained_model());
        assert!(info.size_bytes > 100);
        assert!(info.trained_records >= 30);
    }
}
