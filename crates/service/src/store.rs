//! The "internal topic" (§3): a per-topic store of model snapshots. Each node persists its
//! template text, saturation score and parent/child relationships, which is exactly what
//! online matching and query-time threshold navigation need — no external database.
//!
//! Two snapshot kinds exist. **Full** snapshots serialize the whole model (written by
//! offline training runs). **Delta** snapshots serialize only the
//! [`ModelDelta`] an incremental maintenance run applied, plus the version it applied to — the store records the *lineage* of every
//! version, and [`ModelStore::load`] reconstructs a delta version by loading its nearest
//! full ancestor and replaying the delta chain. [`ModelStore::prune`] therefore never
//! drops a snapshot that a retained version still depends on.

use crate::storage::{LineageEntry, LineageSink};
use bytebrain::incremental::{apply_delta, ModelDelta};
use bytebrain::ParserModel;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use std::sync::RwLock;

/// Whether a snapshot stores a whole model or an incremental delta.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SnapshotKind {
    /// The snapshot serializes the full model.
    Full,
    /// The snapshot serializes a [`ModelDelta`] applied to its parent version.
    Delta,
}

/// Metadata describing one persisted model snapshot.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SnapshotInfo {
    /// Monotonically increasing snapshot version (1 = first training run).
    pub version: u64,
    /// Full model or incremental delta.
    pub kind: SnapshotKind,
    /// The version this snapshot was derived from (`None` for full snapshots, which
    /// are self-contained).
    pub parent: Option<u64>,
    /// Number of active templates (tree nodes, excluding retired slots) in the
    /// reconstructed model.
    pub num_templates: usize,
    /// Approximate serialized size in bytes (for deltas: the delta payload, which is
    /// the point of storing them).
    pub size_bytes: u64,
    /// Number of raw records the reconstructed model covers.
    pub trained_records: u64,
}

/// In-memory model store with versioned snapshots and delta lineage (the production
/// system writes the same payloads to an internal log topic; an in-process store
/// exercises the identical code path at laptop scale).
#[derive(Debug, Default)]
pub struct ModelStore {
    inner: RwLock<StoreInner>,
    /// Durable mirror: every save/prune is echoed to the topic's lineage log,
    /// so a restart restores the whole store — and with it the cold-start
    /// training plus the delta chain — instead of retraining.
    sink: Option<LineageSink>,
}

#[derive(Debug, Default)]
struct StoreInner {
    snapshots: HashMap<u64, (SnapshotInfo, String)>,
    latest: u64,
}

impl StoreInner {
    /// The chain of versions needed to reconstruct `version`, nearest-full-ancestor
    /// first, `version` last. `None` when the version (or part of its chain) is gone.
    fn chain_of(&self, version: u64) -> Option<Vec<u64>> {
        let mut chain = Vec::new();
        let mut current = version;
        loop {
            let (info, _) = self.snapshots.get(&current)?;
            chain.push(current);
            match (info.kind, info.parent) {
                (SnapshotKind::Full, _) => break,
                (SnapshotKind::Delta, Some(parent)) => current = parent,
                (SnapshotKind::Delta, None) => return None,
            }
        }
        chain.reverse();
        Some(chain)
    }
}

impl ModelStore {
    /// Create an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuild a store from the lineage entries a
    /// [`LineageSink`] restored on open (append order == version order).
    pub fn restore(entries: &[LineageEntry]) -> Self {
        let mut snapshots = HashMap::with_capacity(entries.len());
        let mut latest = 0u64;
        for entry in entries {
            latest = latest.max(entry.info.version);
            snapshots.insert(
                entry.info.version,
                (entry.info.clone(), entry.payload.clone()),
            );
        }
        ModelStore {
            inner: RwLock::new(StoreInner { snapshots, latest }),
            sink: None,
        }
    }

    /// Mirror every future save and prune to the durable lineage log.
    pub fn attach_sink(&mut self, sink: LineageSink) {
        self.sink = Some(sink);
    }

    /// Persist `model` as the next snapshot version (a full, self-contained snapshot)
    /// and return its metadata.
    pub fn save(&self, model: &ParserModel) -> SnapshotInfo {
        let payload = serde_json::to_string(model).expect("model serializes to JSON");
        let mut inner = self.inner.write().expect("store lock poisoned");
        let version = inner.latest + 1;
        let info = SnapshotInfo {
            version,
            kind: SnapshotKind::Full,
            parent: None,
            num_templates: model.len() - model.retired_count(),
            size_bytes: payload.len() as u64,
            trained_records: model.trained_records(),
        };
        if let Some(sink) = &self.sink {
            // Inside the write lock: lineage append order must match version order.
            sink.append(&info, &payload).expect("lineage append");
        }
        inner.snapshots.insert(version, (info.clone(), payload));
        inner.latest = version;
        info
    }

    /// Persist an incremental maintenance step as the next snapshot version. Only the
    /// delta is serialized; `resulting` (the model after [`apply_delta`]) provides the
    /// metadata. The delta's parent is the latest stored version.
    ///
    /// # Panics
    /// Panics when the store is empty — a delta needs a base to apply to.
    pub fn save_delta(&self, delta: &ModelDelta, resulting: &ParserModel) -> SnapshotInfo {
        let payload = serde_json::to_string(delta).expect("delta serializes to JSON");
        let mut inner = self.inner.write().expect("store lock poisoned");
        assert!(
            inner.latest > 0,
            "cannot store a delta snapshot before any full snapshot"
        );
        let parent = inner.latest;
        let version = parent + 1;
        let info = SnapshotInfo {
            version,
            kind: SnapshotKind::Delta,
            parent: Some(parent),
            num_templates: resulting.len() - resulting.retired_count(),
            size_bytes: payload.len() as u64,
            trained_records: resulting.trained_records(),
        };
        if let Some(sink) = &self.sink {
            sink.append(&info, &payload).expect("lineage append");
        }
        inner.snapshots.insert(version, (info.clone(), payload));
        inner.latest = version;
        info
    }

    /// Reconstruct a snapshot by version: full snapshots deserialize directly, delta
    /// snapshots load their nearest full ancestor and replay the delta chain.
    pub fn load(&self, version: u64) -> Option<ParserModel> {
        let inner = self.inner.read().expect("store lock poisoned");
        let chain = inner.chain_of(version)?;
        let mut model: Option<ParserModel> = None;
        for step in chain {
            let (info, payload) = inner.snapshots.get(&step)?;
            match info.kind {
                SnapshotKind::Full => {
                    model = Some(serde_json::from_str(payload).expect("stored model deserializes"));
                }
                SnapshotKind::Delta => {
                    let delta: ModelDelta =
                        serde_json::from_str(payload).expect("stored delta deserializes");
                    let base = model.expect("chain starts with a full snapshot");
                    model = Some(apply_delta(&base, &delta));
                }
            }
        }
        model
    }

    /// Load the most recent snapshot.
    pub fn load_latest(&self) -> Option<ParserModel> {
        let version = self.inner.read().expect("store lock poisoned").latest;
        if version == 0 {
            None
        } else {
            self.load(version)
        }
    }

    /// Metadata of the most recent snapshot.
    pub fn latest_info(&self) -> Option<SnapshotInfo> {
        let inner = self.inner.read().expect("store lock poisoned");
        inner
            .snapshots
            .get(&inner.latest)
            .map(|(info, _)| info.clone())
    }

    /// Metadata of a specific version.
    pub fn info(&self, version: u64) -> Option<SnapshotInfo> {
        let inner = self.inner.read().expect("store lock poisoned");
        inner.snapshots.get(&version).map(|(info, _)| info.clone())
    }

    /// The lineage of `version`: the versions needed to reconstruct it, starting at
    /// its nearest full ancestor and ending at `version` itself.
    pub fn lineage(&self, version: u64) -> Option<Vec<u64>> {
        self.inner
            .read()
            .expect("store lock poisoned")
            .chain_of(version)
    }

    /// Number of stored snapshots.
    pub fn len(&self) -> usize {
        self.inner
            .read()
            .expect("store lock poisoned")
            .snapshots
            .len()
    }

    /// True when no snapshot has been stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop old snapshots, keeping the most recent `keep` versions (retention policy —
    /// storage efficiency is one of the paper's stated goals) **plus every snapshot a
    /// kept version depends on**: pruning walks the delta lineage of each retained
    /// version and keeps the whole chain down to its nearest full ancestor, so every
    /// retained version stays reconstructable.
    pub fn prune(&self, keep: usize) {
        let mut inner = self.inner.write().expect("store lock poisoned");
        let latest = inner.latest;
        let mut retain: HashSet<u64> = inner
            .snapshots
            .keys()
            .copied()
            .filter(|&version| latest.saturating_sub(version) < keep as u64)
            .collect();
        // Delta lineage must never break: keep the full reconstruction chain of every
        // retained version.
        for version in retain.clone() {
            if let Some(chain) = inner.chain_of(version) {
                retain.extend(chain);
            }
        }
        inner
            .snapshots
            .retain(|version, _| retain.contains(version));
        if let Some(sink) = &self.sink {
            // Atomically rewrite the lineage log with the retained set, ascending by
            // version, so a restart sees exactly the pruned store.
            let mut retained: Vec<(SnapshotInfo, String)> = inner
                .snapshots
                .values()
                .map(|(info, payload)| (info.clone(), payload.clone()))
                .collect();
            retained.sort_by_key(|(info, _)| info.version);
            sink.rewrite(&retained).expect("lineage rewrite");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytebrain::incremental::train_delta;
    use bytebrain::{train::train, TrainConfig};

    fn trained_model() -> ParserModel {
        let mut records: Vec<String> = (0..30)
            .map(|i| format!("request {} served in {}ms", i, i * 2))
            .collect();
        records.extend((0..30).map(|i| {
            format!(
                "session {} opened by user u{} from zone {}",
                i,
                i % 5,
                i % 3
            )
        }));
        records.extend(
            (0..30).map(|i| format!("gc pause of generation {} freed {} objects", i % 4, i * 7)),
        );
        train(&records, &TrainConfig::default()).model
    }

    /// A chain of incremental steps on top of a full snapshot: returns the store and
    /// the model as of the latest version.
    fn store_with_delta_chain(deltas: usize) -> (ModelStore, ParserModel) {
        let store = ModelStore::new();
        let config = TrainConfig::default();
        let mut model = trained_model();
        store.save(&model);
        for step in 0..deltas {
            let batch: Vec<String> = (0..20)
                .map(|i| format!("delta{step} event {i} absorbed"))
                .collect();
            let delta = train_delta(&model, &batch, &config, 0.6);
            model = apply_delta(&model, &delta);
            store.save_delta(&delta, &model);
        }
        (store, model)
    }

    #[test]
    fn save_and_load_round_trip() {
        let store = ModelStore::new();
        let model = trained_model();
        let info = store.save(&model);
        assert_eq!(info.version, 1);
        assert_eq!(info.kind, SnapshotKind::Full);
        assert_eq!(info.parent, None);
        assert_eq!(info.num_templates, model.len());
        let loaded = store.load(1).unwrap();
        assert_eq!(loaded.len(), model.len());
        let texts_a: Vec<String> = model.nodes.iter().map(|n| n.template_text()).collect();
        let texts_b: Vec<String> = loaded.nodes.iter().map(|n| n.template_text()).collect();
        assert_eq!(texts_a, texts_b);
    }

    #[test]
    fn versions_increase_and_latest_wins() {
        let store = ModelStore::new();
        let model = trained_model();
        assert!(store.load_latest().is_none());
        let a = store.save(&model);
        let b = store.save(&model);
        assert_eq!(a.version, 1);
        assert_eq!(b.version, 2);
        assert_eq!(store.latest_info().unwrap().version, 2);
        assert!(store.load_latest().is_some());
    }

    #[test]
    fn prune_keeps_recent_snapshots() {
        let store = ModelStore::new();
        let model = trained_model();
        for _ in 0..5 {
            store.save(&model);
        }
        assert_eq!(store.len(), 5);
        store.prune(2);
        assert_eq!(store.len(), 2);
        assert!(store.load(5).is_some());
        assert!(store.load(4).is_some());
        assert!(store.load(1).is_none());
    }

    #[test]
    fn missing_version_returns_none() {
        let store = ModelStore::new();
        assert!(store.load(7).is_none());
        assert!(store.is_empty());
    }

    #[test]
    fn snapshot_size_is_reported() {
        let store = ModelStore::new();
        let info = store.save(&trained_model());
        assert!(info.size_bytes > 100);
        assert!(info.trained_records >= 30);
    }

    #[test]
    fn delta_snapshots_reconstruct_any_version() {
        let (store, latest_model) = store_with_delta_chain(3);
        assert_eq!(store.len(), 4);
        assert_eq!(store.lineage(4), Some(vec![1, 2, 3, 4]));
        // Every version along the chain reconstructs.
        for version in 1..=4 {
            let loaded = store.load(version).unwrap();
            assert!(!loaded.is_empty(), "version {version} reconstructs");
        }
        // The latest reconstruction equals the live model.
        let reconstructed = store.load(4).unwrap();
        assert_eq!(reconstructed.len(), latest_model.len());
        let live: Vec<String> = latest_model
            .nodes
            .iter()
            .map(|n| n.template_text())
            .collect();
        let loaded: Vec<String> = reconstructed
            .nodes
            .iter()
            .map(|n| n.template_text())
            .collect();
        assert_eq!(live, loaded);
    }

    #[test]
    fn delta_snapshots_are_smaller_than_full_ones() {
        let (store, _) = store_with_delta_chain(1);
        let full = store.info(1).unwrap();
        let delta = store.info(2).unwrap();
        assert_eq!(delta.kind, SnapshotKind::Delta);
        assert_eq!(delta.parent, Some(1));
        assert!(
            delta.size_bytes < full.size_bytes,
            "delta ({} B) should undercut the full snapshot ({} B)",
            delta.size_bytes,
            full.size_bytes
        );
    }

    #[test]
    fn prune_never_breaks_delta_lineage() {
        // Regression test: the old fixed-window retention dropped the full base
        // snapshot that live delta versions still depended on, making them
        // unreconstructable.
        let (store, _) = store_with_delta_chain(3); // versions: 1=Full, 2..4=Delta
        store.prune(1); // naive retention would keep only version 4
        assert_eq!(
            store.lineage(4),
            Some(vec![1, 2, 3, 4]),
            "the whole chain of the retained version must survive pruning"
        );
        assert_eq!(store.len(), 4);
        assert!(store.load(4).is_some(), "latest version must reconstruct");
    }

    #[test]
    fn prune_drops_chains_no_retained_version_needs() {
        let store = ModelStore::new();
        let config = TrainConfig::default();
        let mut model = trained_model();
        store.save(&model); // v1 Full
        let batch: Vec<String> = (0..10).map(|i| format!("old delta event {i}")).collect();
        let delta = train_delta(&model, &batch, &config, 0.6);
        model = apply_delta(&model, &delta);
        store.save_delta(&delta, &model); // v2 Delta (parent 1)
        let retrained = trained_model();
        store.save(&retrained); // v3 Full — a fresh chain
        store.prune(1);
        // v3 is self-contained: v1 and v2 are dead and must be dropped.
        assert_eq!(store.len(), 1);
        assert!(store.load(3).is_some());
        assert!(store.load(2).is_none());
        assert!(store.load(1).is_none());
    }
}
