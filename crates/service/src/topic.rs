//! The log topic: the unit of ingestion, parsing, storage and analysis (§3).
//!
//! Records ingested into a topic are matched online against the topic's current model (so
//! their template id is available to the indexing pipeline before the record is written to
//! the append-only store), buffered for the next training cycle, and retained with their
//! most-precise template id for querying. Training is triggered by volume or time and the
//! refreshed model is merged with the previous one.
//!
//! Two maintenance policies exist. [`MaintenancePolicy::FullRetrain`] (the default)
//! re-clusters the whole training buffer when a trigger fires — a stop-the-world pause
//! that renumbers the tree and forces every stored record to be re-matched.
//! [`MaintenancePolicy::Incremental`] instead watches per-shard drift (unmatched-rate
//! surges, saturation decay) and folds only the small *unmatched buffer* into the
//! existing model as a copy-on-write delta ([`bytebrain::incremental`]): node ids stay
//! stable, the delta is persisted to the model store as lineage, and the refreshed
//! snapshot is hot-swapped into a running stream at a shard-flush boundary.

use crate::ingest::{IngestConfig, IngestStats, MatchedRecord, StreamIngestor};
use crate::query::{QueryCache, QueryIndex, RecordAccess};
use crate::storage::{
    DeltaEvent, RecordMove, RetentionOutcome, StorageConfig, TopicMeta, TopicStorage, WalRecord,
};
use crate::store::ModelStore;
use crate::trigger::{TrainingTrigger, TriggerDecision};
use bytebrain::incremental::{apply_delta, train_delta, DriftConfig, DriftDetector, ModelDelta};
use bytebrain::matcher::match_ids_batch;
use bytebrain::merge::merge_models;
use bytebrain::train::train;
use bytebrain::{
    CompiledMatcher, MatchEngine, NodeId, ParserModel, QueryPlan, SaturationLadder, TemplateToken,
    TrainConfig,
};
use logtok::Preprocessor;
use std::io;
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How a topic keeps its model current as the workload evolves.
#[derive(Debug, Clone, Default)]
pub enum MaintenancePolicy {
    /// Volume/time triggers run a full retrain over the training buffer and merge the
    /// result into the previous model (the paper's baseline behaviour).
    #[default]
    FullRetrain,
    /// Drift detection and volume/time triggers fold the unmatched buffer into the
    /// current model as an incremental delta — no stop-the-world retrain, stable node
    /// ids, delta lineage in the model store.
    Incremental {
        /// Sliding-window drift detection bounds.
        drift: DriftConfig,
        /// During [`LogTopic::ingest_stream`], harvest completed records and check for
        /// drift every this many pushed records (clamped to at least 1).
        check_interval: usize,
    },
}

/// Configuration of a log topic.
#[derive(Debug, Clone)]
pub struct TopicConfig {
    /// Topic name (used in reports and the model store).
    pub name: String,
    /// Parser training configuration.
    pub train: TrainConfig,
    /// Train after this many newly ingested records.
    pub volume_threshold: u64,
    /// Train after this much time since the last training run.
    pub interval: Duration,
    /// Maximum number of recent records buffered for the next training cycle (older
    /// records are dropped from the buffer — they remain in the topic store).
    pub training_buffer: usize,
    /// Template-similarity threshold used when merging a new model into the old one.
    pub merge_threshold: f64,
    /// Full-retrain or incremental model maintenance.
    pub maintenance: MaintenancePolicy,
    /// Matching engine: the compiled automaton (default) or the linear tree
    /// walker (the escape hatch / differential reference).
    pub match_engine: MatchEngine,
}

impl TopicConfig {
    /// A topic configuration with production-flavoured defaults.
    pub fn new(name: &str) -> Self {
        TopicConfig {
            name: name.to_string(),
            train: TrainConfig::default(),
            volume_threshold: 50_000,
            interval: Duration::from_secs(600),
            training_buffer: 500_000,
            merge_threshold: 0.6,
            maintenance: MaintenancePolicy::FullRetrain,
            match_engine: MatchEngine::default(),
        }
    }

    /// Override the volume threshold.
    pub fn with_volume_threshold(mut self, threshold: u64) -> Self {
        self.volume_threshold = threshold;
        self
    }

    /// Switch the topic to incremental maintenance with the given drift bounds and a
    /// default mid-stream check interval.
    pub fn with_incremental_maintenance(mut self, drift: DriftConfig) -> Self {
        self.maintenance = MaintenancePolicy::Incremental {
            drift,
            check_interval: 2_048,
        };
        self
    }

    /// Override the full maintenance policy.
    pub fn with_maintenance(mut self, maintenance: MaintenancePolicy) -> Self {
        self.maintenance = maintenance;
        self
    }

    /// Override the matching engine.
    pub fn with_match_engine(mut self, engine: MatchEngine) -> Self {
        self.match_engine = engine;
        self
    }
}

/// One record retained by the topic: the raw text plus the most precise template id the
/// online matcher assigned (None until the first model exists).
#[derive(Debug, Clone)]
pub struct StoredRecord {
    /// The raw log text.
    pub record: String,
    /// Most precise matched template, when a model existed at ingest time.
    pub template: Option<NodeId>,
}

/// Outcome of one `ingest` call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestOutcome {
    /// Records matched to an existing template.
    pub matched: usize,
    /// Records that matched no template (inserted as temporary templates).
    pub unmatched: usize,
    /// Whether this ingest call triggered a full training run.
    pub trained: bool,
    /// Number of incremental maintenance runs this call triggered.
    pub maintained: usize,
}

/// Aggregate statistics of a topic (reported in the Table 5 reproduction).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TopicStats {
    /// Total records ingested.
    pub total_records: u64,
    /// Total bytes ingested.
    pub total_bytes: u64,
    /// Number of templates in the current model.
    pub templates: usize,
    /// Approximate model size in bytes.
    pub model_size_bytes: u64,
    /// Number of completed training runs.
    pub training_runs: u64,
    /// Wall-clock time of the most recent training run, in seconds.
    pub last_training_seconds: f64,
    /// Number of completed incremental maintenance runs.
    pub maintenance_runs: u64,
    /// Wall-clock time of the most recent incremental maintenance run, in seconds.
    pub last_maintenance_seconds: f64,
}

/// Outcome of one [`LogTopic::ingest_stream`] call: the usual ingest outcome plus the
/// streaming engine's shard and back-pressure statistics.
#[derive(Debug, Clone)]
pub struct StreamOutcome {
    /// Matched/unmatched/trained counters, identical in meaning to [`LogTopic::ingest`].
    pub outcome: IngestOutcome,
    /// Per-shard counters and back-pressure stats of the streaming run (empty when the
    /// cold-start fallback took the batch path).
    pub stats: IngestStats,
}

/// Typed shed from [`LogTopic::ingest_stream_bounded`]: the pool stayed saturated
/// past the wait bound mid-stream. The accepted prefix was applied and committed
/// exactly as [`LogTopic::ingest_stream`] would have; `rejected` holds the record
/// that hit the bound plus every record after it, unconsumed and in order.
#[derive(Debug)]
pub struct StreamOverloaded {
    /// Outcome of the accepted (applied and committed) prefix.
    pub outcome: StreamOutcome,
    /// The shed suffix: first the record that timed out, then the un-pushed tail.
    pub rejected: Vec<String>,
}

impl std::fmt::Display for StreamOverloaded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "stream overloaded: {} records shed after an accepted prefix of {}",
            self.rejected.len(),
            self.outcome.outcome.matched + self.outcome.outcome.unmatched
        )
    }
}

/// A log topic with online matching and periodic training.
#[derive(Debug)]
pub struct LogTopic {
    config: TopicConfig,
    preprocessor: Arc<Preprocessor>,
    model: Arc<ParserModel>,
    /// Compiled automaton snapshot paired with `model` (None under
    /// [`MatchEngine::TreeWalk`] or before the first model exists). Rebuilt
    /// from scratch on training, patched per delta, and refreshed lazily after
    /// temporary-template insertions — same swap lifecycle as the ladder.
    compiled: Option<Arc<CompiledMatcher>>,
    /// Set when the model changed since `compiled` was built (temporary
    /// insertions arrive one record at a time; recompiling per record would be
    /// a quadratic storm, so the refresh is deferred to the next match batch).
    compiled_stale: bool,
    /// Precomputed per-node ancestor ladders for indexed query resolution; rebuilt on
    /// train, patched incrementally per delta, extended per temporary insertion.
    ladder: Arc<SaturationLadder>,
    /// Per-node postings (record index lists) maintained at ingest time so queries
    /// never scan the record store.
    index: Arc<QueryIndex>,
    /// Bumped on every model change (training, delta, temporary insertion); part of
    /// the query cache key.
    model_version: u64,
    /// LRU cache of query results, cleared when maintenance hot-swaps the model.
    query_cache: QueryCache,
    store: ModelStore,
    trigger: TrainingTrigger,
    training_buffer: Vec<String>,
    /// Raw text of records that matched no template, pending incremental absorption.
    unmatched_buffer: Vec<String>,
    drift: Option<DriftDetector>,
    records: Vec<StoredRecord>,
    total_bytes: u64,
    training_runs: u64,
    last_training_seconds: f64,
    maintenance_runs: u64,
    last_maintenance_seconds: f64,
    /// Durable storage tier (WAL + segments + lineage); `None` for in-memory topics.
    storage: Option<TopicStorage>,
    /// Monotonic topic generation mirrored from the storage manifest: bumped on
    /// recovery, TTL retention and compaction. Part of the query-cache key — a
    /// record *set* change without a model change must still miss the cache.
    generation: u64,
}

impl LogTopic {
    /// Create an empty topic.
    pub fn new(config: TopicConfig) -> Self {
        let preprocessor = Arc::new(Preprocessor::new(config.train.preprocess.clone()));
        let trigger = TrainingTrigger::new(config.volume_threshold, config.interval);
        let drift = match &config.maintenance {
            MaintenancePolicy::FullRetrain => None,
            MaintenancePolicy::Incremental { drift, .. } => Some(DriftDetector::new(drift.clone())),
        };
        LogTopic {
            config,
            preprocessor,
            model: Arc::new(ParserModel::new()),
            compiled: None,
            compiled_stale: false,
            ladder: Arc::new(SaturationLadder::default()),
            index: Arc::new(QueryIndex::new()),
            model_version: 0,
            query_cache: QueryCache::default(),
            store: ModelStore::new(),
            trigger,
            training_buffer: Vec::new(),
            unmatched_buffer: Vec::new(),
            drift,
            records: Vec::new(),
            total_bytes: 0,
            training_runs: 0,
            last_training_seconds: 0.0,
            maintenance_runs: 0,
            last_maintenance_seconds: 0.0,
            storage: None,
            generation: 0,
        }
    }

    /// Create an empty **durable** topic backed by the storage tier in `dir`
    /// (standalone flavour: the persisted meta carries no tenant key).
    pub fn durable(config: TopicConfig, dir: &Path, storage: StorageConfig) -> io::Result<Self> {
        let topic_key = config.name.clone();
        Self::durable_keyed("", &topic_key, config, dir, storage)
    }

    /// Create an empty durable topic whose persisted meta records the tenant/topic
    /// keys (used by [`ServiceManager`](crate::manager::ServiceManager) so recovery
    /// can re-key the fleet).
    pub fn durable_keyed(
        tenant: &str,
        topic: &str,
        config: TopicConfig,
        dir: &Path,
        storage: StorageConfig,
    ) -> io::Result<Self> {
        let meta = TopicMeta::from_config(tenant, topic, &config);
        let storage = TopicStorage::create(dir, storage, &meta)?;
        let mut created = LogTopic::new(config);
        created.store.attach_sink(storage.lineage_sink());
        created.generation = storage.generation();
        created.storage = Some(storage);
        Ok(created)
    }

    /// Reopen a durable topic from its storage directory, replaying WAL + segments +
    /// event log on top of the epoch's base model snapshot from the lineage log.
    ///
    /// The replay is **deterministic and match-free**: the postings index loads
    /// straight from the segments' columnar posting lists, flagged records re-execute
    /// the deterministic temporary-template insertion they performed live (no
    /// matching — the flag and the resulting node id are on disk), and delta events
    /// re-apply the stored [`ModelDelta`]s. A recovered topic therefore answers every
    /// query byte-identically to one that never restarted — and never retrains on
    /// open.
    pub fn open(dir: &Path, storage_config: StorageConfig) -> io::Result<Self> {
        let (storage, recovered) = TopicStorage::open(dir, storage_config)?;
        let invalid = |msg: String| io::Error::new(io::ErrorKind::InvalidData, msg);
        let config = recovered.meta.to_config();
        let mut topic = LogTopic::new(config);
        topic.store = ModelStore::restore(&recovered.lineage);
        topic.store.attach_sink(storage.lineage_sink());

        let manifest = &recovered.manifest;
        let first_live = manifest.first_live_seq;

        // Epoch base: the full-retrain snapshot the live records replay on top of.
        let mut model = if manifest.epoch_base_version > 0 {
            topic
                .store
                .load(manifest.epoch_base_version)
                .ok_or_else(|| {
                    invalid(format!(
                        "epoch base snapshot v{} unreconstructable",
                        manifest.epoch_base_version
                    ))
                })?
        } else {
            ParserModel::new()
        };
        let mut model_version = manifest.model_version_at_epoch;

        // Postings load straight from the segments' columnar posting lists.
        let mut index = QueryIndex::new();
        index.ensure_nodes(model.len());
        for segment in &recovered.segments {
            let base = (segment.first_seq - first_live) as usize;
            for (node, locals) in &segment.postings {
                index.extend_posting(NodeId(*node as usize), base, locals);
            }
        }

        // Delta payloads by version, for event replay.
        let mut delta_of: std::collections::HashMap<u64, &str> = std::collections::HashMap::new();
        for entry in &recovered.lineage {
            delta_of.insert(entry.info.version, entry.payload.as_str());
        }

        let mut records: Vec<StoredRecord> = Vec::new();
        let mut training_buffer: Vec<String> = Vec::new();
        let mut unmatched_buffer: Vec<String> = Vec::new();
        let mut total_bytes = manifest.bytes_dropped;
        let mut maintenance_runs = manifest.maintenance_runs_at_epoch;
        let mut last_maintenance_seconds = manifest.last_maintenance_seconds_at_epoch;
        let mut last_reset_seq = manifest.epoch_start_seq.max(first_live);
        let buffer_cap = topic.config.training_buffer;

        let mut apply_event = |event: &DeltaEvent,
                               model: &mut ParserModel,
                               model_version: &mut u64,
                               records: &mut Vec<StoredRecord>,
                               index: &mut QueryIndex,
                               unmatched_buffer: &mut Vec<String>|
         -> io::Result<()> {
            let payload = delta_of.get(&event.version).ok_or_else(|| {
                invalid(format!(
                    "delta event v{} missing from lineage",
                    event.version
                ))
            })?;
            let delta: ModelDelta = serde_json::from_str(payload)
                .map_err(|e| invalid(format!("delta v{} payload: {e}", event.version)))?;
            *model = apply_delta(model, &delta);
            index.ensure_nodes(model.len());
            *model_version += 1;
            // The maintenance run consumed the unmatched buffer.
            unmatched_buffer.clear();
            // Re-apply the post-delta re-match moves (records dropped by
            // retention since the event are simply gone).
            let moves: Vec<(usize, Option<NodeId>, Option<NodeId>)> = event
                .moves
                .iter()
                .filter(|mv| mv.seq >= first_live)
                .map(|mv| ((mv.seq - first_live) as usize, mv.old, mv.new))
                .collect();
            for &(idx, _, new) in &moves {
                records[idx].template = new;
            }
            index.reassign(&moves);
            maintenance_runs += 1;
            last_maintenance_seconds = event.elapsed_seconds;
            last_reset_seq = event.at_seq;
            Ok(())
        };

        let mut events = recovered.events.iter().peekable();
        let all_records = recovered
            .segments
            .iter()
            .flat_map(|s| s.records.iter())
            .chain(recovered.wal_tail.iter());
        for rec in all_records {
            while events.peek().map(|e| e.at_seq <= rec.seq).unwrap_or(false) {
                let event = events.next().expect("peeked event exists");
                apply_event(
                    event,
                    &mut model,
                    &mut model_version,
                    &mut records,
                    &mut index,
                    &mut unmatched_buffer,
                )?;
            }
            total_bytes += rec.accounted_bytes();
            if rec.unmatched {
                if unmatched_buffer.len() < buffer_cap {
                    unmatched_buffer.push(rec.text.clone());
                }
                if !model.is_empty() {
                    // Re-execute the deterministic temporary insertion the live
                    // topic performed; the resulting node id must reproduce the
                    // stored assignment or the replay diverged.
                    let tokens = topic.preprocessor.tokens_of(&rec.text);
                    let id = model.insert_temporary(&tokens);
                    model_version += 1;
                    index.ensure_nodes(model.len());
                    if rec.node != Some(id) {
                        return Err(invalid(format!(
                            "replay diverged at seq {}: temporary {:?} != stored {:?}",
                            rec.seq,
                            Some(id),
                            rec.node
                        )));
                    }
                }
            }
            if rec.seq >= manifest.epoch_start_seq && training_buffer.len() < buffer_cap {
                training_buffer.push(rec.text.clone());
            }
            records.push(StoredRecord {
                record: rec.text.clone(),
                template: rec.node,
            });
            // Segment records arrived through their postings columns; only the
            // WAL tail (never sealed) assigns here.
            if rec.seq >= manifest.sealed_end_seq() {
                if let Some(node) = rec.node {
                    index.assign(node, records.len() - 1);
                }
            }
        }
        // Trailing events (a maintenance run after the last stored record).
        for event in events {
            apply_event(
                event,
                &mut model,
                &mut model_version,
                &mut records,
                &mut index,
                &mut unmatched_buffer,
            )?;
        }

        let next_seq = storage.next_seq();
        topic.model = Arc::new(model);
        topic.ladder = Arc::new(SaturationLadder::build(&topic.model));
        topic.index = Arc::new(index);
        topic.model_version = model_version;
        topic.records = records;
        topic.total_bytes = total_bytes;
        topic.training_buffer = training_buffer;
        topic.unmatched_buffer = unmatched_buffer;
        topic.training_runs = manifest.training_runs;
        topic.last_training_seconds = manifest.last_training_seconds;
        topic.maintenance_runs = maintenance_runs;
        topic.last_maintenance_seconds = last_maintenance_seconds;
        // Trigger state: trained (if a model exists), with the volume counter
        // covering the records since the last training/maintenance reset.
        if !topic.model.is_empty() {
            topic.trigger.mark_trained(Instant::now());
        }
        topic
            .trigger
            .observe(next_seq - last_reset_seq.min(next_seq));
        topic.generation = storage.generation();
        topic.storage = Some(storage);
        Ok(topic)
    }

    /// The topic name.
    pub fn name(&self) -> &str {
        &self.config.name
    }

    /// The topic's configuration (as provisioned at creation).
    pub fn config(&self) -> &TopicConfig {
        &self.config
    }

    /// The current model.
    pub fn model(&self) -> &ParserModel {
        &self.model
    }

    /// The stored records (raw text + matched template id).
    pub fn records(&self) -> &[StoredRecord] {
        &self.records
    }

    /// The model snapshot store.
    pub fn store(&self) -> &ModelStore {
        &self.store
    }

    /// The current model version: bumped on every model change (training run,
    /// incremental delta, temporary-template insertion). Part of the query cache key,
    /// so stale cached results can never be served after a hot swap.
    pub fn model_version(&self) -> u64 {
        self.model_version
    }

    /// `(hits, misses)` of the topic's query cache since creation.
    pub fn query_cache_stats(&self) -> (u64, u64) {
        self.query_cache.stats()
    }

    /// The monotonic topic generation: bumped on recovery, TTL retention and
    /// compaction (always 0 for in-memory topics). Part of the query-cache key.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The durable storage tier, when this topic was created via
    /// [`LogTopic::durable`] or reopened via [`LogTopic::open`].
    pub fn storage(&self) -> Option<&TopicStorage> {
        self.storage.as_ref()
    }

    /// The precomputed saturation ladder (kept in lockstep with the model).
    pub(crate) fn ladder(&self) -> &SaturationLadder {
        &self.ladder
    }

    /// The per-node postings index.
    pub(crate) fn query_index(&self) -> &QueryIndex {
        &self.index
    }

    /// The topic's query cache.
    pub(crate) fn query_cache(&self) -> &QueryCache {
        &self.query_cache
    }

    /// The topic's preprocessor (masking + tokenization), shared with the
    /// ingest path so query-time variable extraction agrees with sealing.
    pub(crate) fn preprocessor(&self) -> &Preprocessor {
        &self.preprocessor
    }

    /// Sequence number of `records()[0]`: `first_live_seq` for durable topics
    /// (retention may have dropped a prefix), 0 for in-memory topics.
    pub fn first_record_seq(&self) -> u64 {
        self.storage
            .as_ref()
            .map(|storage| storage.first_live_seq())
            .unwrap_or(0)
    }

    /// Assemble record access for a plan's record-level predicates, push-down
    /// included: `None` when the plan is node-only (postings alone answer it),
    /// otherwise the record store plus skip ranges for segments the storage
    /// summaries proved cannot match.
    pub(crate) fn record_access(&self, plan: &QueryPlan) -> Option<RecordAccess<'_>> {
        if plan.is_node_only() {
            return None;
        }
        let first_seq = self.first_record_seq();
        Some(RecordAccess {
            records: &self.records,
            preprocessor: &self.preprocessor,
            first_seq,
            skip: self.prune_ranges(plan, first_seq),
        })
    }

    /// Half-open record-index ranges proven non-matching by segment summaries
    /// (sorted and disjoint because segments are ordered and non-overlapping;
    /// empty for in-memory topics). A segment is skipped when a required
    /// time-window conjunct is disjoint from its sequence range (always
    /// sound), or when a required variable-equals value is provably absent
    /// from its variable column — the latter only for segments sealed at or
    /// after the latest incremental delta
    /// ([`TopicStorage::last_delta_seq`]), since deltas can re-match sealed
    /// records or patch node templates and thereby change what query-time
    /// extraction returns. WAL-tail and in-memory records are never pruned.
    fn prune_ranges(&self, plan: &QueryPlan, first_seq: u64) -> Vec<(usize, usize)> {
        let Some(storage) = self.storage.as_ref() else {
            return Vec::new();
        };
        let required_values = plan.required_variable_equals();
        let window = plan.required_window();
        if required_values.is_empty() && window.is_none() {
            return Vec::new();
        }
        let last_delta_seq = storage.last_delta_seq();
        let mut skip = Vec::new();
        for (meta, summary) in storage.segment_summaries() {
            debug_assert!(meta.first_seq >= first_seq);
            let start = (meta.first_seq - first_seq) as usize;
            let end = start + meta.records as usize;
            let seg_end_seq = meta.first_seq + meta.records; // half-open, like TimeWindow
            let window_prunes = window.is_some_and(|(win_start, win_end)| {
                seg_end_seq <= win_start || meta.first_seq >= win_end
            });
            let summary_fresh = meta.first_seq >= last_delta_seq;
            let value_prunes = summary_fresh
                && required_values
                    .iter()
                    .any(|value| !summary.may_contain(value));
            if window_prunes || value_prunes {
                skip.push((start, end));
            }
        }
        skip
    }

    /// A cheap shared handle to the saturation ladder (for query snapshots).
    pub(crate) fn ladder_snapshot(&self) -> Arc<SaturationLadder> {
        Arc::clone(&self.ladder)
    }

    /// A cheap shared handle to the postings index (for query snapshots).
    pub(crate) fn query_index_snapshot(&self) -> Arc<QueryIndex> {
        Arc::clone(&self.index)
    }

    /// The drift detector, when the topic runs incremental maintenance.
    pub fn drift_detector(&self) -> Option<&DriftDetector> {
        self.drift.as_ref()
    }

    /// Number of unmatched records pending incremental absorption.
    pub fn unmatched_pending(&self) -> usize {
        self.unmatched_buffer.len()
    }

    /// Ingest a batch of records: match them online, buffer them for training, and run a
    /// training cycle (or, under [`MaintenancePolicy::Incremental`], an incremental
    /// maintenance run) if the trigger fires or drift is detected.
    pub fn ingest<S: AsRef<str> + Sync>(&mut self, batch: &[S]) -> IngestOutcome {
        let mut outcome = IngestOutcome::default();
        // Online matching against the current model (template ids must be available
        // before the records are written to storage).
        let matches: Vec<(Option<NodeId>, f64)> = if self.model.is_empty() {
            vec![(None, 0.0); batch.len()]
        } else {
            let compiled = self.compiled_snapshot();
            match_ids_batch(
                &self.model,
                compiled.as_deref(),
                &self.preprocessor,
                batch,
                self.config.train.parallelism,
            )
        };
        for (record, (matched, saturation)) in batch.iter().zip(&matches) {
            self.apply_record(record.as_ref().to_owned(), *matched, &mut outcome);
            if let Some(detector) = &mut self.drift {
                // The batch entry point has no shard routing; observe on shard 0.
                detector.observe(0, matched.is_some(), *saturation);
            }
        }
        self.trigger.observe(batch.len() as u64);
        self.maintain(&mut outcome);
        self.commit_storage();
        outcome
    }

    /// Storage commit point: seal full segments out of the WAL and fsync every dirty
    /// log in one batch. Called at the end of each ingest call and at streaming
    /// checkpoints. No-op for in-memory topics.
    fn commit_storage(&mut self) {
        if self.storage.is_none() {
            return;
        }
        let model = Arc::clone(&self.model);
        let preprocessor = Arc::clone(&self.preprocessor);
        let storage = self.storage.as_mut().expect("storage just checked");
        storage
            .commit(|rec| extract_variables(&model, &preprocessor, rec))
            .expect("storage commit");
    }

    /// TTL retention + segment compaction, in one pass. Expired segments outside the
    /// training window (and holding no replay-relevant flagged records) are dropped
    /// oldest-first, the in-memory record prefix is drained in lockstep, and adjacent
    /// under-filled segments are merged. Any change bumps the topic generation and
    /// clears the query cache. No-op for in-memory topics.
    pub fn run_storage_maintenance(&mut self) -> RetentionOutcome {
        let Some(storage) = &mut self.storage else {
            return RetentionOutcome::default();
        };
        let cap = self.config.training_buffer as u64;
        let outcome = storage.retention_pass(cap).expect("retention pass");
        let merges = storage.compaction_pass().expect("compaction pass");
        if outcome.dropped_records > 0 {
            self.records.drain(..outcome.dropped_records as usize);
            // Every record index shifted: rebuild the postings from the survivors.
            self.index = Arc::new(QueryIndex::rebuild(&self.records, self.model.len()));
        }
        if outcome.dropped_segments > 0 || merges > 0 {
            self.generation = storage.generation();
            self.query_cache.clear();
        }
        outcome
    }

    /// Run whatever maintenance the policy calls for right now: initial or full
    /// training under [`MaintenancePolicy::FullRetrain`]; initial training or delta
    /// absorption under [`MaintenancePolicy::Incremental`].
    fn maintain(&mut self, outcome: &mut IngestOutcome) {
        let decision = self.trigger.decide(Instant::now());
        let incremental = matches!(
            self.config.maintenance,
            MaintenancePolicy::Incremental { .. }
        );
        if !incremental {
            if decision.should_train() {
                self.run_training();
                outcome.trained = true;
            }
            return;
        }
        if decision == TriggerDecision::InitialTraining {
            // The first model must be trained from scratch — there is nothing to
            // fold a delta into yet.
            self.run_training();
            outcome.trained = true;
            return;
        }
        let drifting = self
            .drift
            .as_ref()
            .map(|d| d.assess().is_drifting())
            .unwrap_or(false);
        if (decision.should_train() || drifting) && self.run_incremental_maintenance() {
            outcome.maintained += 1;
        }
    }

    /// Apply one matched record to the topic state: count it, insert a temporary
    /// template when unmatched (§3), account bytes, and push it into the store and the
    /// training buffer. Shared by the batch and streaming ingestion paths so the
    /// topic-state invariants live in exactly one place.
    fn apply_record(
        &mut self,
        record: String,
        matched: Option<NodeId>,
        outcome: &mut IngestOutcome,
    ) {
        let unmatched_at_ingest = matched.is_none();
        let template = match matched {
            Some(id) => {
                outcome.matched += 1;
                Some(id)
            }
            None => {
                outcome.unmatched += 1;
                if self.unmatched_buffer.len() < self.config.training_buffer {
                    self.unmatched_buffer.push(record.clone());
                }
                // Rare/unseen logs become temporary templates so identical records
                // match until the next training cycle absorbs them (§3). With no model
                // at all there is nothing to insert into yet.
                if self.model.is_empty() {
                    None
                } else {
                    let tokens = self.preprocessor.tokens_of(&record);
                    let id = Arc::make_mut(&mut self.model).insert_temporary(&tokens);
                    // The ladder and the cache key track every model change;
                    // the compiled automaton catches up at the next match batch.
                    Arc::make_mut(&mut self.ladder).push_root(&self.model, id);
                    self.model_version += 1;
                    self.compiled_stale = true;
                    Some(id)
                }
            }
        };
        if let Some(storage) = &mut self.storage {
            // WAL first: the flag is the ingest-time outcome (replay re-executes the
            // temporary insertion), the node is the final assignment.
            storage
                .append_record(unmatched_at_ingest, template, &record)
                .expect("WAL append");
        }
        self.total_bytes += record.len() as u64 + 1;
        if self.training_buffer.len() < self.config.training_buffer {
            self.training_buffer.push(record.clone());
        }
        self.records.push(StoredRecord { record, template });
        if let Some(node) = template {
            // Postings grow in ingest order, so per-node index lists stay sorted.
            Arc::make_mut(&mut self.index).assign(node, self.records.len() - 1);
        }
    }

    /// Whether the trigger would start training now (exposed for tests and schedulers).
    pub fn pending_trigger(&self) -> TriggerDecision {
        self.trigger.decide(Instant::now())
    }

    /// A cheap shared snapshot of the current model (used to build a
    /// [`StreamIngestor`]; the snapshot stays valid while training replaces the
    /// topic's own copy).
    pub fn model_snapshot(&self) -> Arc<ParserModel> {
        Arc::clone(&self.model)
    }

    /// The compiled automaton snapshot paired with the current model, refreshed
    /// first if the model changed since the last compile. `None` under
    /// [`MatchEngine::TreeWalk`] or while no model exists — callers fall back
    /// to the tree walker, which is behaviourally identical.
    pub fn compiled_snapshot(&mut self) -> Option<Arc<CompiledMatcher>> {
        if self.config.match_engine == MatchEngine::TreeWalk || self.model.is_empty() {
            return None;
        }
        if self.compiled_stale || self.compiled.is_none() {
            let next = match &self.compiled {
                // Patch the previous snapshot: unchanged templates keep their
                // trie paths, only the diff is re-inserted/pruned.
                Some(previous) => previous.refreshed(&self.model),
                None => CompiledMatcher::compile(&self.model),
            };
            self.compiled = Some(Arc::new(next));
            self.compiled_stale = false;
        }
        self.compiled.clone()
    }

    /// The configured matching engine.
    pub fn match_engine(&self) -> MatchEngine {
        self.config.match_engine
    }

    /// A cheap shared handle to the topic's preprocessing pipeline.
    pub fn preprocessor_snapshot(&self) -> Arc<Preprocessor> {
        Arc::clone(&self.preprocessor)
    }

    /// Ingest a stream of records through the sharded streaming engine
    /// ([`StreamIngestor`]): records are routed to shard buffers (round-robin or by
    /// first-token key, per [`IngestConfig::routing`]), batched by size/time, matched
    /// in parallel against an immutable snapshot of the current model, and then
    /// applied to the topic exactly as [`LogTopic::ingest`] would — unmatched records
    /// become temporary templates, everything lands in the store and the training
    /// buffer, and the volume/time trigger may start a training run.
    ///
    /// Under [`MaintenancePolicy::Incremental`], completed records are additionally
    /// harvested *while the stream runs* (every `check_interval` pushed records, in
    /// arrival order): they feed the per-shard drift detector, and when drift or a
    /// volume trigger fires, the unmatched buffer is folded into the model as a delta
    /// and the refreshed snapshot is hot-swapped into the running engine at the next
    /// shard-flush boundary — ingestion never pauses for a full retrain.
    ///
    /// Falls back to the batch path when no model exists yet (the first training run
    /// needs buffered records, not matching throughput).
    pub fn ingest_stream<I>(&mut self, records: I, config: &IngestConfig) -> StreamOutcome
    where
        I: IntoIterator<Item = String>,
    {
        let (outcome, rejected) = self.stream_inner(records, config, None);
        debug_assert!(rejected.is_empty(), "unbounded stream never rejects");
        outcome
    }

    /// Bounded-back-pressure variant of [`LogTopic::ingest_stream`]: when the pool's
    /// `max_in_flight` stays saturated past `wait` for some record, the stream stops
    /// there instead of parking indefinitely. The already-accepted prefix is applied
    /// (and committed to storage) exactly as the unbounded path would, and the
    /// rejected record plus the entire un-pushed remainder ride back in
    /// [`StreamOverloaded`] so the caller can retry or shed them.
    pub fn ingest_stream_bounded<I>(
        &mut self,
        records: I,
        config: &IngestConfig,
        wait: Duration,
    ) -> Result<StreamOutcome, Box<StreamOverloaded>>
    where
        I: IntoIterator<Item = String>,
    {
        let (outcome, rejected) = self.stream_inner(records, config, Some(wait));
        if rejected.is_empty() {
            Ok(outcome)
        } else {
            Err(Box::new(StreamOverloaded { outcome, rejected }))
        }
    }

    fn stream_inner<I>(
        &mut self,
        records: I,
        config: &IngestConfig,
        wait: Option<Duration>,
    ) -> (StreamOutcome, Vec<String>)
    where
        I: IntoIterator<Item = String>,
    {
        if self.model.is_empty() {
            let batch: Vec<String> = records.into_iter().collect();
            let outcome = self.ingest(&batch);
            return (
                StreamOutcome {
                    outcome,
                    stats: IngestStats::default(),
                },
                Vec::new(),
            );
        }
        let check_interval = match &self.config.maintenance {
            MaintenancePolicy::FullRetrain => None,
            MaintenancePolicy::Incremental { check_interval, .. } => Some((*check_interval).max(1)),
        };
        let mut ingestor = StreamIngestor::new(
            self.model_snapshot(),
            self.preprocessor_snapshot(),
            config.clone(),
        );
        if let Some(compiled) = self.compiled_snapshot() {
            ingestor = ingestor.with_compiled(compiled);
        }
        let mut outcome = IngestOutcome::default();
        let mut since_check = 0usize;
        let mut swapped = false;
        let mut rejected: Vec<String> = Vec::new();
        let mut records = records.into_iter();
        for record in records.by_ref() {
            match wait {
                None => ingestor.push_routed(record),
                Some(bound) => {
                    if let Err(overloaded) = ingestor.push_bounded(record, bound) {
                        // Shed: keep the consistent accepted prefix, hand the
                        // rejected record and the un-pushed tail back verbatim.
                        rejected.push(overloaded.record);
                        rejected.extend(records);
                        break;
                    }
                }
            }
            if let Some(interval) = check_interval {
                since_check += 1;
                if since_check >= interval {
                    since_check = 0;
                    // Deterministic checkpoint: flush every shard and wait for
                    // all in-flight batches, so the drift detector always sees
                    // the exact pushed prefix. An opportunistic (non-blocking)
                    // harvest here made maintenance timing — and therefore the
                    // patched model — depend on worker scheduling, which broke
                    // run-to-run byte-identity of the incremental path.
                    ingestor.sync();
                    let drained = ingestor.drain_completed();
                    self.apply_stream_records(drained, swapped, &mut outcome);
                    let maintained_before = outcome.maintained;
                    self.maintain(&mut outcome);
                    // Durability tracks the checkpoint: the drained records and any
                    // maintenance event land on disk before the stream resumes.
                    self.commit_storage();
                    if outcome.maintained > maintained_before {
                        // Roll the patched model and its recompiled automaton
                        // into the running stream as one consistent snapshot
                        // pair; batches flushed from here on match against it.
                        let compiled = self.compiled_snapshot();
                        ingestor.swap_model(self.model_snapshot(), compiled);
                        swapped = true;
                    }
                }
            }
        }
        let report = ingestor.finish();
        if let Some(storage) = &mut self.storage {
            // Stamped onto the segments the trailing commit seals (always finite:
            // the empty-report path clamps to 0.0).
            storage.set_ingest_throughput(report.records_per_second());
        }
        // The snapshot Arc has been dropped with the engine, so temporary-template
        // insertion inside apply_record does not clone the model.
        self.apply_stream_records(report.records, swapped, &mut outcome);
        self.maintain(&mut outcome);
        self.commit_storage();
        (
            StreamOutcome {
                outcome,
                stats: report.stats,
            },
            rejected,
        )
    }

    /// Apply a chunk of completed streaming records (already in arrival order) to the
    /// topic state, feeding the drift detector with per-shard outcomes.
    ///
    /// `rematch_stale` is set once a maintenance run hot-swapped the model
    /// mid-stream: records that raced through the pool against the *pre-swap*
    /// snapshot and came back unmatched — or matched to a temporary template the
    /// maintenance run has since retired — are re-matched against the current model
    /// before being applied. The maintenance run usually just absorbed their
    /// pattern; keeping the stale outcome would insert duplicate temporaries (and
    /// re-trigger maintenance on already-absorbed drift) or store records pointing
    /// at retired templates, which would then leak into query results.
    fn apply_stream_records(
        &mut self,
        records: Vec<MatchedRecord>,
        rematch_stale: bool,
        outcome: &mut IngestOutcome,
    ) {
        let count = records.len() as u64;
        for matched in records {
            let stale = match matched.node {
                // A pre-swap match can point at a node the delta retired (absorbed
                // temporaries keep their slot but must not be stored against).
                Some(id) => rematch_stale && self.model.node(id).map(|n| n.retired).unwrap_or(true),
                None => rematch_stale,
            };
            let (node, saturation) = if stale {
                let tokens = self.preprocessor.tokens_of(&matched.record);
                match bytebrain::matcher::match_tokens(&self.model, &tokens) {
                    Some(id) => (Some(id), self.model.nodes[id.0].saturation),
                    None => (None, 0.0),
                }
            } else {
                match matched.node {
                    Some(id) => (Some(id), matched.saturation),
                    None => (None, 0.0),
                }
            };
            self.apply_record(matched.record, node, outcome);
            if let Some(detector) = &mut self.drift {
                detector.observe(matched.shard, node.is_some(), saturation);
            }
        }
        self.trigger.observe(count);
    }

    /// Force a training cycle on the buffered records.
    pub fn run_training(&mut self) {
        if self.training_buffer.is_empty() {
            return;
        }
        let started = Instant::now();
        let outcome = train(&self.training_buffer, &self.config.train);
        let new_model = outcome.model;
        self.model = if self.model.is_empty() {
            Arc::new(new_model)
        } else {
            Arc::new(merge_models(
                &self.model,
                &new_model,
                self.config.merge_threshold,
            ))
        };
        self.last_training_seconds = started.elapsed().as_secs_f64();
        self.training_runs += 1;
        self.trigger.mark_trained(Instant::now());
        self.store.save(&self.model);
        self.training_buffer.clear();
        // The training buffer contained every unmatched record, so the retrain absorbed
        // them; drift windows restart against the refreshed model.
        self.unmatched_buffer.clear();
        if let Some(detector) = &mut self.drift {
            detector.reset_windows();
        }
        // The tree was renumbered wholesale: the previous compiled snapshot is
        // garbage and the next compile starts from scratch.
        self.compiled = None;
        self.compiled_stale = false;
        // Re-match every stored record: node ids refer to the model that existed at ingest
        // time, and training (with merging) renumbers the tree. The production system
        // stores template ids alongside a model version and remaps lazily at query time;
        // re-matching eagerly exercises the same code path at laptop scale.
        self.rematch_all();
        // The tree was renumbered wholesale: rebuild the query state from scratch.
        self.ladder = Arc::new(SaturationLadder::build(&self.model));
        self.index = Arc::new(QueryIndex::rebuild(&self.records, self.model.len()));
        self.model_version += 1;
        self.query_cache.clear();
        // Epoch boundary: rewrite every live record as baseline segments carrying
        // the post-retrain assignments, truncate the WAL and event log, and anchor
        // the manifest at the snapshot just saved — restart replays from here.
        if let Some(storage) = &mut self.storage {
            let base_version = self
                .store
                .latest_info()
                .map(|info| info.version)
                .unwrap_or(0);
            let model = Arc::clone(&self.model);
            let preprocessor = Arc::clone(&self.preprocessor);
            storage
                .checkpoint_retrain(
                    &self.records,
                    base_version,
                    self.model_version,
                    self.maintenance_runs,
                    self.last_maintenance_seconds,
                    self.training_runs,
                    self.last_training_seconds,
                    |rec| extract_variables(&model, &preprocessor, rec),
                )
                .expect("storage retrain checkpoint");
        }
    }

    /// Fold the unmatched buffer into the current model as an incremental delta
    /// ([`train_delta`] + [`apply_delta`]): existing node ids stay valid — no stored
    /// record needs re-matching — absorbed temporaries are retired, and the delta is
    /// persisted to the model store with its lineage. Returns `true` when a delta was
    /// applied.
    pub fn run_incremental_maintenance(&mut self) -> bool {
        if self.model.is_empty() {
            return false;
        }
        if self.unmatched_buffer.is_empty() && self.model.temporary_count() == 0 {
            // Nothing to absorb; restart the trigger clock so the check does not spin.
            self.trigger.mark_maintained(Instant::now());
            if let Some(detector) = &mut self.drift {
                detector.reset_windows();
            }
            return false;
        }
        let started = Instant::now();
        let batch = std::mem::take(&mut self.unmatched_buffer);
        let delta = train_delta(
            &self.model,
            &batch,
            &self.config.train,
            self.config.merge_threshold,
        );
        self.model = Arc::new(apply_delta(&self.model, &delta));
        // Patch the ladder in place — only the subtrees the delta touched recompute —
        // and invalidate cached query results before the swapped model can serve.
        Arc::make_mut(&mut self.ladder).apply_delta(&self.model, &delta);
        Arc::make_mut(&mut self.index).ensure_nodes(self.model.len());
        // Node ids stayed stable, so the automaton is patched rather than
        // rebuilt: the next compiled_snapshot() folds the delta into the trie.
        self.compiled_stale = true;
        self.model_version += 1;
        self.query_cache.clear();
        self.store.save_delta(&delta, &self.model);
        self.last_maintenance_seconds = started.elapsed().as_secs_f64();
        self.maintenance_runs += 1;
        self.trigger.mark_maintained(Instant::now());
        if let Some(detector) = &mut self.drift {
            detector.reset_windows();
        }
        // Only records that pointed at a now-retired temporary (or matched nothing)
        // need a fresh assignment; everyone else's node id is still valid.
        let moves = self.rematch_retired();
        if let Some(storage) = &mut self.storage {
            // One event per maintenance run: the delta's snapshot version (its
            // payload is in the lineage log), the sequence position it fired at,
            // and the re-match moves — everything replay needs to fold the delta
            // back in without matching a single line.
            let version = self
                .store
                .latest_info()
                .map(|info| info.version)
                .unwrap_or(0);
            let first_live = storage.first_live_seq();
            let event = DeltaEvent {
                version,
                at_seq: storage.next_seq(),
                elapsed_seconds: self.last_maintenance_seconds,
                moves: moves
                    .iter()
                    .map(|&(idx, old, new)| RecordMove {
                        seq: first_live + idx as u64,
                        old,
                        new,
                    })
                    .collect(),
            };
            storage.append_delta_event(&event).expect("event append");
        }
        true
    }

    /// Re-assign template ids for every stored record against the current model.
    fn rematch_all(&mut self) {
        if self.records.is_empty() || self.model.is_empty() {
            return;
        }
        let texts: Vec<String> = self.records.iter().map(|r| r.record.clone()).collect();
        let compiled = self.compiled_snapshot();
        let results = match_ids_batch(
            &self.model,
            compiled.as_deref(),
            &self.preprocessor,
            &texts,
            self.config.train.parallelism,
        );
        for (stored, (node, _)) in self.records.iter_mut().zip(results) {
            stored.template = node;
        }
    }

    /// Re-assign template ids only for stored records that are unassigned or point at
    /// a retired node — the cheap post-delta fix-up (everything else kept its id).
    /// Returns the `(record index, old, new)` moves (the storage tier logs them as
    /// part of the maintenance event).
    fn rematch_retired(&mut self) -> Vec<(usize, Option<NodeId>, Option<NodeId>)> {
        if self.records.is_empty() || self.model.is_empty() {
            return Vec::new();
        }
        let needs_rematch: Vec<usize> = self
            .records
            .iter()
            .enumerate()
            .filter(|(_, stored)| match stored.template {
                None => true,
                Some(id) => self.model.node(id).map(|node| node.retired).unwrap_or(true),
            })
            .map(|(idx, _)| idx)
            .collect();
        if needs_rematch.is_empty() {
            return Vec::new();
        }
        let texts: Vec<String> = needs_rematch
            .iter()
            .map(|&idx| self.records[idx].record.clone())
            .collect();
        let compiled = self.compiled_snapshot();
        let results = match_ids_batch(
            &self.model,
            compiled.as_deref(),
            &self.preprocessor,
            &texts,
            self.config.train.parallelism,
        );
        let mut moves = Vec::with_capacity(needs_rematch.len());
        for (&idx, (node, _)) in needs_rematch.iter().zip(results) {
            let old = self.records[idx].template;
            self.records[idx].template = node;
            moves.push((idx, old, node));
        }
        Arc::make_mut(&mut self.index).reassign(&moves);
        moves
    }

    /// Current topic statistics.
    pub fn stats(&self) -> TopicStats {
        TopicStats {
            total_records: self.records.len() as u64,
            total_bytes: self.total_bytes,
            templates: self.model.len() - self.model.retired_count(),
            model_size_bytes: self.model.approx_size_bytes(),
            training_runs: self.training_runs,
            last_training_seconds: self.last_training_seconds,
            maintenance_runs: self.maintenance_runs,
            last_maintenance_seconds: self.last_maintenance_seconds,
        }
    }
}

/// Best-effort variable extraction: the tokens sitting at the wildcard positions of a
/// record's assigned template. Empty when the record has no assignment, the node is
/// gone, or the token count disagrees with the template (replay correctness never
/// depends on this column — it is query metadata). The same definition serves segment
/// sealing and query-time predicate evaluation, so `VariableEquals` semantics cannot
/// drift between the planned path and the storage summaries.
pub(crate) fn variables_of(
    model: &ParserModel,
    preprocessor: &Preprocessor,
    text: &str,
    node: Option<NodeId>,
) -> Vec<String> {
    let Some(id) = node else {
        return Vec::new();
    };
    let Some(node) = model.node(id) else {
        return Vec::new();
    };
    let tokens = preprocessor.tokens_of(text);
    if tokens.len() != node.template.len() {
        return Vec::new();
    }
    tokens
        .into_iter()
        .zip(&node.template)
        .filter(|(_, slot)| matches!(slot, TemplateToken::Wildcard))
        .map(|(token, _)| token)
        .collect()
}

/// [`variables_of`] over a WAL record about to be sealed into a segment.
fn extract_variables(
    model: &ParserModel,
    preprocessor: &Preprocessor,
    rec: &WalRecord,
) -> Vec<String> {
    variables_of(model, preprocessor, &rec.text, rec.node)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn web_access_batch(offset: usize, n: usize) -> Vec<String> {
        (0..n)
            .map(|i| {
                let code = [200, 200, 200, 404, 500][(offset + i) % 5];
                format!(
                    "GET /api/v1/items/{} HTTP/1.1 status {} bytes {} latency {}ms",
                    (offset + i) % 50,
                    code,
                    100 + (offset + i) % 900,
                    1 + (offset + i) % 40
                )
            })
            .collect()
    }

    fn novel_batch(offset: usize, n: usize) -> Vec<String> {
        (0..n)
            .map(|i| {
                format!(
                    "disk scrubber pass {} repaired sector {} on volume vol-{}",
                    (offset + i) % 7,
                    offset + i,
                    (offset + i) % 3
                )
            })
            .collect()
    }

    fn small_topic(volume_threshold: u64) -> LogTopic {
        LogTopic::new(TopicConfig::new("web-access").with_volume_threshold(volume_threshold))
    }

    fn incremental_topic(volume_threshold: u64) -> LogTopic {
        LogTopic::new(
            TopicConfig::new("web-access-inc")
                .with_volume_threshold(volume_threshold)
                .with_incremental_maintenance(
                    DriftConfig::default()
                        .with_window(200)
                        .with_min_samples(50)
                        .with_max_unmatched_rate(0.3),
                ),
        )
    }

    #[test]
    fn first_ingest_triggers_initial_training() {
        let mut topic = small_topic(1_000_000);
        let outcome = topic.ingest(&web_access_batch(0, 200));
        assert!(
            outcome.trained,
            "initial training must run on the first batch"
        );
        assert!(topic.stats().templates > 0);
        assert_eq!(topic.stats().training_runs, 1);
    }

    #[test]
    fn records_receive_template_ids_after_training() {
        let mut topic = small_topic(1_000_000);
        topic.ingest(&web_access_batch(0, 300));
        // After initial training, previously-unassigned records are backfilled.
        let assigned = topic
            .records()
            .iter()
            .filter(|r| r.template.is_some())
            .count();
        assert_eq!(assigned, topic.records().len());
    }

    #[test]
    fn subsequent_batches_match_online() {
        let mut topic = small_topic(1_000_000);
        topic.ingest(&web_access_batch(0, 300));
        let outcome = topic.ingest(&web_access_batch(300, 100));
        assert_eq!(outcome.matched + outcome.unmatched, 100);
        assert!(
            outcome.matched > 90,
            "most records of the same shape should match online: {outcome:?}"
        );
        assert!(!outcome.trained);
    }

    #[test]
    fn volume_threshold_triggers_retraining() {
        let mut topic = small_topic(500);
        topic.ingest(&web_access_batch(0, 300)); // initial training
        let runs_before = topic.stats().training_runs;
        topic.ingest(&web_access_batch(300, 300));
        topic.ingest(&web_access_batch(600, 300));
        assert!(topic.stats().training_runs > runs_before);
    }

    #[test]
    fn unmatched_records_become_temporary_templates() {
        let mut topic = small_topic(1_000_000);
        topic.ingest(&web_access_batch(0, 200));
        let before_templates = topic.model().len();
        let novel = vec!["kernel oops at address ffffffffc0401234 cpu 3".to_string()];
        let outcome = topic.ingest(&novel);
        assert_eq!(outcome.unmatched, 1);
        assert_eq!(topic.model().len(), before_templates + 1);
        assert_eq!(topic.model().temporary_count(), 1);
        // The identical record now matches.
        let outcome2 = topic.ingest(&novel);
        assert_eq!(outcome2.matched, 1);
    }

    #[test]
    fn retraining_absorbs_temporary_templates() {
        let mut topic = small_topic(1_000_000);
        topic.ingest(&web_access_batch(0, 200));
        let novel: Vec<String> = (0..20)
            .map(|i| format!("cache eviction of key session:{i} after 300s"))
            .collect();
        topic.ingest(&novel);
        assert!(topic.model().temporary_count() > 0);
        topic.run_training();
        assert_eq!(topic.model().temporary_count(), 0);
        // And the new pattern is covered by a real template now.
        let outcome = topic.ingest(&["cache eviction of key session:999 after 300s"]);
        assert_eq!(outcome.matched, 1);
    }

    #[test]
    fn stats_track_bytes_and_model_size() {
        let mut topic = small_topic(1_000_000);
        topic.ingest(&web_access_batch(0, 150));
        let stats = topic.stats();
        assert_eq!(stats.total_records, 150);
        assert!(stats.total_bytes > 1_000);
        assert!(stats.model_size_bytes > 0);
        assert!(stats.last_training_seconds >= 0.0);
        assert_eq!(topic.name(), "web-access");
    }

    #[test]
    fn model_snapshots_are_persisted_per_training() {
        let mut topic = small_topic(100);
        topic.ingest(&web_access_batch(0, 150));
        topic.ingest(&web_access_batch(150, 150));
        assert!(topic.store().len() >= 2);
    }

    // -- incremental maintenance --------------------------------------------

    #[test]
    fn drift_triggers_incremental_maintenance_not_retraining() {
        let mut topic = incremental_topic(1_000_000);
        topic.ingest(&web_access_batch(0, 400)); // initial (full) training
        assert_eq!(topic.stats().training_runs, 1);
        let templates_before = topic.stats().templates;
        // A novel family floods in: unmatched rate in the drift window surges.
        let outcome = topic.ingest(&novel_batch(0, 200));
        assert!(outcome.unmatched > 100, "novel family must not match");
        assert!(!outcome.trained, "no full retrain under incremental policy");
        assert!(
            outcome.maintained >= 1,
            "drift must trigger incremental maintenance: {outcome:?}"
        );
        let stats = topic.stats();
        assert_eq!(stats.training_runs, 1, "still exactly one full train");
        assert!(stats.maintenance_runs >= 1);
        assert!(stats.templates > templates_before);
        // The absorbed family now matches as real (non-temporary) templates.
        let followup = topic.ingest(&novel_batch(500, 50));
        assert_eq!(followup.matched, 50, "absorbed family must match");
        assert_eq!(topic.model().temporary_count(), 0);
    }

    #[test]
    fn incremental_maintenance_keeps_node_ids_stable() {
        let mut topic = incremental_topic(1_000_000);
        topic.ingest(&web_access_batch(0, 400));
        let assignment_before: Vec<Option<NodeId>> =
            topic.records().iter().map(|r| r.template).collect();
        let outcome = topic.ingest(&novel_batch(0, 200));
        assert!(outcome.maintained >= 1);
        // Every pre-drift record kept its template id — no re-match pass happened.
        for (before, stored) in assignment_before.iter().zip(topic.records()) {
            assert_eq!(*before, stored.template, "node id changed for {stored:?}");
        }
    }

    #[test]
    fn incremental_maintenance_records_delta_lineage() {
        let mut topic = incremental_topic(1_000_000);
        topic.ingest(&web_access_batch(0, 400)); // v1: full snapshot
        topic.ingest(&novel_batch(0, 200)); // v2: delta
        let store = topic.store();
        assert_eq!(store.len(), 2);
        let latest = store.latest_info().unwrap();
        assert_eq!(latest.kind, crate::store::SnapshotKind::Delta);
        assert_eq!(latest.parent, Some(1));
        // The delta version reconstructs to the live model.
        let reconstructed = store.load(latest.version).unwrap();
        assert_eq!(reconstructed.len(), topic.model().len());
    }

    #[test]
    fn volume_trigger_under_incremental_policy_folds_deltas() {
        let mut topic = incremental_topic(300);
        topic.ingest(&web_access_batch(0, 400)); // initial training
                                                 // Mostly-matching traffic with a sprinkle of novelty: volume trigger fires,
                                                 // and the unmatched sprinkle is folded incrementally.
        let mut mixed = web_access_batch(400, 280);
        mixed.extend(novel_batch(0, 40));
        let outcome = topic.ingest(&mixed);
        assert!(!outcome.trained);
        assert!(outcome.maintained >= 1, "volume trigger must maintain");
        assert_eq!(topic.stats().training_runs, 1);
    }

    #[test]
    fn streaming_ingest_hot_swaps_model_mid_stream() {
        let mut topic = LogTopic::new(
            TopicConfig::new("stream-inc")
                .with_volume_threshold(1_000_000)
                .with_maintenance(MaintenancePolicy::Incremental {
                    drift: DriftConfig::default()
                        .with_window(256)
                        .with_min_samples(64)
                        .with_max_unmatched_rate(0.2),
                    check_interval: 512,
                }),
        );
        topic.ingest(&web_access_batch(0, 500)); // cold start: full training
                                                 // Stream: known traffic first, then a sustained novel family. The novel
                                                 // tail is long relative to the engine's completion lag (open buffers +
                                                 // in-flight batches, bounded below by the small batch/back-pressure
                                                 // limits) so a mid-stream drift check is guaranteed to see the surge.
        let mut stream = web_access_batch(500, 2_000);
        stream.extend(novel_batch(0, 4_000));
        let result = topic.ingest_stream(
            stream,
            &IngestConfig::default()
                .with_shards(4)
                .with_batch_records(64)
                .with_max_in_flight(4),
        );
        assert!(
            result.outcome.maintained >= 1,
            "mid-stream drift must trigger maintenance: {:?}",
            result.outcome
        );
        assert!(
            result.stats.model_swaps >= 1,
            "the refreshed model must be hot-swapped into the stream"
        );
        assert!(!result.outcome.trained, "no stop-the-world retrain");
        // Post-swap, the tail of the novel family matched against the patched model.
        let followup = topic.ingest(&novel_batch(9_000, 50));
        assert_eq!(followup.matched, 50);
    }

    #[test]
    fn incremental_topic_with_stable_traffic_never_maintains() {
        let mut topic = incremental_topic(1_000_000);
        topic.ingest(&web_access_batch(0, 400));
        let outcome = topic.ingest(&web_access_batch(400, 400));
        assert_eq!(outcome.maintained, 0);
        assert_eq!(topic.stats().maintenance_runs, 0);
    }
}
