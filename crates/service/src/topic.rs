//! The log topic: the unit of ingestion, parsing, storage and analysis (§3).
//!
//! Records ingested into a topic are matched online against the topic's current model (so
//! their template id is available to the indexing pipeline before the record is written to
//! the append-only store), buffered for the next training cycle, and retained with their
//! most-precise template id for querying. Training is triggered by volume or time and the
//! refreshed model is merged with the previous one.

use crate::ingest::{IngestConfig, IngestStats, StreamIngestor};
use crate::store::ModelStore;
use crate::trigger::{TrainingTrigger, TriggerDecision};
use bytebrain::matcher::match_batch;
use bytebrain::merge::merge_models;
use bytebrain::train::train;
use bytebrain::{NodeId, ParserModel, TrainConfig};
use logtok::Preprocessor;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Configuration of a log topic.
#[derive(Debug, Clone)]
pub struct TopicConfig {
    /// Topic name (used in reports and the model store).
    pub name: String,
    /// Parser training configuration.
    pub train: TrainConfig,
    /// Train after this many newly ingested records.
    pub volume_threshold: u64,
    /// Train after this much time since the last training run.
    pub interval: Duration,
    /// Maximum number of recent records buffered for the next training cycle (older
    /// records are dropped from the buffer — they remain in the topic store).
    pub training_buffer: usize,
    /// Template-similarity threshold used when merging a new model into the old one.
    pub merge_threshold: f64,
}

impl TopicConfig {
    /// A topic configuration with production-flavoured defaults.
    pub fn new(name: &str) -> Self {
        TopicConfig {
            name: name.to_string(),
            train: TrainConfig::default(),
            volume_threshold: 50_000,
            interval: Duration::from_secs(600),
            training_buffer: 500_000,
            merge_threshold: 0.6,
        }
    }

    /// Override the volume threshold.
    pub fn with_volume_threshold(mut self, threshold: u64) -> Self {
        self.volume_threshold = threshold;
        self
    }
}

/// One record retained by the topic: the raw text plus the most precise template id the
/// online matcher assigned (None until the first model exists).
#[derive(Debug, Clone)]
pub struct StoredRecord {
    /// The raw log text.
    pub record: String,
    /// Most precise matched template, when a model existed at ingest time.
    pub template: Option<NodeId>,
}

/// Outcome of one `ingest` call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestOutcome {
    /// Records matched to an existing template.
    pub matched: usize,
    /// Records that matched no template (inserted as temporary templates).
    pub unmatched: usize,
    /// Whether this ingest call triggered a training run.
    pub trained: bool,
}

/// Aggregate statistics of a topic (reported in the Table 5 reproduction).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TopicStats {
    /// Total records ingested.
    pub total_records: u64,
    /// Total bytes ingested.
    pub total_bytes: u64,
    /// Number of templates in the current model.
    pub templates: usize,
    /// Approximate model size in bytes.
    pub model_size_bytes: u64,
    /// Number of completed training runs.
    pub training_runs: u64,
    /// Wall-clock time of the most recent training run, in seconds.
    pub last_training_seconds: f64,
}

/// Outcome of one [`LogTopic::ingest_stream`] call: the usual ingest outcome plus the
/// streaming engine's shard and back-pressure statistics.
#[derive(Debug, Clone)]
pub struct StreamOutcome {
    /// Matched/unmatched/trained counters, identical in meaning to [`LogTopic::ingest`].
    pub outcome: IngestOutcome,
    /// Per-shard counters and back-pressure stats of the streaming run (empty when the
    /// cold-start fallback took the batch path).
    pub stats: IngestStats,
}

/// A log topic with online matching and periodic training.
#[derive(Debug)]
pub struct LogTopic {
    config: TopicConfig,
    preprocessor: Arc<Preprocessor>,
    model: Arc<ParserModel>,
    store: ModelStore,
    trigger: TrainingTrigger,
    training_buffer: Vec<String>,
    records: Vec<StoredRecord>,
    total_bytes: u64,
    training_runs: u64,
    last_training_seconds: f64,
}

impl LogTopic {
    /// Create an empty topic.
    pub fn new(config: TopicConfig) -> Self {
        let preprocessor = Arc::new(Preprocessor::new(config.train.preprocess.clone()));
        let trigger = TrainingTrigger::new(config.volume_threshold, config.interval);
        LogTopic {
            config,
            preprocessor,
            model: Arc::new(ParserModel::new()),
            store: ModelStore::new(),
            trigger,
            training_buffer: Vec::new(),
            records: Vec::new(),
            total_bytes: 0,
            training_runs: 0,
            last_training_seconds: 0.0,
        }
    }

    /// The topic name.
    pub fn name(&self) -> &str {
        &self.config.name
    }

    /// The topic's configuration (as provisioned at creation).
    pub fn config(&self) -> &TopicConfig {
        &self.config
    }

    /// The current model.
    pub fn model(&self) -> &ParserModel {
        &self.model
    }

    /// The stored records (raw text + matched template id).
    pub fn records(&self) -> &[StoredRecord] {
        &self.records
    }

    /// The model snapshot store.
    pub fn store(&self) -> &ModelStore {
        &self.store
    }

    /// Ingest a batch of records: match them online, buffer them for training, and run a
    /// training cycle if the trigger fires.
    pub fn ingest(&mut self, batch: &[String]) -> IngestOutcome {
        let mut outcome = IngestOutcome::default();
        // Online matching against the current model (template ids must be available
        // before the records are written to storage).
        let matches: Vec<Option<NodeId>> = if self.model.is_empty() {
            vec![None; batch.len()]
        } else {
            match_batch(
                &self.model,
                &self.preprocessor,
                batch,
                self.config.train.parallelism,
            )
            .into_iter()
            .map(|m| m.node)
            .collect()
        };
        for (record, matched) in batch.iter().zip(&matches) {
            self.apply_record(record.clone(), *matched, &mut outcome);
        }
        self.trigger.observe(batch.len() as u64);
        if self.trigger.decide(Instant::now()).should_train() {
            self.run_training();
            outcome.trained = true;
        }
        outcome
    }

    /// Apply one matched record to the topic state: count it, insert a temporary
    /// template when unmatched (§3), account bytes, and push it into the store and the
    /// training buffer. Shared by the batch and streaming ingestion paths so the
    /// topic-state invariants live in exactly one place.
    fn apply_record(
        &mut self,
        record: String,
        matched: Option<NodeId>,
        outcome: &mut IngestOutcome,
    ) {
        let template = match matched {
            Some(id) => {
                outcome.matched += 1;
                Some(id)
            }
            None => {
                outcome.unmatched += 1;
                // Rare/unseen logs become temporary templates so identical records
                // match until the next training cycle absorbs them (§3). With no model
                // at all there is nothing to insert into yet.
                if self.model.is_empty() {
                    None
                } else {
                    let tokens = self.preprocessor.tokens_of(&record);
                    Some(Arc::make_mut(&mut self.model).insert_temporary(&tokens))
                }
            }
        };
        self.total_bytes += record.len() as u64 + 1;
        if self.training_buffer.len() < self.config.training_buffer {
            self.training_buffer.push(record.clone());
        }
        self.records.push(StoredRecord { record, template });
    }

    /// Whether the trigger would start training now (exposed for tests and schedulers).
    pub fn pending_trigger(&self) -> TriggerDecision {
        self.trigger.decide(Instant::now())
    }

    /// A cheap shared snapshot of the current model (used to build a
    /// [`StreamIngestor`]; the snapshot stays valid while training replaces the
    /// topic's own copy).
    pub fn model_snapshot(&self) -> Arc<ParserModel> {
        Arc::clone(&self.model)
    }

    /// A cheap shared handle to the topic's preprocessing pipeline.
    pub fn preprocessor_snapshot(&self) -> Arc<Preprocessor> {
        Arc::clone(&self.preprocessor)
    }

    /// Ingest a stream of records through the sharded streaming engine
    /// ([`StreamIngestor`]): records are routed round-robin to shard buffers, batched
    /// by size/time, matched in parallel against an immutable snapshot of the current
    /// model, and then applied to the topic exactly as [`LogTopic::ingest`] would —
    /// unmatched records become temporary templates, everything lands in the store and
    /// the training buffer, and the volume/time trigger may start a training run.
    ///
    /// Falls back to the batch path when no model exists yet (the first training run
    /// needs buffered records, not matching throughput).
    pub fn ingest_stream<I>(&mut self, records: I, config: &IngestConfig) -> StreamOutcome
    where
        I: IntoIterator<Item = String>,
    {
        if self.model.is_empty() {
            let batch: Vec<String> = records.into_iter().collect();
            let outcome = self.ingest(&batch);
            return StreamOutcome {
                outcome,
                stats: IngestStats::default(),
            };
        }
        let mut ingestor = StreamIngestor::new(
            self.model_snapshot(),
            self.preprocessor_snapshot(),
            config.clone(),
        );
        let mut total = 0u64;
        for record in records {
            ingestor.push(record);
            total += 1;
        }
        let report = ingestor.finish();
        let mut outcome = IngestOutcome::default();
        // The snapshot Arc has been dropped with the engine, so temporary-template
        // insertion inside apply_record does not clone the model.
        for matched in report.records {
            self.apply_record(matched.record, matched.node, &mut outcome);
        }
        self.trigger.observe(total);
        if self.trigger.decide(Instant::now()).should_train() {
            self.run_training();
            outcome.trained = true;
        }
        StreamOutcome {
            outcome,
            stats: report.stats,
        }
    }

    /// Force a training cycle on the buffered records.
    pub fn run_training(&mut self) {
        if self.training_buffer.is_empty() {
            return;
        }
        let started = Instant::now();
        let outcome = train(&self.training_buffer, &self.config.train);
        let new_model = outcome.model;
        self.model = if self.model.is_empty() {
            Arc::new(new_model)
        } else {
            Arc::new(merge_models(
                &self.model,
                &new_model,
                self.config.merge_threshold,
            ))
        };
        self.last_training_seconds = started.elapsed().as_secs_f64();
        self.training_runs += 1;
        self.trigger.mark_trained(Instant::now());
        self.store.save(&self.model);
        self.training_buffer.clear();
        // Re-match every stored record: node ids refer to the model that existed at ingest
        // time, and training (with merging) renumbers the tree. The production system
        // stores template ids alongside a model version and remaps lazily at query time;
        // re-matching eagerly exercises the same code path at laptop scale.
        self.rematch_all();
    }

    /// Re-assign template ids for every stored record against the current model.
    fn rematch_all(&mut self) {
        if self.records.is_empty() || self.model.is_empty() {
            return;
        }
        let texts: Vec<String> = self.records.iter().map(|r| r.record.clone()).collect();
        let results = match_batch(
            &self.model,
            &self.preprocessor,
            &texts,
            self.config.train.parallelism,
        );
        for (stored, result) in self.records.iter_mut().zip(results) {
            stored.template = result.node;
        }
    }

    /// Current topic statistics.
    pub fn stats(&self) -> TopicStats {
        TopicStats {
            total_records: self.records.len() as u64,
            total_bytes: self.total_bytes,
            templates: self.model.len(),
            model_size_bytes: self.model.approx_size_bytes(),
            training_runs: self.training_runs,
            last_training_seconds: self.last_training_seconds,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn web_access_batch(offset: usize, n: usize) -> Vec<String> {
        (0..n)
            .map(|i| {
                let code = [200, 200, 200, 404, 500][(offset + i) % 5];
                format!(
                    "GET /api/v1/items/{} HTTP/1.1 status {} bytes {} latency {}ms",
                    (offset + i) % 50,
                    code,
                    100 + (offset + i) % 900,
                    1 + (offset + i) % 40
                )
            })
            .collect()
    }

    fn small_topic(volume_threshold: u64) -> LogTopic {
        LogTopic::new(TopicConfig::new("web-access").with_volume_threshold(volume_threshold))
    }

    #[test]
    fn first_ingest_triggers_initial_training() {
        let mut topic = small_topic(1_000_000);
        let outcome = topic.ingest(&web_access_batch(0, 200));
        assert!(
            outcome.trained,
            "initial training must run on the first batch"
        );
        assert!(topic.stats().templates > 0);
        assert_eq!(topic.stats().training_runs, 1);
    }

    #[test]
    fn records_receive_template_ids_after_training() {
        let mut topic = small_topic(1_000_000);
        topic.ingest(&web_access_batch(0, 300));
        // After initial training, previously-unassigned records are backfilled.
        let assigned = topic
            .records()
            .iter()
            .filter(|r| r.template.is_some())
            .count();
        assert_eq!(assigned, topic.records().len());
    }

    #[test]
    fn subsequent_batches_match_online() {
        let mut topic = small_topic(1_000_000);
        topic.ingest(&web_access_batch(0, 300));
        let outcome = topic.ingest(&web_access_batch(300, 100));
        assert_eq!(outcome.matched + outcome.unmatched, 100);
        assert!(
            outcome.matched > 90,
            "most records of the same shape should match online: {outcome:?}"
        );
        assert!(!outcome.trained);
    }

    #[test]
    fn volume_threshold_triggers_retraining() {
        let mut topic = small_topic(500);
        topic.ingest(&web_access_batch(0, 300)); // initial training
        let runs_before = topic.stats().training_runs;
        topic.ingest(&web_access_batch(300, 300));
        topic.ingest(&web_access_batch(600, 300));
        assert!(topic.stats().training_runs > runs_before);
    }

    #[test]
    fn unmatched_records_become_temporary_templates() {
        let mut topic = small_topic(1_000_000);
        topic.ingest(&web_access_batch(0, 200));
        let before_templates = topic.model().len();
        let novel = vec!["kernel oops at address ffffffffc0401234 cpu 3".to_string()];
        let outcome = topic.ingest(&novel);
        assert_eq!(outcome.unmatched, 1);
        assert_eq!(topic.model().len(), before_templates + 1);
        assert_eq!(topic.model().temporary_count(), 1);
        // The identical record now matches.
        let outcome2 = topic.ingest(&novel);
        assert_eq!(outcome2.matched, 1);
    }

    #[test]
    fn retraining_absorbs_temporary_templates() {
        let mut topic = small_topic(1_000_000);
        topic.ingest(&web_access_batch(0, 200));
        let novel: Vec<String> = (0..20)
            .map(|i| format!("cache eviction of key session:{i} after 300s"))
            .collect();
        topic.ingest(&novel);
        assert!(topic.model().temporary_count() > 0);
        topic.run_training();
        assert_eq!(topic.model().temporary_count(), 0);
        // And the new pattern is covered by a real template now.
        let outcome = topic.ingest(&vec!["cache eviction of key session:999 after 300s".into()]);
        assert_eq!(outcome.matched, 1);
    }

    #[test]
    fn stats_track_bytes_and_model_size() {
        let mut topic = small_topic(1_000_000);
        topic.ingest(&web_access_batch(0, 150));
        let stats = topic.stats();
        assert_eq!(stats.total_records, 150);
        assert!(stats.total_bytes > 1_000);
        assert!(stats.model_size_bytes > 0);
        assert!(stats.last_training_seconds >= 0.0);
        assert_eq!(topic.name(), "web-access");
    }

    #[test]
    fn model_snapshots_are_persisted_per_training() {
        let mut topic = small_topic(100);
        topic.ingest(&web_access_batch(0, 150));
        topic.ingest(&web_access_batch(150, 150));
        assert!(topic.store().len() >= 2);
    }
}
