//! Shared request/response types of the service surface.
//!
//! The HTTP front end (`crates/server`), library callers, and the integration tests
//! all speak these structs, so "what goes over the wire" is defined once here rather
//! than per-endpoint. Everything renders through the vendored serde shim's [`Value`]
//! data model; object key order is insertion order, which makes every encoding in
//! this module **deterministic** — the loopback differential suite compares response
//! bodies byte for byte against direct [`crate::ServiceManager`] calls and relies on
//! that.
//!
//! The query AST ([`Query`]/[`Predicate`]) uses struct enum variants
//! (`Predicate::TimeWindow { start, end }`), which the derive shim deliberately does
//! not support — so the AST codecs here are hand-written over [`Value`]. The wire
//! grammar:
//!
//! ```json
//! {
//!   "predicate": {"and": [
//!     {"template_matches": "job <*> finished"},
//!     {"time_window": {"start": 0, "end": 1000}},
//!     {"not": {"variable_contains": "node-07"}}
//!   ]},
//!   "threshold": 0.5,
//!   "aggregate": {"top_k": 5}
//! }
//! ```
//!
//! `"aggregate"` is `"group_by"`, `"distribution"`, `"count_distinct"`, or
//! `{"top_k": k}`; `"predicate"` and `"threshold"` may be omitted.

use crate::query::{QueryValue, TemplateGroup};
use crate::topic::{IngestOutcome, TopicStats};
use bytebrain::{Aggregate, Predicate, Query};
use serde::{Deserialize, Error, Serialize, Value};

/// Body of `POST /v1/{tenant}/{topic}/ingest`: a batch of raw log lines.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IngestRequest {
    /// Raw log lines, in arrival order.
    pub records: Vec<String>,
}

/// Body of a successful (possibly partially applied) ingest response.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IngestResponse {
    /// Records admitted and applied to the topic.
    pub accepted: u64,
    /// Records shed by engine back-pressure after the batch was admitted. The
    /// `accepted` prefix is already committed (and, on a durable root, persisted),
    /// so clients must retry only the **last `shed` records** of the batch —
    /// resending the whole batch would duplicate the committed prefix.
    pub shed: u64,
    /// Records that matched an existing template.
    pub matched: u64,
    /// Records that matched no template (inserted as temporaries).
    pub unmatched: u64,
    /// Whether this batch triggered a full training run.
    pub trained: bool,
    /// Incremental maintenance runs this batch triggered.
    pub maintained: u64,
}

impl IngestResponse {
    /// Build the response from a topic-level outcome (nothing shed).
    pub fn from_outcome(outcome: &IngestOutcome) -> Self {
        IngestResponse {
            accepted: (outcome.matched + outcome.unmatched) as u64,
            shed: 0,
            matched: outcome.matched as u64,
            unmatched: outcome.unmatched as u64,
            trained: outcome.trained,
            maintained: outcome.maintained as u64,
        }
    }

    /// Builder: record how many trailing records the engine shed.
    pub fn with_shed(mut self, shed: u64) -> Self {
        self.shed = shed;
        self
    }
}

/// Body of `GET /v1/{tenant}/{topic}/stats`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatsResponse {
    /// Total records ingested into the topic.
    pub total_records: u64,
    /// Total bytes ingested into the topic.
    pub total_bytes: u64,
    /// Live template count.
    pub templates: u64,
    /// Approximate model size in bytes.
    pub model_size_bytes: u64,
    /// Completed full training runs.
    pub training_runs: u64,
    /// Completed incremental maintenance runs.
    pub maintenance_runs: u64,
}

impl StatsResponse {
    /// Build the response from a topic's stats snapshot.
    pub fn from_stats(stats: &TopicStats) -> Self {
        StatsResponse {
            total_records: stats.total_records,
            total_bytes: stats.total_bytes,
            templates: stats.templates as u64,
            model_size_bytes: stats.model_size_bytes,
            training_runs: stats.training_runs,
            maintenance_runs: stats.maintenance_runs,
        }
    }
}

/// Error body every non-2xx response carries.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ErrorBody {
    /// Human-readable description.
    pub error: String,
    /// For `429` sheds: how long the client should back off, in milliseconds.
    pub retry_after_ms: Option<u64>,
}

impl ErrorBody {
    /// A plain error with no retry hint.
    pub fn new(error: impl Into<String>) -> Self {
        ErrorBody {
            error: error.into(),
            retry_after_ms: None,
        }
    }

    /// A shed error carrying a retry hint.
    pub fn shed(error: impl Into<String>, retry_after_ms: u64) -> Self {
        ErrorBody {
            error: error.into(),
            retry_after_ms: Some(retry_after_ms),
        }
    }
}

// --- query AST codecs -------------------------------------------------------------------

fn object(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// Encode a [`Predicate`] into the wire grammar.
pub fn predicate_to_value(predicate: &Predicate) -> Value {
    match predicate {
        Predicate::TemplateMatches(pattern) => {
            object(vec![("template_matches", Value::String(pattern.clone()))])
        }
        Predicate::VariableEquals(value) => {
            object(vec![("variable_equals", Value::String(value.clone()))])
        }
        Predicate::VariableContains(value) => {
            object(vec![("variable_contains", Value::String(value.clone()))])
        }
        Predicate::TimeWindow { start, end } => object(vec![(
            "time_window",
            object(vec![
                ("start", Value::UInt(*start)),
                ("end", Value::UInt(*end)),
            ]),
        )]),
        Predicate::And(children) => object(vec![(
            "and",
            Value::Array(children.iter().map(predicate_to_value).collect()),
        )]),
        Predicate::Or(children) => object(vec![(
            "or",
            Value::Array(children.iter().map(predicate_to_value).collect()),
        )]),
        Predicate::Not(child) => object(vec![("not", predicate_to_value(child))]),
    }
}

/// Decode a [`Predicate`] from the wire grammar.
pub fn predicate_from_value(value: &Value) -> Result<Predicate, Error> {
    let Value::Object(fields) = value else {
        return Err(Error::msg(format!(
            "predicate must be a single-key object, got {value:?}"
        )));
    };
    if fields.len() != 1 {
        return Err(Error::msg(format!(
            "predicate must have exactly one key, got {} keys",
            fields.len()
        )));
    }
    let (key, inner) = &fields[0];
    match key.as_str() {
        "template_matches" => String::deserialize(inner).map(Predicate::TemplateMatches),
        "variable_equals" => String::deserialize(inner).map(Predicate::VariableEquals),
        "variable_contains" => String::deserialize(inner).map(Predicate::VariableContains),
        "time_window" => {
            let start = inner
                .get("start")
                .ok_or_else(|| Error::msg("time_window missing \"start\""))?;
            let end = inner
                .get("end")
                .ok_or_else(|| Error::msg("time_window missing \"end\""))?;
            Ok(Predicate::TimeWindow {
                start: u64::deserialize(start)?,
                end: u64::deserialize(end)?,
            })
        }
        "and" | "or" => {
            let Value::Array(items) = inner else {
                return Err(Error::msg(format!("\"{key}\" expects an array")));
            };
            let children = items
                .iter()
                .map(predicate_from_value)
                .collect::<Result<Vec<_>, _>>()?;
            Ok(if key == "and" {
                Predicate::And(children)
            } else {
                Predicate::Or(children)
            })
        }
        "not" => predicate_from_value(inner).map(|child| Predicate::Not(Box::new(child))),
        other => Err(Error::msg(format!("unknown predicate kind {other:?}"))),
    }
}

/// Encode an [`Aggregate`] into the wire grammar.
pub fn aggregate_to_value(aggregate: &Aggregate) -> Value {
    match aggregate {
        Aggregate::GroupBy => Value::String("group_by".to_string()),
        Aggregate::Distribution => Value::String("distribution".to_string()),
        Aggregate::CountDistinct => Value::String("count_distinct".to_string()),
        Aggregate::TopK(k) => object(vec![("top_k", Value::UInt(*k as u64))]),
    }
}

/// Decode an [`Aggregate`] from the wire grammar.
pub fn aggregate_from_value(value: &Value) -> Result<Aggregate, Error> {
    match value {
        Value::String(name) => match name.as_str() {
            "group_by" => Ok(Aggregate::GroupBy),
            "distribution" => Ok(Aggregate::Distribution),
            "count_distinct" => Ok(Aggregate::CountDistinct),
            other => Err(Error::msg(format!("unknown aggregate {other:?}"))),
        },
        Value::Object(_) => {
            let k = value
                .get("top_k")
                .ok_or_else(|| Error::msg("aggregate object must be {\"top_k\": k}"))?;
            usize::deserialize(k).map(Aggregate::TopK)
        }
        other => Err(Error::msg(format!("bad aggregate: {other:?}"))),
    }
}

/// Encode a full [`Query`] into the wire grammar.
pub fn query_to_value(query: &Query) -> Value {
    let mut fields: Vec<(String, Value)> = Vec::new();
    if let Some(predicate) = &query.predicate {
        fields.push(("predicate".to_string(), predicate_to_value(predicate)));
    }
    fields.push(("threshold".to_string(), Value::Float(query.threshold)));
    fields.push((
        "aggregate".to_string(),
        aggregate_to_value(&query.aggregate),
    ));
    Value::Object(fields)
}

/// Decode a full [`Query`] from the wire grammar. Missing `predicate` means no
/// filter; missing `threshold` falls back to the AST default (via
/// [`Query::group_by`]'s default threshold).
pub fn query_from_value(value: &Value) -> Result<Query, Error> {
    if !matches!(value, Value::Object(_)) {
        return Err(Error::msg(format!(
            "query must be an object, got {value:?}"
        )));
    }
    let predicate = match value.get("predicate") {
        Some(Value::Null) | None => None,
        Some(raw) => Some(predicate_from_value(raw)?),
    };
    let aggregate = match value.get("aggregate") {
        Some(raw) => aggregate_from_value(raw)?,
        None => Aggregate::GroupBy,
    };
    let mut query = Query {
        predicate,
        threshold: Query::group_by().threshold,
        aggregate,
    };
    if let Some(raw) = value.get("threshold") {
        query.threshold = f64::deserialize(raw)?;
    }
    Ok(query)
}

/// Parse a query from a JSON request body.
pub fn query_from_json(body: &str) -> Result<Query, Error> {
    let value = serde_json::parse_value(body).map_err(|e| Error::msg(e.to_string()))?;
    query_from_value(&value)
}

/// Render a query to its canonical JSON body (used by tests and docs examples).
pub fn query_to_json(query: &Query) -> String {
    serde_json::to_string(&query_to_value(query)).expect("value rendering is infallible")
}

// --- query results ----------------------------------------------------------------------

fn group_to_value(group: &TemplateGroup) -> Value {
    object(vec![
        ("node", Value::UInt(group.node.0 as u64)),
        ("template", Value::String(group.template.clone())),
        ("saturation", Value::Float(group.saturation)),
        (
            "record_indices",
            Value::Array(
                group
                    .record_indices
                    .iter()
                    .map(|i| Value::UInt(*i as u64))
                    .collect(),
            ),
        ),
    ])
}

/// Encode a [`QueryValue`] into the deterministic response shape:
/// `{"kind": "groups" | "distribution" | "count", ...payload}`. Groups are encoded in
/// full — node id, template text, saturation, and every record index — so the
/// loopback differential is sensitive to any divergence from the library path.
pub fn query_value_to_value(result: &QueryValue) -> Value {
    match result {
        QueryValue::Groups(groups) => object(vec![
            ("kind", Value::String("groups".to_string())),
            (
                "groups",
                Value::Array(groups.iter().map(group_to_value).collect()),
            ),
        ]),
        QueryValue::Distribution(pairs) => object(vec![
            ("kind", Value::String("distribution".to_string())),
            (
                "distribution",
                Value::Array(
                    pairs
                        .iter()
                        .map(|(template, count)| {
                            object(vec![
                                ("template", Value::String(template.clone())),
                                ("count", Value::UInt(*count)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]),
        QueryValue::Count(count) => object(vec![
            ("kind", Value::String("count".to_string())),
            ("count", Value::UInt(*count)),
        ]),
    }
}

/// Render a [`QueryValue`] to its canonical JSON response body.
pub fn query_value_to_json(result: &QueryValue) -> String {
    serde_json::to_string(&query_value_to_value(result)).expect("value rendering is infallible")
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytebrain::NodeId;
    use std::sync::Arc;

    fn deep_query() -> Query {
        Query::top_k(3)
            .at_threshold(0.42)
            .filter(Predicate::And(vec![
                Predicate::TemplateMatches("job <*> finished".to_string()),
                Predicate::Or(vec![
                    Predicate::VariableEquals("node-03".to_string()),
                    Predicate::Not(Box::new(Predicate::VariableContains("05".to_string()))),
                ]),
                Predicate::TimeWindow { start: 10, end: 90 },
            ]))
    }

    #[test]
    fn query_round_trips_through_json() {
        let query = deep_query();
        let body = query_to_json(&query);
        let back = query_from_json(&body).expect("round trip");
        assert_eq!(back, query);
        // Deterministic rendering: encode → decode → encode is a fixed point.
        assert_eq!(query_to_json(&back), body);
    }

    #[test]
    fn every_aggregate_round_trips() {
        for aggregate in [
            Aggregate::GroupBy,
            Aggregate::Distribution,
            Aggregate::CountDistinct,
            Aggregate::TopK(7),
        ] {
            let value = aggregate_to_value(&aggregate);
            assert_eq!(aggregate_from_value(&value).unwrap(), aggregate);
        }
    }

    #[test]
    fn minimal_query_body_uses_defaults() {
        let query = query_from_json(r#"{"aggregate": "group_by"}"#).unwrap();
        assert!(query.predicate.is_none());
        assert_eq!(query.aggregate, Aggregate::GroupBy);
        assert_eq!(query.threshold, Query::group_by().threshold);
    }

    #[test]
    fn malformed_queries_are_rejected() {
        assert!(query_from_json("[1, 2]").is_err());
        assert!(query_from_json(r#"{"aggregate": "median"}"#).is_err());
        assert!(query_from_json(r#"{"predicate": {"and": [], "or": []}}"#).is_err());
        assert!(query_from_json(r#"{"predicate": {"time_window": {"start": 3}}}"#).is_err());
        assert!(query_from_json(r#"{"predicate": {"frobnicate": "x"}}"#).is_err());
    }

    #[test]
    fn ingest_request_round_trips() {
        let request = IngestRequest {
            records: vec!["a 1".to_string(), "b 2".to_string()],
        };
        let body = serde_json::to_string(&request).unwrap();
        let back: IngestRequest = serde_json::from_str(&body).unwrap();
        assert_eq!(back, request);
    }

    #[test]
    fn query_value_encodings_are_deterministic_and_complete() {
        let groups = QueryValue::Groups(Arc::new(vec![TemplateGroup {
            node: NodeId(4),
            template: "job <*> finished".to_string(),
            saturation: 0.75,
            record_indices: vec![0, 2, 5],
        }]));
        let body = query_value_to_json(&groups);
        assert!(body.contains("\"kind\":\"groups\""), "{body}");
        assert!(body.contains("\"record_indices\":[0,2,5]"), "{body}");
        let count = query_value_to_json(&QueryValue::Count(9));
        assert!(count.contains("\"count\":9"), "{count}");
        let dist = query_value_to_json(&QueryValue::Distribution(Arc::new(vec![(
            "x <*>".to_string(),
            3,
        )])));
        assert!(dist.contains("\"distribution\""), "{dist}");
    }
}
