//! Admission control in front of [`crate::ServiceManager`]: per-tenant token-bucket
//! rate limits, in-flight byte quotas, bounded per-tenant queues, and fair-share
//! round-robin scheduling of admitted batches across tenants and topics.
//!
//! The layer is deliberately **passive and clock-injected**: every quota decision
//! takes the caller's `now: Instant`, nothing sleeps, and no thread is spawned here —
//! the HTTP front end owns the threads and the engine loop. That keeps the whole
//! policy unit-testable with synthetic clocks and keeps the library dependency-free.
//!
//! Flow: `submit` either **sheds** (returns [`Shed`] with a retry-after hint, which
//! the server maps to HTTP 429) or enqueues the batch under its `(tenant, topic)`
//! queue and hands back a ticket. The engine loop pulls work with `next_batch`, which
//! rotates a tenant cursor and a per-tenant topic cursor so a flooding tenant cannot
//! starve the others, and reports completion with `complete` to release the tenant's
//! in-flight bytes.

use std::collections::{BTreeMap, VecDeque};
use std::time::{Duration, Instant};

/// Per-tenant quota. The default is fully open (no rate limit, no byte bound) so
/// library users opt *in* to shedding; the server applies its configured defaults.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantQuota {
    /// Sustained admission rate in records per second; `None` = unlimited.
    pub rate_records_per_sec: Option<f64>,
    /// Token-bucket burst capacity in records. Only meaningful with a rate; a bucket
    /// never holds more than this many tokens.
    pub burst_records: u64,
    /// Bound on the sum of record bytes admitted but not yet completed by the
    /// engine; `None` = unlimited.
    pub max_in_flight_bytes: Option<u64>,
    /// Bound on batches queued (admitted, not yet scheduled); `None` = unlimited.
    pub max_queued_batches: Option<usize>,
}

impl Default for TenantQuota {
    fn default() -> Self {
        TenantQuota {
            rate_records_per_sec: None,
            burst_records: 10_000,
            max_in_flight_bytes: None,
            max_queued_batches: None,
        }
    }
}

impl TenantQuota {
    /// Builder: set the sustained rate (records/second).
    pub fn with_rate(mut self, records_per_sec: f64) -> Self {
        self.rate_records_per_sec = Some(records_per_sec.max(f64::MIN_POSITIVE));
        self
    }

    /// Builder: set the burst capacity (records).
    pub fn with_burst(mut self, records: u64) -> Self {
        self.burst_records = records.max(1);
        self
    }

    /// Builder: bound admitted-but-incomplete bytes.
    pub fn with_max_in_flight_bytes(mut self, bytes: u64) -> Self {
        self.max_in_flight_bytes = Some(bytes);
        self
    }

    /// Builder: bound queued batches.
    pub fn with_max_queued_batches(mut self, batches: usize) -> Self {
        self.max_queued_batches = Some(batches.max(1));
        self
    }
}

/// Admission-layer configuration: the default quota plus per-tenant overrides.
#[derive(Debug, Clone, Default)]
pub struct AdmissionConfig {
    /// Quota applied to tenants without an explicit override.
    pub default_quota: TenantQuota,
    /// Per-tenant overrides.
    pub overrides: BTreeMap<String, TenantQuota>,
}

impl AdmissionConfig {
    /// Builder: set the default quota.
    pub fn with_default_quota(mut self, quota: TenantQuota) -> Self {
        self.default_quota = quota;
        self
    }

    /// Builder: override one tenant's quota.
    pub fn with_tenant_quota(mut self, tenant: impl Into<String>, quota: TenantQuota) -> Self {
        self.overrides.insert(tenant.into(), quota);
        self
    }

    fn quota_of(&self, tenant: &str) -> TenantQuota {
        self.overrides
            .get(tenant)
            .copied()
            .unwrap_or(self.default_quota)
    }
}

/// Why a batch was shed instead of admitted. Transient variants carry a back-off
/// hint the server surfaces as `Retry-After`; [`Shed::BatchTooLarge`] is permanent
/// (no amount of waiting admits it) and maps to HTTP 413 instead of 429.
#[derive(Debug, Clone, PartialEq)]
pub enum Shed {
    /// The tenant's token bucket cannot cover the batch yet.
    RateLimited {
        /// Time until the bucket will have refilled enough tokens.
        retry_after: Duration,
    },
    /// Admitting the batch would exceed the tenant's in-flight byte bound.
    ByteQuota {
        /// Bytes currently admitted but not completed.
        in_flight_bytes: u64,
        /// The configured bound.
        limit_bytes: u64,
        /// Heuristic back-off: no refill clock exists for bytes, so a fixed hint.
        retry_after: Duration,
    },
    /// The tenant's queue of admitted-but-unscheduled batches is full.
    QueueFull {
        /// Queued batches at decision time.
        queued: usize,
        /// The configured bound.
        limit: usize,
        /// Heuristic back-off hint.
        retry_after: Duration,
    },
    /// The batch alone exceeds the tenant's in-flight byte bound: it could never be
    /// admitted even with zero bytes in flight, so retrying is pointless.
    BatchTooLarge {
        /// The batch's byte size.
        bytes: u64,
        /// The configured bound.
        limit_bytes: u64,
    },
}

impl Shed {
    /// The back-off hint; `None` for permanent rejections that no wait can cure.
    pub fn retry_after(&self) -> Option<Duration> {
        match self {
            Shed::RateLimited { retry_after }
            | Shed::ByteQuota { retry_after, .. }
            | Shed::QueueFull { retry_after, .. } => Some(*retry_after),
            Shed::BatchTooLarge { .. } => None,
        }
    }
}

impl std::fmt::Display for Shed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Shed::RateLimited { retry_after } => {
                write!(f, "rate limited; retry after {retry_after:?}")
            }
            Shed::ByteQuota {
                in_flight_bytes,
                limit_bytes,
                ..
            } => write!(
                f,
                "in-flight byte quota exhausted ({in_flight_bytes} of {limit_bytes} bytes)"
            ),
            Shed::QueueFull { queued, limit, .. } => {
                write!(f, "admission queue full ({queued} of {limit} batches)")
            }
            Shed::BatchTooLarge { bytes, limit_bytes } => write!(
                f,
                "batch of {bytes} bytes can never fit the {limit_bytes}-byte in-flight bound; split it"
            ),
        }
    }
}

impl std::error::Error for Shed {}

/// A batch admitted into the scheduler, handed to the engine loop by
/// [`Admission::next_batch`].
#[derive(Debug)]
pub struct AdmittedBatch {
    /// Ticket issued at `submit` time; the server keys reply channels on it.
    pub ticket: u64,
    /// Owning tenant.
    pub tenant: String,
    /// Target topic.
    pub topic: String,
    /// The records, unchanged.
    pub records: Vec<String>,
    /// Sum of record byte lengths, released at `complete` time.
    pub bytes: u64,
}

/// Monotonic per-tenant counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantAdmissionStats {
    /// Batches admitted.
    pub admitted_batches: u64,
    /// Records admitted.
    pub admitted_records: u64,
    /// Batches shed.
    pub shed_batches: u64,
    /// Records shed.
    pub shed_records: u64,
    /// Batches currently queued (gauge).
    pub queued_batches: usize,
    /// Bytes admitted but not yet completed (gauge).
    pub in_flight_bytes: u64,
}

/// Snapshot of the layer's metrics, keyed by tenant.
pub type AdmissionMetrics = BTreeMap<String, TenantAdmissionStats>;

#[derive(Debug)]
struct TokenBucket {
    /// Current tokens (records); fractional so slow rates refill smoothly.
    tokens: f64,
    capacity: f64,
    rate: f64,
    refilled_at: Instant,
}

impl TokenBucket {
    fn new(quota: &TenantQuota, now: Instant) -> Option<Self> {
        quota.rate_records_per_sec.map(|rate| TokenBucket {
            tokens: quota.burst_records as f64,
            capacity: quota.burst_records as f64,
            rate,
            refilled_at: now,
        })
    }

    fn refill(&mut self, now: Instant) {
        let elapsed = now
            .saturating_duration_since(self.refilled_at)
            .as_secs_f64();
        self.tokens = (self.tokens + elapsed * self.rate).min(self.capacity);
        self.refilled_at = now;
    }

    /// Take `need` tokens, or report how long until they will exist. The reported
    /// wait is clamped to [`MAX_RETRY_AFTER`]: a near-zero rate makes
    /// `deficit / rate` overflow past what `Duration::from_secs_f64` accepts, and a
    /// panic here would poison the scheduler mutex of every caller.
    fn take(&mut self, need: f64, now: Instant) -> Result<(), Duration> {
        self.refill(now);
        if need <= self.tokens {
            self.tokens -= need;
            Ok(())
        } else {
            let deficit = need - self.tokens;
            let secs = deficit / self.rate;
            Err(if secs.is_finite() && secs < MAX_RETRY_AFTER.as_secs_f64() {
                Duration::from_secs_f64(secs)
            } else {
                MAX_RETRY_AFTER
            })
        }
    }
}

#[derive(Debug)]
struct TenantState {
    quota: TenantQuota,
    bucket: Option<TokenBucket>,
    /// Admitted batches per topic, scheduled round-robin via `topic_cursor`.
    queues: BTreeMap<String, VecDeque<AdmittedBatch>>,
    topic_cursor: usize,
    stats: TenantAdmissionStats,
}

impl TenantState {
    fn queued(&self) -> usize {
        self.queues.values().map(VecDeque::len).sum()
    }
}

/// The admission layer: quota enforcement + two-level fair-share scheduling.
///
/// Single-threaded by design — the server wraps it in a mutex and owns the
/// wake-up signalling; see the module docs for the submit/next/complete flow.
#[derive(Debug)]
pub struct Admission {
    config: AdmissionConfig,
    tenants: BTreeMap<String, TenantState>,
    tenant_cursor: usize,
    next_ticket: u64,
}

impl Admission {
    /// Build the layer.
    pub fn new(config: AdmissionConfig) -> Self {
        Admission {
            config,
            tenants: BTreeMap::new(),
            tenant_cursor: 0,
            next_ticket: 0,
        }
    }

    fn tenant_mut(&mut self, tenant: &str, now: Instant) -> &mut TenantState {
        if !self.tenants.contains_key(tenant) {
            let quota = self.config.quota_of(tenant);
            self.tenants.insert(
                tenant.to_string(),
                TenantState {
                    quota,
                    bucket: TokenBucket::new(&quota, now),
                    queues: BTreeMap::new(),
                    topic_cursor: 0,
                    stats: TenantAdmissionStats::default(),
                },
            );
        }
        self.tenants.get_mut(tenant).expect("tenant just ensured")
    }

    /// Admit or shed one batch at time `now`. On admission the batch is queued under
    /// its `(tenant, topic)` and the returned ticket identifies it through
    /// [`Admission::next_batch`].
    pub fn submit(
        &mut self,
        tenant: &str,
        topic: &str,
        records: Vec<String>,
        now: Instant,
    ) -> Result<u64, Shed> {
        let bytes: u64 = records.iter().map(|r| r.len() as u64).sum();
        let count = records.len() as u64;
        let state = self.tenant_mut(tenant, now);
        let verdict = admission_verdict(state, count, bytes, now);
        if let Err(shed) = verdict {
            state.stats.shed_batches += 1;
            state.stats.shed_records += count;
            return Err(shed);
        }
        let ticket = self.next_ticket;
        self.next_ticket += 1;
        let state = self.tenants.get_mut(tenant).expect("tenant ensured above");
        state.stats.admitted_batches += 1;
        state.stats.admitted_records += count;
        state.stats.in_flight_bytes += bytes;
        state.stats.queued_batches = state.queued() + 1;
        state
            .queues
            .entry(topic.to_string())
            .or_default()
            .push_back(AdmittedBatch {
                ticket,
                tenant: tenant.to_string(),
                topic: topic.to_string(),
                records,
                bytes,
            });
        Ok(ticket)
    }

    /// Pull the next batch to run, rotating fairly: the tenant cursor advances one
    /// tenant per call, and within a tenant the topic cursor advances one topic per
    /// pull, so neither a hot tenant nor a hot topic can monopolize the engine.
    pub fn next_batch(&mut self) -> Option<AdmittedBatch> {
        let tenant_names: Vec<String> = self
            .tenants
            .iter()
            .filter(|(_, state)| state.queued() > 0)
            .map(|(name, _)| name.clone())
            .collect();
        if tenant_names.is_empty() {
            return None;
        }
        let pick = self.tenant_cursor % tenant_names.len();
        self.tenant_cursor = self.tenant_cursor.wrapping_add(1);
        let name = &tenant_names[pick];
        let state = self.tenants.get_mut(name).expect("listed tenant exists");
        let topics: Vec<String> = state
            .queues
            .iter()
            .filter(|(_, queue)| !queue.is_empty())
            .map(|(topic, _)| topic.clone())
            .collect();
        let topic = &topics[state.topic_cursor % topics.len()];
        state.topic_cursor = state.topic_cursor.wrapping_add(1);
        let batch = state
            .queues
            .get_mut(topic)
            .and_then(VecDeque::pop_front)
            .expect("non-empty queue was selected");
        state.stats.queued_batches = state.queued();
        Some(batch)
    }

    /// Report a batch finished (successfully or not): releases the tenant's
    /// in-flight bytes.
    pub fn complete(&mut self, tenant: &str, bytes: u64) {
        if let Some(state) = self.tenants.get_mut(tenant) {
            state.stats.in_flight_bytes = state.stats.in_flight_bytes.saturating_sub(bytes);
        }
    }

    /// Total batches queued across all tenants.
    pub fn queued(&self) -> usize {
        self.tenants.values().map(TenantState::queued).sum()
    }

    /// Per-tenant metrics snapshot.
    pub fn metrics(&self) -> AdmissionMetrics {
        self.tenants
            .iter()
            .map(|(name, state)| (name.clone(), state.stats))
            .collect()
    }
}

/// Heuristic back-off for quota kinds with no refill clock.
const STATIC_RETRY_AFTER: Duration = Duration::from_millis(250);

/// Upper bound on any reported back-off; also the cap that keeps a pathological
/// `deficit / rate` from overflowing `Duration::from_secs_f64`.
const MAX_RETRY_AFTER: Duration = Duration::from_secs(3600);

fn admission_verdict(
    state: &mut TenantState,
    count: u64,
    bytes: u64,
    now: Instant,
) -> Result<(), Shed> {
    if let Some(limit) = state.quota.max_queued_batches {
        let queued = state.queued();
        if queued >= limit {
            return Err(Shed::QueueFull {
                queued,
                limit,
                retry_after: STATIC_RETRY_AFTER,
            });
        }
    }
    if let Some(limit_bytes) = state.quota.max_in_flight_bytes {
        // A batch bigger than the whole bound cannot be admitted even from an idle
        // state — surface that as a permanent rejection, not a retryable shed.
        if bytes > limit_bytes {
            return Err(Shed::BatchTooLarge { bytes, limit_bytes });
        }
        if state.stats.in_flight_bytes + bytes > limit_bytes {
            return Err(Shed::ByteQuota {
                in_flight_bytes: state.stats.in_flight_bytes,
                limit_bytes,
                retry_after: STATIC_RETRY_AFTER,
            });
        }
    }
    if let Some(bucket) = &mut state.bucket {
        if let Err(retry_after) = bucket.take(count as f64, now) {
            return Err(Shed::RateLimited { retry_after });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch(n: usize, tag: &str) -> Vec<String> {
        (0..n).map(|i| format!("{tag} record {i}")).collect()
    }

    #[test]
    fn open_quota_admits_everything() {
        let mut admission = Admission::new(AdmissionConfig::default());
        let now = Instant::now();
        for i in 0..100 {
            admission
                .submit("t", "topic", batch(1_000, &format!("b{i}")), now)
                .expect("open quota never sheds");
        }
        let metrics = admission.metrics();
        assert_eq!(metrics["t"].admitted_batches, 100);
        assert_eq!(metrics["t"].shed_batches, 0);
    }

    #[test]
    fn token_bucket_sheds_past_burst_and_recovers_with_time() {
        let quota = TenantQuota::default().with_rate(100.0).with_burst(50);
        let config = AdmissionConfig::default().with_default_quota(quota);
        let mut admission = Admission::new(config);
        let t0 = Instant::now();
        admission
            .submit("t", "topic", batch(50, "a"), t0)
            .expect("burst covers the first 50 records");
        let shed = admission
            .submit("t", "topic", batch(10, "b"), t0)
            .expect_err("bucket is empty");
        let Shed::RateLimited { retry_after } = shed else {
            panic!("expected RateLimited, got {shed:?}");
        };
        // 10 records at 100/s need 100ms of refill.
        assert!(retry_after >= Duration::from_millis(99), "{retry_after:?}");
        assert!(retry_after <= Duration::from_millis(101), "{retry_after:?}");
        // Advance the injected clock past the deficit: admission resumes.
        let later = t0 + Duration::from_millis(150);
        admission
            .submit("t", "topic", batch(10, "b"), later)
            .expect("refilled bucket admits again");
        let stats = admission.metrics()["t"];
        assert_eq!(stats.admitted_records, 60);
        assert_eq!(stats.shed_records, 10);
    }

    #[test]
    fn byte_quota_sheds_until_completion_releases_bytes() {
        let quota = TenantQuota::default().with_max_in_flight_bytes(200);
        let config = AdmissionConfig::default().with_default_quota(quota);
        let mut admission = Admission::new(config);
        let now = Instant::now();
        let records = vec!["x".repeat(150)];
        admission
            .submit("t", "topic", records.clone(), now)
            .expect("first 150 bytes fit");
        let shed = admission
            .submit("t", "topic", records.clone(), now)
            .expect_err("300 bytes in flight would exceed 200");
        assert!(matches!(shed, Shed::ByteQuota { .. }), "{shed:?}");
        // The engine finishes the first batch; its bytes are released.
        let admitted = admission.next_batch().expect("one batch queued");
        admission.complete("t", admitted.bytes);
        admission
            .submit("t", "topic", records, now)
            .expect("released bytes admit the retry");
    }

    #[test]
    fn full_queue_sheds_with_queue_full() {
        let quota = TenantQuota::default().with_max_queued_batches(2);
        let config = AdmissionConfig::default().with_default_quota(quota);
        let mut admission = Admission::new(config);
        let now = Instant::now();
        admission.submit("t", "topic", batch(1, "a"), now).unwrap();
        admission.submit("t", "topic", batch(1, "b"), now).unwrap();
        let shed = admission
            .submit("t", "topic", batch(1, "c"), now)
            .expect_err("queue bound is 2");
        assert!(
            matches!(
                shed,
                Shed::QueueFull {
                    queued: 2,
                    limit: 2,
                    ..
                }
            ),
            "{shed:?}"
        );
        // Scheduling (not completion) frees queue slots.
        admission.next_batch().expect("pop one");
        admission
            .submit("t", "topic", batch(1, "c"), now)
            .expect("slot freed");
    }

    #[test]
    fn scheduling_round_robins_across_tenants_and_topics() {
        let mut admission = Admission::new(AdmissionConfig::default());
        let now = Instant::now();
        // Tenant "flood" queues 6 batches over two topics; "quiet" queues 2.
        for i in 0..3 {
            admission
                .submit("flood", "t1", batch(1, &format!("f1-{i}")), now)
                .unwrap();
            admission
                .submit("flood", "t2", batch(1, &format!("f2-{i}")), now)
                .unwrap();
        }
        admission.submit("quiet", "t", batch(1, "q0"), now).unwrap();
        admission.submit("quiet", "t", batch(1, "q1"), now).unwrap();
        let mut order = Vec::new();
        while let Some(admitted) = admission.next_batch() {
            order.push((admitted.tenant.clone(), admitted.topic.clone()));
        }
        assert_eq!(order.len(), 8);
        // Both "quiet" batches must run within the first four pulls (strict
        // alternation while both tenants have work), and "flood"'s two topics must
        // interleave rather than draining t1 first.
        let quiet_positions: Vec<usize> = order
            .iter()
            .enumerate()
            .filter(|(_, (tenant, _))| tenant == "quiet")
            .map(|(i, _)| i)
            .collect();
        assert!(quiet_positions[1] <= 3, "quiet starved: {order:?}");
        let flood_topics: Vec<&str> = order
            .iter()
            .filter(|(tenant, _)| tenant == "flood")
            .map(|(_, topic)| topic.as_str())
            .collect();
        assert_eq!(flood_topics[0], "t1");
        assert_eq!(flood_topics[1], "t2", "topics must interleave: {order:?}");
    }

    #[test]
    fn per_tenant_overrides_beat_the_default() {
        let config = AdmissionConfig::default()
            .with_default_quota(TenantQuota::default().with_rate(1.0).with_burst(1))
            .with_tenant_quota("vip", TenantQuota::default());
        let mut admission = Admission::new(config);
        let now = Instant::now();
        admission
            .submit("vip", "topic", batch(100_000, "big"), now)
            .expect("vip override is unlimited");
        assert!(admission
            .submit("pleb", "topic", batch(100_000, "big"), now)
            .is_err());
    }

    #[test]
    fn oversized_batch_is_a_permanent_rejection() {
        let quota = TenantQuota::default().with_max_in_flight_bytes(100);
        let config = AdmissionConfig::default().with_default_quota(quota);
        let mut admission = Admission::new(config);
        let now = Instant::now();
        // Zero bytes in flight, yet the batch alone exceeds the bound: no retry
        // could ever admit it, so it must not look like a transient shed.
        let shed = admission
            .submit("t", "topic", vec!["x".repeat(150)], now)
            .expect_err("150 bytes can never fit a 100-byte bound");
        assert_eq!(
            shed,
            Shed::BatchTooLarge {
                bytes: 150,
                limit_bytes: 100
            }
        );
        assert_eq!(shed.retry_after(), None);
        // A batch that fits is still a transient ByteQuota shed once in flight.
        admission
            .submit("t", "topic", vec!["y".repeat(80)], now)
            .expect("80 bytes fit");
        let shed = admission
            .submit("t", "topic", vec!["y".repeat(80)], now)
            .expect_err("second 80 bytes exceed the bound transiently");
        assert!(matches!(shed, Shed::ByteQuota { .. }), "{shed:?}");
        assert!(shed.retry_after().is_some());
    }

    #[test]
    fn pathological_rates_clamp_retry_after_instead_of_panicking() {
        let quota = TenantQuota::default()
            .with_rate(f64::MIN_POSITIVE)
            .with_burst(1);
        let config = AdmissionConfig::default().with_default_quota(quota);
        let mut admission = Admission::new(config);
        let shed = admission
            .submit("t", "topic", batch(1_000_000, "huge"), Instant::now())
            .expect_err("bucket can never cover the batch");
        let Shed::RateLimited { retry_after } = shed else {
            panic!("expected RateLimited, got {shed:?}");
        };
        assert_eq!(retry_after, MAX_RETRY_AFTER);
    }

    #[test]
    fn tickets_are_unique_and_monotonic() {
        let mut admission = Admission::new(AdmissionConfig::default());
        let now = Instant::now();
        let a = admission.submit("t", "x", batch(1, "a"), now).unwrap();
        let b = admission.submit("t", "y", batch(1, "b"), now).unwrap();
        assert!(b > a);
    }
}
