//! The query API (§3 "Query", §6): group stored records by template at a per-query
//! precision threshold, without reprocessing any log.

use crate::topic::LogTopic;
use bytebrain::query::{merge_consecutive_wildcards, resolve_with_threshold};
use bytebrain::NodeId;
use std::collections::HashMap;

/// Options controlling one query.
#[derive(Debug, Clone, Copy)]
pub struct QueryOptions {
    /// Saturation threshold: higher values request more precise templates. This is the
    /// value the production UI exposes as an interactive slider.
    pub saturation_threshold: f64,
    /// Maximum number of template groups to return (largest first); `usize::MAX` for all.
    pub limit: usize,
}

impl Default for QueryOptions {
    fn default() -> Self {
        QueryOptions {
            saturation_threshold: 0.9,
            limit: usize::MAX,
        }
    }
}

/// One group of query results: a template and the records it covers.
#[derive(Debug, Clone)]
pub struct TemplateGroup {
    /// Resolved template node.
    pub node: NodeId,
    /// Presentation template text (consecutive wildcards merged, §7).
    pub template: String,
    /// Saturation of the resolved node.
    pub saturation: f64,
    /// Indices (into the topic's record store) of the member records.
    pub record_indices: Vec<usize>,
}

impl TemplateGroup {
    /// Number of member records.
    pub fn count(&self) -> usize {
        self.record_indices.len()
    }
}

/// Query engine over a topic's stored records.
#[derive(Debug)]
pub struct QueryEngine<'a> {
    topic: &'a LogTopic,
}

impl<'a> QueryEngine<'a> {
    /// Create a query engine borrowing the topic.
    pub fn new(topic: &'a LogTopic) -> Self {
        QueryEngine { topic }
    }

    /// Group all stored records by template at the requested precision.
    pub fn group_by_template(&self, options: QueryOptions) -> Vec<TemplateGroup> {
        let model = self.topic.model();
        // Presentation-level grouping (§7): after resolving each record's node at the
        // requested threshold, groups whose *merged-wildcard* text coincides are combined
        // so variable-length variants present as one template.
        let mut groups: HashMap<String, (NodeId, Vec<usize>)> = HashMap::new();
        for (idx, stored) in self.topic.records().iter().enumerate() {
            let Some(node) = stored.template else {
                continue;
            };
            let resolved = resolve_with_threshold(model, node, options.saturation_threshold);
            let text = merge_consecutive_wildcards(&model.nodes[resolved.0].template_text());
            let entry = groups.entry(text).or_insert_with(|| (resolved, Vec::new()));
            entry.1.push(idx);
        }
        let mut out: Vec<TemplateGroup> = groups
            .into_iter()
            .map(|(template, (node, record_indices))| TemplateGroup {
                node,
                saturation: model.nodes[node.0].saturation,
                template,
                record_indices,
            })
            .collect();
        out.sort_by(|a, b| b.count().cmp(&a.count()).then(a.template.cmp(&b.template)));
        out.truncate(options.limit);
        out
    }

    /// Distribution of record counts per template at the requested precision, keyed by
    /// template text. Used by the comparison and anomaly-detection features.
    pub fn template_distribution(&self, threshold: f64) -> HashMap<String, u64> {
        self.group_by_template(QueryOptions {
            saturation_threshold: threshold,
            limit: usize::MAX,
        })
        .into_iter()
        .map(|g| {
            let count = g.count() as u64;
            (g.template, count)
        })
        .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topic::{LogTopic, TopicConfig};

    fn topic_with_data() -> LogTopic {
        let mut topic = LogTopic::new(TopicConfig::new("query-test"));
        let mut batch = Vec::new();
        for i in 0..120 {
            batch.push(format!("user u{} logged in from 10.0.0.{}", i % 10, i % 20));
            batch.push(format!(
                "user u{} logged out after {} minutes",
                i % 10,
                i % 50
            ));
            if i % 4 == 0 {
                batch.push(format!(
                    "payment of {} EUR processed for order {}",
                    i,
                    1000 + i
                ));
            }
        }
        topic.ingest(&batch);
        topic
    }

    #[test]
    fn grouping_covers_all_assigned_records() {
        let topic = topic_with_data();
        let engine = QueryEngine::new(&topic);
        let groups = engine.group_by_template(QueryOptions::default());
        let covered: usize = groups.iter().map(|g| g.count()).sum();
        assert_eq!(covered, topic.records().len());
        assert!(!groups.is_empty());
    }

    #[test]
    fn groups_are_sorted_by_size() {
        let topic = topic_with_data();
        let groups = QueryEngine::new(&topic).group_by_template(QueryOptions::default());
        for pair in groups.windows(2) {
            assert!(pair[0].count() >= pair[1].count());
        }
    }

    #[test]
    fn lower_threshold_gives_coarser_grouping() {
        let topic = topic_with_data();
        let engine = QueryEngine::new(&topic);
        let fine = engine.group_by_template(QueryOptions {
            saturation_threshold: 0.95,
            limit: usize::MAX,
        });
        let coarse = engine.group_by_template(QueryOptions {
            saturation_threshold: 0.05,
            limit: usize::MAX,
        });
        assert!(coarse.len() <= fine.len());
    }

    #[test]
    fn limit_truncates_output() {
        let topic = topic_with_data();
        let groups = QueryEngine::new(&topic).group_by_template(QueryOptions {
            saturation_threshold: 0.9,
            limit: 2,
        });
        assert!(groups.len() <= 2);
    }

    #[test]
    fn distribution_counts_match_groups() {
        let topic = topic_with_data();
        let engine = QueryEngine::new(&topic);
        let distribution = engine.template_distribution(0.9);
        let total: u64 = distribution.values().sum();
        assert_eq!(total, topic.records().len() as u64);
    }

    #[test]
    fn templates_contain_wildcards_for_variables() {
        let topic = topic_with_data();
        let groups = QueryEngine::new(&topic).group_by_template(QueryOptions::default());
        let login_group = groups
            .iter()
            .find(|g| g.template.contains("logged in"))
            .expect("login template exists");
        assert!(login_group.template.contains('*'));
    }
}
