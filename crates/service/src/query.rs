//! The query subsystem (§3 "Query", §6): one planned `execute` path fed by
//! thin AST constructors.
//!
//! Every public query entry point — [`LogTopic::query`],
//! [`LogTopic::template_distribution`], the anomaly and comparison features,
//! the [`crate::manager::ServiceManager`] forwarding methods — builds a
//! [`bytebrain::Query`] AST, plans it ([`QueryPlan`]) and hands the plan to
//! the single [`LogTopic::execute`] entry point. Two executors exist and are
//! kept byte-identical by the differential suite:
//!
//! * the **planned path** (`run_plan`, the serving path): template
//!   predicates are decided once per resolved node against the live node set,
//!   threshold resolution goes through [`SaturationLadder::resolve_batch`],
//!   and grouping streams over per-node postings ([`QueryIndex`]) so a
//!   predicate-free query touches one posting list per *template* instead of
//!   one entry per *record*. Record-level predicates (variable filters, time
//!   windows) consult per-segment column summaries first
//!   ([`crate::storage::SegmentSummary`]): segments whose summaries rule out
//!   a required conjunct are skipped wholesale before any record is touched.
//!   Results are memoized in an LRU [`QueryCache`] keyed by the canonical
//!   plan fingerprint plus `(model version, topic generation, record count)`;
//! * the **scan oracle** ([`QueryEngine::execute_scan`]): the naive
//!   per-record ancestor walk with per-record predicate evaluation, retained
//!   purely as the differential reference.
//!
//! Both paths resolve templates through the same core semantics: retired
//! nodes are skipped to the nearest live ancestor, the full chain is scanned
//! for the coarsest qualifying ancestor, and thresholds are sanitized
//! identically — clamped by [`bytebrain::clamp_threshold`] and (for the
//! options-based entry points) snapped to the slider's 1/1000 grid. When
//! presentation merging (§7) combines several nodes under one
//! merged-wildcard text, the reported representative node is deterministic —
//! the member with the largest record count, ties broken by the smallest
//! [`NodeId`] — and the reported saturation is the minimum across the merged
//! nodes (the honest precision of the combined group).

use crate::topic::{variables_of, LogTopic, StoredRecord};
use bytebrain::query::ast::Query;
use bytebrain::query::plan::{CompiledPredicate, PlanOutput, QueryPlan, RecordView};
use bytebrain::query::{
    clamp_threshold, merge_consecutive_wildcards, resolve_with_threshold, SaturationLadder,
};
use bytebrain::{NodeId, ParserModel};
use logtok::Preprocessor;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
use std::sync::Mutex;

/// Options controlling one options-based (predicate-free) query.
#[derive(Debug, Clone, Copy)]
pub struct QueryOptions {
    /// Saturation threshold: higher values request more precise templates. This is the
    /// value the production UI exposes as an interactive slider. NaN falls back to the
    /// default (0.9); values outside `[0, 1]` are clamped, and queries snap the value
    /// to the slider's 1/1000 grid.
    pub saturation_threshold: f64,
    /// Maximum number of template groups to return (largest first); `usize::MAX` for all.
    pub limit: usize,
}

impl Default for QueryOptions {
    fn default() -> Self {
        QueryOptions {
            saturation_threshold: bytebrain::DEFAULT_THRESHOLD,
            limit: usize::MAX,
        }
    }
}

/// Sanitize a threshold for the service query surface: the single core clamp
/// ([`bytebrain::clamp_threshold`]: NaN → default, out-of-range → clamped) plus a snap
/// to the slider's 1/1000 grid — so the canonical plan (whose fingerprint keys the
/// query cache) always describes exactly the threshold the cached result was computed
/// at, and the planned and scan paths quantize identically. Core resolution called
/// directly (outside this module) keeps exact thresholds.
fn sanitize_threshold(threshold: f64) -> f64 {
    (clamp_threshold(threshold) * 1_000.0).round() / 1_000.0
}

impl QueryOptions {
    /// The options with the threshold sanitized: NaN → default, out-of-range →
    /// clamped, and snapped to the service's 1/1000 slider grid (both query paths and
    /// the cache key quantize through this one function).
    pub fn sanitized(mut self) -> Self {
        self.saturation_threshold = sanitize_threshold(self.saturation_threshold);
        self
    }

    /// The plan this options struct describes: a predicate-free `group_by`
    /// (or `top_k` when a limit is set) at the sanitized threshold. This is
    /// the thin-constructor bridge from the legacy options surface onto the
    /// AST path.
    pub fn to_plan(self) -> QueryPlan {
        let sanitized = self.sanitized();
        let query = if sanitized.limit == usize::MAX {
            Query::group_by()
        } else {
            Query::top_k(sanitized.limit)
        };
        query
            .at_threshold(sanitized.saturation_threshold)
            .plan()
            .expect("predicate-free queries always plan")
    }
}

/// Build the (cached) distribution plan for a raw threshold.
fn distribution_plan(threshold: f64) -> QueryPlan {
    Query::distribution()
        .at_threshold(sanitize_threshold(threshold))
        .plan()
        .expect("predicate-free queries always plan")
}

/// One group of query results: a template and the records it covers.
#[derive(Debug, Clone, PartialEq)]
pub struct TemplateGroup {
    /// Resolved template node. When presentation merging combined several nodes, this
    /// is the member covering the most records (ties broken by smallest node id).
    pub node: NodeId,
    /// Presentation template text (consecutive wildcards merged, §7).
    pub template: String,
    /// Saturation of the group: the minimum across all merged member nodes.
    pub saturation: f64,
    /// Indices (into the topic's record store) of the member records, ascending.
    pub record_indices: Vec<usize>,
}

impl TemplateGroup {
    /// Number of member records.
    pub fn count(&self) -> usize {
        self.record_indices.len()
    }
}

/// The result of executing a [`QueryPlan`]: one variant per
/// [`PlanOutput`] shape. Aggregate results are shared via `Arc`, so cloning
/// a value (and every cache hit) is a reference-count bump, never a copy of
/// the member index lists.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryValue {
    /// Template groups, largest first.
    Groups(Arc<Vec<TemplateGroup>>),
    /// `(template, count)` pairs, sorted by count descending then template
    /// ascending — deterministic, unlike the `HashMap` this API used to
    /// return.
    Distribution(Arc<Vec<(String, u64)>>),
    /// Number of distinct presentation templates with matching records.
    Count(u64),
}

impl QueryValue {
    /// The group list, if this is a groups result.
    pub fn groups(&self) -> Option<&Arc<Vec<TemplateGroup>>> {
        match self {
            QueryValue::Groups(groups) => Some(groups),
            _ => None,
        }
    }

    /// The distribution pairs, if this is a distribution result.
    pub fn distribution(&self) -> Option<&Arc<Vec<(String, u64)>>> {
        match self {
            QueryValue::Distribution(counts) => Some(counts),
            _ => None,
        }
    }

    /// The distinct-template count, if this is a count result.
    pub fn count(&self) -> Option<u64> {
        match self {
            QueryValue::Count(count) => Some(*count),
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------------
// Postings
// ---------------------------------------------------------------------------

/// Per-node postings: for every template node, the indices of the stored records whose
/// most-precise match is that node. Maintained by [`LogTopic`] at ingest/stream-flush
/// time (and patched when maintenance re-matches records), so queries aggregate counts
/// up the saturation ladder instead of scanning the record store.
#[derive(Debug, Clone, Default)]
pub struct QueryIndex {
    /// `postings[node]` = ascending record indices assigned to that node.
    postings: Vec<Vec<u32>>,
    /// Total number of assigned records across all postings.
    assigned: usize,
}

impl QueryIndex {
    /// An empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Grow the per-node posting table to cover `model_len` nodes.
    pub fn ensure_nodes(&mut self, model_len: usize) {
        if self.postings.len() < model_len {
            self.postings.resize_with(model_len, Vec::new);
        }
    }

    /// Record that stored record `idx` is assigned to `node`. Indices must be fed in
    /// ascending order per node (the natural ingest order), keeping postings sorted.
    pub fn assign(&mut self, node: NodeId, idx: usize) {
        self.ensure_nodes(node.0 + 1);
        debug_assert!(
            idx < u32::MAX as usize,
            "record index exceeds posting width"
        );
        self.postings[node.0].push(idx as u32);
        self.assigned += 1;
    }

    /// Move previously assigned records to new nodes after a maintenance re-match:
    /// `moves` holds `(record index, old node, new assignment)` triples.
    pub fn reassign(&mut self, moves: &[(usize, Option<NodeId>, Option<NodeId>)]) {
        // Batch removals per old node so each posting list is filtered once, with a
        // set membership test — a retired temporary can carry thousands of records,
        // and a linear `contains` per posting entry would go quadratic.
        let mut removed: HashMap<usize, std::collections::HashSet<u32>> = HashMap::new();
        for &(idx, old, _) in moves {
            if let Some(old) = old {
                removed.entry(old.0).or_default().insert(idx as u32);
            }
        }
        for (node, gone) in removed {
            self.postings[node].retain(|i| !gone.contains(i));
        }
        let mut added: BTreeMap<usize, Vec<u32>> = BTreeMap::new();
        for &(idx, _, new) in moves {
            if let Some(new) = new {
                added.entry(new.0).or_default().push(idx as u32);
            }
        }
        for (node, incoming) in added {
            self.ensure_nodes(node + 1);
            let posting = &mut self.postings[node];
            posting.extend(incoming);
            posting.sort_unstable();
        }
        self.assigned = self.postings.iter().map(|p| p.len()).sum();
    }

    /// Bulk-load one sealed segment's posting list for `node`: `locals` are
    /// segment-local record offsets, shifted by the segment's position `base` in the
    /// record store. Recovery rebuilds the whole index this way — straight from the
    /// columnar postings, without re-matching a single line. Segments must be fed in
    /// ascending sequence order (postings stay sorted).
    pub fn extend_posting(&mut self, node: NodeId, base: usize, locals: &[u32]) {
        self.ensure_nodes(node.0 + 1);
        self.postings[node.0].extend(locals.iter().map(|&local| base as u32 + local));
        self.assigned += locals.len();
    }

    /// Rebuild the whole index from the record store (used after a full retrain, which
    /// renumbers the tree and re-matches every record).
    pub fn rebuild(records: &[StoredRecord], model_len: usize) -> Self {
        let mut index = QueryIndex::new();
        index.ensure_nodes(model_len);
        for (idx, stored) in records.iter().enumerate() {
            if let Some(node) = stored.template {
                index.assign(node, idx);
            }
        }
        index
    }

    /// The posting list of one node (ascending record indices).
    pub fn postings_of(&self, node: NodeId) -> &[u32] {
        self.postings
            .get(node.0)
            .map(|p| p.as_slice())
            .unwrap_or(&[])
    }

    /// Total number of assigned records.
    pub fn assigned_records(&self) -> usize {
        self.assigned
    }

    /// Iterate `(node, posting list)` for nodes with at least one record.
    fn non_empty(&self) -> impl Iterator<Item = (NodeId, &[u32])> {
        self.postings
            .iter()
            .enumerate()
            .filter(|(_, p)| !p.is_empty())
            .map(|(id, p)| (NodeId(id), p.as_slice()))
    }
}

// ---------------------------------------------------------------------------
// Record access (planned path only)
// ---------------------------------------------------------------------------

/// Everything the planned executor needs to evaluate record-level predicates:
/// the record store, the preprocessor (for variable extraction), the sequence
/// number of the first stored record, and the push-down result — index ranges
/// that storage summaries proved cannot match, skipped before any record is
/// touched.
pub(crate) struct RecordAccess<'a> {
    pub(crate) records: &'a [StoredRecord],
    pub(crate) preprocessor: &'a Preprocessor,
    /// Sequence number of `records[0]` (`first_live_seq` for durable topics).
    pub(crate) first_seq: u64,
    /// Sorted, disjoint, half-open record-index ranges proven non-matching by
    /// segment summaries.
    pub(crate) skip: Vec<(usize, usize)>,
}

impl RecordAccess<'_> {
    fn skipped(&self, idx: usize) -> bool {
        let pos = self.skip.partition_point(|&(start, _)| start <= idx);
        pos > 0 && self.skip[pos - 1].1 > idx
    }
}

// ---------------------------------------------------------------------------
// Group assembly (shared by the planned and scan paths)
// ---------------------------------------------------------------------------

/// Accumulator for one presentation-text group while aggregating member nodes.
#[derive(Debug, Default)]
struct GroupAccumulator {
    /// Record count per resolved member node (BTreeMap: deterministic iteration for
    /// the representative rule).
    members: BTreeMap<NodeId, usize>,
    /// All member record indices (sorted ascending before output). Only
    /// populated for group outputs — distribution and count queries stay
    /// counts-only.
    record_indices: Vec<usize>,
}

/// Assemble final groups from per-text accumulators: deterministic representative
/// (largest member count, ties → smallest node id), minimum saturation across merged
/// nodes, ascending record indices, groups sorted largest-first.
fn finish_groups(
    model: &ParserModel,
    groups: HashMap<String, GroupAccumulator>,
    limit: usize,
) -> Vec<TemplateGroup> {
    let mut out: Vec<TemplateGroup> = groups
        .into_iter()
        .map(|(template, mut acc)| {
            let mut representative = None;
            let mut best_count = 0usize;
            let mut saturation = f64::INFINITY;
            for (&node, &count) in &acc.members {
                // Ascending NodeId iteration: strict `>` keeps the smallest id on ties.
                if count > best_count {
                    best_count = count;
                    representative = Some(node);
                }
                saturation = saturation.min(model.nodes[node.0].saturation);
            }
            acc.record_indices.sort_unstable();
            TemplateGroup {
                node: representative.expect("group has at least one member node"),
                template,
                saturation,
                record_indices: acc.record_indices,
            }
        })
        .collect();
    out.sort_by(|a, b| b.count().cmp(&a.count()).then(a.template.cmp(&b.template)));
    out.truncate(limit);
    out
}

/// Assemble the deterministic distribution: `(template, count)` pairs sorted
/// by count descending, ties by template ascending — the same order groups
/// use, so diffs and examples are stable run to run.
fn finish_distribution(groups: HashMap<String, GroupAccumulator>) -> Vec<(String, u64)> {
    let mut counts: Vec<(String, u64)> = groups
        .into_iter()
        .map(|(template, acc)| {
            let total: usize = acc.members.values().sum();
            (template, total as u64)
        })
        .collect();
    counts.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    counts
}

fn finish(
    model: &ParserModel,
    groups: HashMap<String, GroupAccumulator>,
    plan: &QueryPlan,
) -> QueryValue {
    match plan.output() {
        PlanOutput::Groups { limit } => {
            QueryValue::Groups(Arc::new(finish_groups(model, groups, limit)))
        }
        PlanOutput::Distribution => QueryValue::Distribution(Arc::new(finish_distribution(groups))),
        PlanOutput::Count => QueryValue::Count(groups.len() as u64),
    }
}

// ---------------------------------------------------------------------------
// The planned executor and the scan oracle
// ---------------------------------------------------------------------------

/// The planned execution path. Node-only work (threshold resolution via
/// [`SaturationLadder::resolve_batch`], template predicates, presentation
/// texts) happens once per posting node; record-level predicates run only
/// over posting entries that survived segment pruning (`access.skip`).
/// `access` may be `None` only for node-only plans (e.g. snapshots, which
/// carry no record store).
fn run_plan(
    model: &ParserModel,
    ladder: &SaturationLadder,
    index: &QueryIndex,
    access: Option<&RecordAccess<'_>>,
    plan: &QueryPlan,
) -> QueryValue {
    let nodes: Vec<NodeId> = index.non_empty().map(|(node, _)| node).collect();
    let resolved = ladder.resolve_batch(&nodes, plan.threshold());
    let compiled = plan.predicate().map(CompiledPredicate::compile);
    let node_only = plan.is_node_only();
    let want_indices = matches!(plan.output(), PlanOutput::Groups { .. });
    let mut text_of: HashMap<NodeId, String> = HashMap::new();
    let mut template_ok: HashMap<NodeId, bool> = HashMap::new();
    let mut groups: HashMap<String, GroupAccumulator> = HashMap::new();
    for ((_, posting), &res) in index.non_empty().zip(resolved.iter()) {
        let text = text_of
            .entry(res)
            .or_insert_with(|| merge_consecutive_wildcards(&model.nodes[res.0].template_text()))
            .clone();
        if node_only {
            if let Some(compiled) = &compiled {
                let ok = *template_ok
                    .entry(res)
                    .or_insert_with(|| compiled.matches_template(&text));
                if !ok {
                    continue;
                }
            }
            let acc = groups.entry(text).or_default();
            *acc.members.entry(res).or_insert(0) += posting.len();
            if want_indices {
                acc.record_indices
                    .extend(posting.iter().map(|&i| i as usize));
            }
        } else {
            let access = access.expect("record-level predicates require record access");
            let compiled = compiled
                .as_ref()
                .expect("record-level plans carry a predicate");
            let mut accepted = 0usize;
            let mut indices: Vec<usize> = Vec::new();
            for &i in posting {
                let idx = i as usize;
                if access.skipped(idx) {
                    continue;
                }
                let stored = &access.records[idx];
                let vars =
                    variables_of(model, access.preprocessor, &stored.record, stored.template);
                let view = RecordView {
                    template: &text,
                    seq: access.first_seq + idx as u64,
                    variables: &vars,
                };
                if compiled.matches(&view) {
                    accepted += 1;
                    if want_indices {
                        indices.push(idx);
                    }
                }
            }
            if accepted > 0 {
                let acc = groups.entry(text).or_default();
                *acc.members.entry(res).or_insert(0) += accepted;
                acc.record_indices.extend(indices);
            }
        }
    }
    finish(model, groups, plan)
}

/// The retained scan oracle: resolve every stored record through the
/// pointer-walk path, extract its variables, and evaluate the full predicate
/// per record — no postings, no ladder, no pruning. Differential-identical
/// to [`run_plan`] by test. `preprocessor` is only needed when the plan
/// carries a predicate (variable extraction).
fn scan_plan(
    model: &ParserModel,
    preprocessor: Option<&Preprocessor>,
    records: &[StoredRecord],
    first_seq: u64,
    plan: &QueryPlan,
) -> QueryValue {
    let compiled = plan.predicate().map(CompiledPredicate::compile);
    let want_indices = matches!(plan.output(), PlanOutput::Groups { .. });
    let mut groups: HashMap<String, GroupAccumulator> = HashMap::new();
    for (idx, stored) in records.iter().enumerate() {
        let Some(node) = stored.template else {
            continue;
        };
        let resolved = resolve_with_threshold(model, node, plan.threshold());
        let text = merge_consecutive_wildcards(&model.nodes[resolved.0].template_text());
        if let Some(compiled) = &compiled {
            let preprocessor =
                preprocessor.expect("scanning with a predicate requires the preprocessor");
            let vars = variables_of(model, preprocessor, &stored.record, stored.template);
            let view = RecordView {
                template: &text,
                seq: first_seq + idx as u64,
                variables: &vars,
            };
            if !compiled.matches(&view) {
                continue;
            }
        }
        let acc = groups.entry(text).or_default();
        *acc.members.entry(resolved).or_insert(0) += 1;
        if want_indices {
            acc.record_indices.push(idx);
        }
    }
    finish(model, groups, plan)
}

/// Options-based planned grouping (used by snapshots and module tests).
fn indexed_groups(
    model: &ParserModel,
    ladder: &SaturationLadder,
    index: &QueryIndex,
    options: QueryOptions,
) -> Vec<TemplateGroup> {
    match run_plan(model, ladder, index, None, &options.to_plan()) {
        QueryValue::Groups(groups) => Arc::try_unwrap(groups).unwrap_or_else(|arc| (*arc).clone()),
        _ => unreachable!("groups plan yields groups"),
    }
}

/// Options-based scan grouping (the predicate-free oracle surface).
fn scan_groups(
    model: &ParserModel,
    records: &[StoredRecord],
    options: QueryOptions,
) -> Vec<TemplateGroup> {
    match scan_plan(model, None, records, 0, &options.to_plan()) {
        QueryValue::Groups(groups) => Arc::try_unwrap(groups).unwrap_or_else(|arc| (*arc).clone()),
        _ => unreachable!("groups plan yields groups"),
    }
}

// ---------------------------------------------------------------------------
// Query cache
// ---------------------------------------------------------------------------

/// Cache key: model version + topic generation + record count pin the topic state;
/// the canonical plan fingerprint ([`QueryPlan::fingerprint`]) pins *what* was asked —
/// threshold, output shape, and the normalized predicate. Two different ASTs can
/// never collide on a key (the old `(threshold, limit)` key could not tell a
/// filtered query from an unfiltered one).
///
/// The **generation** (bumped on recovery, TTL retention and compaction) exists
/// because `(version, record count)` stops being sound once state persists: retention
/// can evict old records and later ingest can bring the count back to a previously
/// cached value with the model version unchanged — a different record *set* under an
/// identical key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct CacheKey {
    version: u64,
    generation: u64,
    records: usize,
    plan: u64,
}

impl CacheKey {
    fn new(version: u64, generation: u64, records: usize, plan: &QueryPlan) -> Self {
        CacheKey {
            version,
            generation,
            records,
            plan: plan.fingerprint(),
        }
    }
}

/// A small LRU cache of query results, safe to use through `&self` (interior mutex) so
/// concurrent readers of a topic can share it. Invalidated wholesale when maintenance
/// hot-swaps the model; naturally missed when the version or record count moves.
#[derive(Debug, Default)]
pub struct QueryCache {
    inner: Mutex<CacheInner>,
}

#[derive(Debug, Default)]
struct CacheInner {
    /// Most recently used first. Results are shared via `Arc` inside
    /// [`QueryValue`], so a cache hit is a reference-count bump — never a
    /// copy of the (potentially record-count-sized) member index lists.
    entries: Vec<(CacheKey, QueryValue)>,
    hits: u64,
    misses: u64,
}

/// Maximum number of cached query results per topic (one per slider stop, roughly).
const QUERY_CACHE_CAPACITY: usize = 16;

impl QueryCache {
    fn get(&self, key: CacheKey) -> Option<QueryValue> {
        let mut inner = self.inner.lock().expect("query cache poisoned");
        if let Some(pos) = inner.entries.iter().position(|(k, _)| *k == key) {
            let entry = inner.entries.remove(pos);
            let result = entry.1.clone();
            inner.entries.insert(0, entry);
            inner.hits += 1;
            Some(result)
        } else {
            inner.misses += 1;
            None
        }
    }

    fn put(&self, key: CacheKey, value: QueryValue) {
        let mut inner = self.inner.lock().expect("query cache poisoned");
        inner.entries.retain(|(k, _)| *k != key);
        inner.entries.insert(0, (key, value));
        inner.entries.truncate(QUERY_CACHE_CAPACITY);
    }

    /// Drop every cached result (called when maintenance hot-swaps the model).
    pub fn clear(&self) {
        self.inner
            .lock()
            .expect("query cache poisoned")
            .entries
            .clear();
    }

    /// `(hits, misses)` counters since topic creation.
    pub fn stats(&self) -> (u64, u64) {
        let inner = self.inner.lock().expect("query cache poisoned");
        (inner.hits, inner.misses)
    }
}

// ---------------------------------------------------------------------------
// Snapshot
// ---------------------------------------------------------------------------

/// A self-contained, immutable snapshot of everything a node-level query needs —
/// model, ladder and postings behind `Arc`s — so queries can be served from other
/// threads while the topic keeps ingesting (the topic copies-on-write whatever the
/// snapshot still shares). Snapshots carry no record store, so they serve the
/// node-only query surface (grouping, distribution); record-level predicates need
/// the topic itself.
#[derive(Debug, Clone)]
pub struct QuerySnapshot {
    model: Arc<ParserModel>,
    ladder: Arc<SaturationLadder>,
    index: Arc<QueryIndex>,
    version: u64,
}

impl QuerySnapshot {
    pub(crate) fn new(
        model: Arc<ParserModel>,
        ladder: Arc<SaturationLadder>,
        index: Arc<QueryIndex>,
        version: u64,
    ) -> Self {
        QuerySnapshot {
            model,
            ladder,
            index,
            version,
        }
    }

    /// The model snapshot the queries resolve against.
    pub fn model(&self) -> &ParserModel {
        &self.model
    }

    /// The model version this snapshot was taken at.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Number of records covered by the snapshot's postings.
    pub fn records(&self) -> usize {
        self.index.assigned_records()
    }

    /// Group the snapshot's records by template at the requested precision (planned
    /// path, uncached — snapshots are cheap and short-lived).
    pub fn group_by_template(&self, options: QueryOptions) -> Vec<TemplateGroup> {
        indexed_groups(&self.model, &self.ladder, &self.index, options)
    }

    /// Distribution of record counts per template at the requested precision:
    /// deterministic `(template, count)` pairs sorted by count descending then
    /// template ascending.
    pub fn template_distribution(&self, threshold: f64) -> Vec<(String, u64)> {
        match run_plan(
            &self.model,
            &self.ladder,
            &self.index,
            None,
            &distribution_plan(threshold),
        ) {
            QueryValue::Distribution(counts) => {
                Arc::try_unwrap(counts).unwrap_or_else(|arc| (*arc).clone())
            }
            _ => unreachable!("distribution plan yields a distribution"),
        }
    }
}

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

/// Query engine over a topic's stored records.
#[derive(Debug)]
pub struct QueryEngine<'a> {
    topic: &'a LogTopic,
}

impl<'a> QueryEngine<'a> {
    /// Create a query engine borrowing the topic.
    pub fn new(topic: &'a LogTopic) -> Self {
        QueryEngine { topic }
    }

    /// Execute a plan through the planned push-down path, **uncached**: always
    /// a fresh computation (segment pruning included). The serving path,
    /// [`LogTopic::execute`], adds the LRU cache on top.
    pub fn execute(&self, plan: &QueryPlan) -> QueryValue {
        let access = self.topic.record_access(plan);
        run_plan(
            self.topic.model(),
            self.topic.ladder(),
            self.topic.query_index(),
            access.as_ref(),
            plan,
        )
    }

    /// Execute a plan through the naive scan oracle: per-record ancestor
    /// walks, per-record predicate evaluation, no postings and no pruning.
    /// Byte-identical to [`QueryEngine::execute`] (the differential suite
    /// enforces it) but O(records) per query — kept for verification and
    /// benchmarking, not serving.
    pub fn execute_scan(&self, plan: &QueryPlan) -> QueryValue {
        scan_plan(
            self.topic.model(),
            Some(self.topic.preprocessor()),
            self.topic.records(),
            self.topic.first_record_seq(),
            plan,
        )
    }

    /// Group all stored records by template at the requested precision, via the
    /// planned path (postings aggregated up the saturation ladder, LRU-cached).
    /// Materialises an owned copy of the result; the serving path
    /// ([`LogTopic::query`] / `ServiceManager::query`) hands out the cache-shared
    /// `Arc` instead.
    pub fn group_by_template(&self, options: QueryOptions) -> Vec<TemplateGroup> {
        self.topic.query(options).as_ref().clone()
    }

    /// The retained scan reference for the options surface: per-record ancestor
    /// walks over the whole record store. Byte-identical to
    /// [`QueryEngine::group_by_template`] (the differential suite enforces it).
    pub fn group_by_template_scan(&self, options: QueryOptions) -> Vec<TemplateGroup> {
        scan_groups(self.topic.model(), self.topic.records(), options)
    }

    /// Distribution of record counts per template at the requested precision
    /// (planned path): deterministic sorted `(template, count)` pairs. Used by
    /// the comparison and anomaly-detection features.
    pub fn template_distribution(&self, threshold: f64) -> Vec<(String, u64)> {
        self.topic.template_distribution(threshold)
    }
}

// ---------------------------------------------------------------------------
// Topic-facing plumbing (kept here so the whole query subsystem lives in one module)
// ---------------------------------------------------------------------------

impl LogTopic {
    /// **The** query entry point: execute a normalized [`QueryPlan`] through
    /// the planned push-down path with the LRU cache in front. Every other
    /// query method on the topic, engine, and manager is a thin AST
    /// constructor over this.
    ///
    /// The cache key is `(model version, topic generation, record count,
    /// canonical plan fingerprint)`; a warm hit is a reference-count bump on
    /// the shared [`QueryValue`], never a copy.
    pub fn execute(&self, plan: &QueryPlan) -> QueryValue {
        let key = CacheKey::new(
            self.model_version(),
            self.generation(),
            self.records().len(),
            plan,
        );
        if let Some(cached) = self.query_cache().get(key) {
            return cached;
        }
        let access = self.record_access(plan);
        let value = run_plan(
            self.model(),
            self.ladder(),
            self.query_index(),
            access.as_ref(),
            plan,
        );
        self.query_cache().put(key, value.clone());
        value
    }

    /// Group all stored records by template at the requested precision. Thin
    /// constructor: builds a predicate-free `group_by`/`top_k` plan and runs it
    /// through [`LogTopic::execute`]. The result is shared via `Arc`: a
    /// warm-cache query is a reference-count bump, not a copy of the member
    /// index lists.
    pub fn query(&self, options: QueryOptions) -> Arc<Vec<TemplateGroup>> {
        match self.execute(&options.to_plan()) {
            QueryValue::Groups(groups) => groups,
            _ => unreachable!("groups plan yields groups"),
        }
    }

    /// Distribution of record counts per template at the requested precision:
    /// deterministic `(template, count)` pairs sorted by count descending then
    /// template ascending. Thin constructor over [`LogTopic::execute`]
    /// (counts-only — no record index lists are materialised — and cached like
    /// every planned query).
    pub fn template_distribution(&self, threshold: f64) -> Vec<(String, u64)> {
        match self.execute(&distribution_plan(threshold)) {
            QueryValue::Distribution(counts) => (*counts).clone(),
            _ => unreachable!("distribution plan yields a distribution"),
        }
    }

    /// An immutable snapshot of the query state (model + ladder + postings), safe to
    /// move to other threads and query while this topic keeps ingesting.
    pub fn query_snapshot(&self) -> QuerySnapshot {
        QuerySnapshot::new(
            self.model_snapshot(),
            self.ladder_snapshot(),
            self.query_index_snapshot(),
            self.model_version(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topic::{LogTopic, TopicConfig};
    use bytebrain::{Predicate, TemplateToken, TreeNode};

    fn topic_with_data() -> LogTopic {
        let mut topic = LogTopic::new(TopicConfig::new("query-test"));
        let mut batch = Vec::new();
        for i in 0..120 {
            batch.push(format!("user u{} logged in from 10.0.0.{}", i % 10, i % 20));
            batch.push(format!(
                "user u{} logged out after {} minutes",
                i % 10,
                i % 50
            ));
            if i % 4 == 0 {
                batch.push(format!(
                    "payment of {} EUR processed for order {}",
                    i,
                    1000 + i
                ));
            }
        }
        topic.ingest(&batch);
        topic
    }

    #[test]
    fn grouping_covers_all_assigned_records() {
        let topic = topic_with_data();
        let engine = QueryEngine::new(&topic);
        let groups = engine.group_by_template(QueryOptions::default());
        let covered: usize = groups.iter().map(|g| g.count()).sum();
        assert_eq!(covered, topic.records().len());
        assert!(!groups.is_empty());
    }

    #[test]
    fn groups_are_sorted_by_size() {
        let topic = topic_with_data();
        let groups = QueryEngine::new(&topic).group_by_template(QueryOptions::default());
        for pair in groups.windows(2) {
            assert!(pair[0].count() >= pair[1].count());
        }
    }

    #[test]
    fn lower_threshold_gives_coarser_grouping() {
        let topic = topic_with_data();
        let engine = QueryEngine::new(&topic);
        let fine = engine.group_by_template(QueryOptions {
            saturation_threshold: 0.95,
            limit: usize::MAX,
        });
        let coarse = engine.group_by_template(QueryOptions {
            saturation_threshold: 0.05,
            limit: usize::MAX,
        });
        assert!(coarse.len() <= fine.len());
    }

    #[test]
    fn limit_truncates_output() {
        let topic = topic_with_data();
        let groups = QueryEngine::new(&topic).group_by_template(QueryOptions {
            saturation_threshold: 0.9,
            limit: 2,
        });
        assert!(groups.len() <= 2);
    }

    #[test]
    fn distribution_counts_match_groups() {
        let topic = topic_with_data();
        let engine = QueryEngine::new(&topic);
        let distribution = engine.template_distribution(0.9);
        let total: u64 = distribution.iter().map(|(_, count)| count).sum();
        assert_eq!(total, topic.records().len() as u64);
    }

    /// Satellite regression: the distribution is a deterministic sorted Vec on
    /// both paths — count descending, ties broken by template ascending —
    /// instead of a HashMap whose iteration order leaked into examples.
    #[test]
    fn distribution_is_deterministically_sorted_on_both_paths() {
        let topic = topic_with_data();
        let engine = QueryEngine::new(&topic);
        for threshold in [0.0, 0.5, 0.9, 1.0] {
            let planned = engine.template_distribution(threshold);
            for pair in planned.windows(2) {
                assert!(
                    pair[0].1 > pair[1].1 || (pair[0].1 == pair[1].1 && pair[0].0 < pair[1].0),
                    "distribution must sort by count desc then template asc: {pair:?}"
                );
            }
            let plan = Query::distribution()
                .at_threshold(threshold)
                .plan()
                .unwrap();
            let scanned = engine.execute_scan(&plan);
            assert_eq!(
                QueryValue::Distribution(Arc::new(planned.clone())),
                scanned,
                "planned and scan distributions diverged at threshold {threshold}"
            );
            // And the order itself is reproducible run to run.
            assert_eq!(planned, engine.template_distribution(threshold));
        }
    }

    #[test]
    fn templates_contain_wildcards_for_variables() {
        let topic = topic_with_data();
        let groups = QueryEngine::new(&topic).group_by_template(QueryOptions::default());
        let login_group = groups
            .iter()
            .find(|g| g.template.contains("logged in"))
            .expect("login template exists");
        assert!(login_group.template.contains('*'));
    }

    // -- planned vs scan ------------------------------------------------------

    #[test]
    fn indexed_path_is_byte_identical_to_scan_path() {
        let topic = topic_with_data();
        let engine = QueryEngine::new(&topic);
        for threshold in [0.0, 0.1, 0.3, 0.5, 0.7, 0.9, 0.95, 1.0, f64::NAN, -1.0, 2.0] {
            let options = QueryOptions {
                saturation_threshold: threshold,
                limit: usize::MAX,
            };
            assert_eq!(
                engine.group_by_template(options),
                engine.group_by_template_scan(options),
                "indexed and scan paths diverged at threshold {threshold}"
            );
        }
    }

    /// Every operator on an in-memory topic: planned ≡ scan oracle. (The
    /// heavyweight version — durable topics, deltas, recovery — lives in
    /// `tests/differential.rs`.)
    #[test]
    fn planned_operators_match_scan_oracle_in_memory() {
        let topic = topic_with_data();
        let engine = QueryEngine::new(&topic);
        let total = topic.records().len() as u64;
        let queries = vec![
            Query::group_by().filter(Predicate::template_matches("logged (in|out)")),
            Query::top_k(2).filter(Predicate::template_matches("user")),
            Query::distribution().filter(Predicate::variable_equals("u3")),
            Query::count_distinct(),
            Query::group_by().filter(Predicate::variable_contains("0.0.")),
            Query::distribution().filter(Predicate::time_window(10, total / 2)),
            Query::group_by().filter(
                Predicate::template_matches("payment")
                    .or(Predicate::variable_equals("u1").and(Predicate::time_window(0, 200))),
            ),
            Query::group_by().filter(Predicate::variable_equals("u1").not()),
        ];
        for (i, query) in queries.into_iter().enumerate() {
            for threshold in [0.3, 0.9] {
                let plan = query.clone().at_threshold(threshold).plan().unwrap();
                assert_eq!(
                    engine.execute(&plan),
                    engine.execute_scan(&plan),
                    "planned and scan paths diverged on query {i} at threshold {threshold}"
                );
            }
        }
    }

    #[test]
    fn count_distinct_matches_distribution_length() {
        let topic = topic_with_data();
        let engine = QueryEngine::new(&topic);
        let plan = Query::count_distinct().at_threshold(0.9).plan().unwrap();
        let count = engine.execute(&plan).count().unwrap();
        assert_eq!(count, engine.template_distribution(0.9).len() as u64);
        assert!(count > 0);
    }

    #[test]
    fn snapshot_serves_identical_results() {
        let topic = topic_with_data();
        let snapshot = topic.query_snapshot();
        let options = QueryOptions::default();
        assert_eq!(
            snapshot.group_by_template(options),
            *topic.query(options),
            "snapshot diverged from the live topic"
        );
        assert_eq!(snapshot.records(), topic.records().len());
        assert_eq!(snapshot.version(), topic.model_version());
        assert_eq!(
            snapshot.template_distribution(0.9),
            topic.template_distribution(0.9)
        );
    }

    #[test]
    fn query_cache_hits_on_repeat_and_misses_after_ingest() {
        let mut topic = topic_with_data();
        let options = QueryOptions::default();
        let first = topic.query(options);
        let (hits_before, _) = topic.query_cache_stats();
        let second = topic.query(options);
        let (hits_after, _) = topic.query_cache_stats();
        assert_eq!(first, second);
        assert!(
            std::sync::Arc::ptr_eq(&first, &second),
            "a cache hit must share the stored result, not copy it"
        );
        assert_eq!(
            hits_after,
            hits_before + 1,
            "repeat query must hit the cache"
        );
        // New records change the key: the next query recomputes.
        topic.ingest(&["user u1 logged in from 10.0.0.9".to_string()]);
        let third = topic.query(options);
        let (_, misses) = topic.query_cache_stats();
        assert!(misses >= 2);
        assert_eq!(
            third.iter().map(|g| g.count()).sum::<usize>(),
            topic.records().len()
        );
    }

    /// Satellite regression: the cache key carries the canonical plan
    /// fingerprint, so two different ASTs over identical topic state can
    /// never collide — the old `(threshold, limit)` key could not tell a
    /// filtered query from an unfiltered one.
    #[test]
    fn query_cache_distinguishes_different_plans() {
        let topic = topic_with_data();
        let unfiltered = Query::distribution().at_threshold(0.9).plan().unwrap();
        let filtered = Query::distribution()
            .at_threshold(0.9)
            .filter(Predicate::variable_equals("u3"))
            .plan()
            .unwrap();
        let all = topic.execute(&unfiltered).distribution().unwrap().clone();
        let only_u3 = topic.execute(&filtered).distribution().unwrap().clone();
        assert_ne!(
            all, only_u3,
            "the filter must change the result (otherwise the test is vacuous)"
        );
        // Replaying both in reverse order must serve each from its own entry.
        let (hits_before, _) = topic.query_cache_stats();
        assert_eq!(*topic.execute(&filtered).distribution().unwrap(), only_u3);
        assert_eq!(*topic.execute(&unfiltered).distribution().unwrap(), all);
        let (hits_after, misses) = topic.query_cache_stats();
        assert_eq!(hits_after, hits_before + 2, "both replays must hit");
        assert_eq!(misses, 2, "exactly the two initial computations missed");
        // Commutation: the same predicate written in either order is the
        // same canonical plan, hence the same cache entry.
        let swapped = Query::distribution()
            .at_threshold(0.9)
            .filter(Predicate::variable_equals("u3").and(Predicate::time_window(0, u64::MAX)))
            .plan()
            .unwrap();
        let canonical = Query::distribution()
            .at_threshold(0.9)
            .filter(Predicate::time_window(0, u64::MAX).and(Predicate::variable_equals("u3")))
            .plan()
            .unwrap();
        assert_eq!(swapped.fingerprint(), canonical.fingerprint());
        topic.execute(&swapped);
        let (hits_mid, _) = topic.query_cache_stats();
        topic.execute(&canonical);
        let (hits_end, _) = topic.query_cache_stats();
        assert_eq!(
            hits_end,
            hits_mid + 1,
            "commuted plan must hit the same entry"
        );
    }

    /// Satellite regression: eviction. Cycling more distinct plans than the
    /// cache holds evicts the oldest; re-running it misses but still returns
    /// the correct (recomputed) result.
    #[test]
    fn query_cache_eviction_recomputes_correctly() {
        let topic = topic_with_data();
        let first_plan = Query::distribution().at_threshold(0.9).plan().unwrap();
        let first = topic.execute(&first_plan);
        // Fill the cache with > capacity distinct plans (different windows →
        // different fingerprints).
        for end in 0..(QUERY_CACHE_CAPACITY as u64 + 4) {
            let plan = Query::distribution()
                .at_threshold(0.9)
                .filter(Predicate::time_window(0, 1_000 + end))
                .plan()
                .unwrap();
            topic.execute(&plan);
        }
        let (_, misses_before) = topic.query_cache_stats();
        let again = topic.execute(&first_plan);
        let (_, misses_after) = topic.query_cache_stats();
        assert_eq!(
            misses_after,
            misses_before + 1,
            "the evicted plan must miss, not alias another entry"
        );
        assert_eq!(first, again, "recomputation after eviction must agree");
    }

    // -- merged-group determinism (satellite) --------------------------------

    /// Two fixed-length variants (`users * *` and `users * * *`) that merge into the
    /// presentation text `users *`: the representative node and the reported
    /// saturation must be deterministic regardless of record order.
    #[test]
    fn merged_groups_report_deterministic_representative_and_min_saturation() {
        let make = |sat: f64, text: &[&str]| TreeNode {
            id: NodeId(0),
            parent: None,
            children: Vec::new(),
            template: text
                .iter()
                .map(|t| {
                    if *t == "*" {
                        TemplateToken::Wildcard
                    } else {
                        TemplateToken::Const(t.to_string())
                    }
                })
                .collect(),
            saturation: sat,
            depth: 0,
            log_count: 1,
            unique_count: 1,
            temporary: false,
            retired: false,
        };
        let mut model = ParserModel::new();
        let short = model.push_node(make(0.95, &["users", "*", "*"]));
        let long = model.push_node(make(0.85, &["users", "*", "*", "*"]));
        model.add_root(short);
        model.add_root(long);
        model.rebuild_match_order();
        let ladder = SaturationLadder::build(&model);

        let records: Vec<StoredRecord> = [
            // The longer variant comes FIRST in record order but covers fewer records:
            // a first-record-wins implementation would report `long`.
            (long, "users a b c"),
            (short, "users a b"),
            (short, "users x y"),
            (long, "users d e f"),
            (short, "users p q"),
        ]
        .iter()
        .map(|(node, text)| StoredRecord {
            record: text.to_string(),
            template: Some(*node),
        })
        .collect();
        let mut index = QueryIndex::new();
        for (idx, r) in records.iter().enumerate() {
            index.assign(r.template.unwrap(), idx);
        }

        let options = QueryOptions {
            saturation_threshold: 0.8,
            limit: usize::MAX,
        };
        for groups in [
            indexed_groups(&model, &ladder, &index, options),
            scan_groups(&model, &records, options),
        ] {
            assert_eq!(groups.len(), 1, "variants must merge into one group");
            let group = &groups[0];
            assert_eq!(group.template, "users *");
            assert_eq!(
                group.node, short,
                "representative must be the largest member (3 records), not the first seen"
            );
            assert_eq!(
                group.saturation, 0.85,
                "group saturation must be the minimum across merged nodes"
            );
            assert_eq!(group.record_indices, vec![0, 1, 2, 3, 4]);
        }
    }

    /// Equal member counts: the tie breaks to the smallest node id in both paths.
    #[test]
    fn merged_group_ties_break_by_node_id() {
        let make = |sat: f64, wildcards: usize| TreeNode {
            id: NodeId(0),
            parent: None,
            children: Vec::new(),
            template: std::iter::once(TemplateToken::Const("evt".to_string()))
                .chain(std::iter::repeat_n(TemplateToken::Wildcard, wildcards))
                .collect(),
            saturation: sat,
            depth: 0,
            log_count: 1,
            unique_count: 1,
            temporary: false,
            retired: false,
        };
        let mut model = ParserModel::new();
        let a = model.push_node(make(0.9, 1));
        let b = model.push_node(make(0.9, 2));
        model.add_root(a);
        model.add_root(b);
        model.rebuild_match_order();
        let ladder = SaturationLadder::build(&model);
        let records: Vec<StoredRecord> = [(b, "evt x y"), (a, "evt z")]
            .iter()
            .map(|(node, text)| StoredRecord {
                record: text.to_string(),
                template: Some(*node),
            })
            .collect();
        let mut index = QueryIndex::new();
        for (idx, r) in records.iter().enumerate() {
            index.assign(r.template.unwrap(), idx);
        }
        let options = QueryOptions {
            saturation_threshold: 0.5,
            limit: usize::MAX,
        };
        for groups in [
            indexed_groups(&model, &ladder, &index, options),
            scan_groups(&model, &records, options),
        ] {
            assert_eq!(groups.len(), 1);
            assert_eq!(groups[0].node, a, "tie must break to the smallest node id");
        }
    }

    /// The canonical plan stores the sanitized threshold, so the computed threshold
    /// must sit exactly on the service's 1/1000 grid: a query at 0.8995 and one at
    /// 0.9001 share a plan fingerprint *and* a computation (both snap to 0.900), and
    /// the scan path snaps identically — no cached result can ever be served for a
    /// threshold it was not computed at.
    #[test]
    fn cache_key_and_computation_agree_on_the_quantized_threshold() {
        assert_eq!(sanitize_threshold(0.8995), 0.9);
        assert_eq!(sanitize_threshold(0.9001), 0.9);
        assert_eq!(sanitize_threshold(0.89949), 0.899);
        assert_eq!(
            QueryOptions {
                saturation_threshold: 0.8995,
                limit: usize::MAX
            }
            .to_plan()
            .fingerprint(),
            QueryOptions {
                saturation_threshold: 0.9001,
                limit: usize::MAX
            }
            .to_plan()
            .fingerprint(),
            "thresholds on the same grid stop must share a plan"
        );
        // A node whose saturation (0.8998) falls between two off-grid query
        // thresholds: both paths must treat both thresholds as the same grid stop.
        let make = |sat: f64, text: &[&str]| TreeNode {
            id: NodeId(0),
            parent: None,
            children: Vec::new(),
            template: text
                .iter()
                .map(|t| TemplateToken::Const(t.to_string()))
                .collect(),
            saturation: sat,
            depth: 0,
            log_count: 1,
            unique_count: 1,
            temporary: false,
            retired: false,
        };
        let mut model = ParserModel::new();
        let root = model.push_node(make(0.5, &["evt"]));
        let leaf = model.push_node(make(0.8998, &["evt", "x"]));
        model.add_root(root);
        model.attach_child(root, leaf);
        model.rebuild_match_order();
        let ladder = SaturationLadder::build(&model);
        let records = vec![StoredRecord {
            record: "evt x".to_string(),
            template: Some(leaf),
        }];
        let mut index = QueryIndex::new();
        index.assign(leaf, 0);
        for threshold in [0.8995, 0.9001] {
            let options = QueryOptions {
                saturation_threshold: threshold,
                limit: usize::MAX,
            };
            let indexed = indexed_groups(&model, &ladder, &index, options);
            assert_eq!(indexed, scan_groups(&model, &records, options));
            // 0.8998 < 0.900: the leaf does not qualify at the snapped threshold.
            assert_eq!(
                indexed[0].node, leaf,
                "nothing qualifies: most precise live"
            );
        }
    }

    // -- threshold validation (satellite) ------------------------------------

    #[test]
    fn nonsense_thresholds_are_sanitized() {
        let topic = topic_with_data();
        let engine = QueryEngine::new(&topic);
        let default_result = engine.group_by_template(QueryOptions::default());
        // NaN behaves exactly like the default threshold.
        let nan_result = engine.group_by_template(QueryOptions {
            saturation_threshold: f64::NAN,
            limit: usize::MAX,
        });
        assert_eq!(nan_result, default_result);
        // Out-of-range values clamp to the edges.
        let negative = engine.group_by_template(QueryOptions {
            saturation_threshold: -5.0,
            limit: usize::MAX,
        });
        let zero = engine.group_by_template(QueryOptions {
            saturation_threshold: 0.0,
            limit: usize::MAX,
        });
        assert_eq!(negative, zero);
        let huge = engine.group_by_template(QueryOptions {
            saturation_threshold: 42.0,
            limit: usize::MAX,
        });
        let one = engine.group_by_template(QueryOptions {
            saturation_threshold: 1.0,
            limit: usize::MAX,
        });
        assert_eq!(huge, one);
        assert_eq!(
            QueryOptions {
                saturation_threshold: f64::NAN,
                limit: 3
            }
            .sanitized()
            .saturation_threshold,
            bytebrain::DEFAULT_THRESHOLD
        );
    }
}
