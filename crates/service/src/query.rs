//! The query API (§3 "Query", §6): group stored records by template at a per-query
//! precision threshold, without reprocessing — or even scanning — any log.
//!
//! Two implementations exist and are kept byte-identical by the differential suite:
//!
//! * the **indexed path** (the serving path): per-node **postings** ([`QueryIndex`] —
//!   record counts plus record-index lists, maintained at ingest/stream-flush time by
//!   [`LogTopic`]) are aggregated up the precomputed
//!   [`SaturationLadder`], so a query touches one posting
//!   list per *template* instead of one entry per *record*; results are memoized in an
//!   LRU [`QueryCache`] keyed by `(model version, record count, quantized threshold,
//!   limit)` and invalidated when maintenance hot-swaps the model;
//! * the **scan path** ([`QueryEngine::group_by_template_scan`]): the original
//!   per-record ancestor walk, retained as the differential reference.
//!
//! Both paths resolve templates through the same core semantics: retired nodes are
//! skipped to the nearest live ancestor, the full chain is scanned for the coarsest
//! qualifying ancestor, and thresholds are sanitized identically — clamped by
//! [`bytebrain::clamp_threshold`] and snapped to the slider's 1/1000 grid, so the
//! cache key always names exactly the threshold a result was computed at. When
//! presentation merging (§7) combines several
//! nodes under one merged-wildcard text, the reported representative node is
//! deterministic — the member with the largest record count, ties broken by the
//! smallest [`NodeId`] — and the reported saturation is the minimum across the merged
//! nodes (the honest precision of the combined group).

use crate::topic::{LogTopic, StoredRecord};
use bytebrain::query::{
    clamp_threshold, merge_consecutive_wildcards, resolve_with_threshold, SaturationLadder,
};
use bytebrain::{NodeId, ParserModel};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
use std::sync::Mutex;

/// Options controlling one query.
#[derive(Debug, Clone, Copy)]
pub struct QueryOptions {
    /// Saturation threshold: higher values request more precise templates. This is the
    /// value the production UI exposes as an interactive slider. NaN falls back to the
    /// default (0.9); values outside `[0, 1]` are clamped, and queries snap the value
    /// to the slider's 1/1000 grid.
    pub saturation_threshold: f64,
    /// Maximum number of template groups to return (largest first); `usize::MAX` for all.
    pub limit: usize,
}

impl Default for QueryOptions {
    fn default() -> Self {
        QueryOptions {
            saturation_threshold: bytebrain::DEFAULT_THRESHOLD,
            limit: usize::MAX,
        }
    }
}

/// Sanitize a threshold for the service query surface: the single core clamp
/// ([`bytebrain::clamp_threshold`]: NaN → default, out-of-range → clamped) plus a snap
/// to the slider's 1/1000 grid — so the query cache key (which stores the threshold in
/// mills) always describes exactly the threshold the cached result was computed at,
/// and the indexed and scan paths quantize identically. Core resolution called
/// directly (outside this module) keeps exact thresholds.
fn sanitize_threshold(threshold: f64) -> f64 {
    (clamp_threshold(threshold) * 1_000.0).round() / 1_000.0
}

impl QueryOptions {
    /// The options with the threshold sanitized: NaN → default, out-of-range →
    /// clamped, and snapped to the service's 1/1000 slider grid (both query paths and
    /// the cache key quantize through this one function).
    pub fn sanitized(mut self) -> Self {
        self.saturation_threshold = sanitize_threshold(self.saturation_threshold);
        self
    }
}

/// One group of query results: a template and the records it covers.
#[derive(Debug, Clone, PartialEq)]
pub struct TemplateGroup {
    /// Resolved template node. When presentation merging combined several nodes, this
    /// is the member covering the most records (ties broken by smallest node id).
    pub node: NodeId,
    /// Presentation template text (consecutive wildcards merged, §7).
    pub template: String,
    /// Saturation of the group: the minimum across all merged member nodes.
    pub saturation: f64,
    /// Indices (into the topic's record store) of the member records, ascending.
    pub record_indices: Vec<usize>,
}

impl TemplateGroup {
    /// Number of member records.
    pub fn count(&self) -> usize {
        self.record_indices.len()
    }
}

// ---------------------------------------------------------------------------
// Postings
// ---------------------------------------------------------------------------

/// Per-node postings: for every template node, the indices of the stored records whose
/// most-precise match is that node. Maintained by [`LogTopic`] at ingest/stream-flush
/// time (and patched when maintenance re-matches records), so queries aggregate counts
/// up the saturation ladder instead of scanning the record store.
#[derive(Debug, Clone, Default)]
pub struct QueryIndex {
    /// `postings[node]` = ascending record indices assigned to that node.
    postings: Vec<Vec<u32>>,
    /// Total number of assigned records across all postings.
    assigned: usize,
}

impl QueryIndex {
    /// An empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Grow the per-node posting table to cover `model_len` nodes.
    pub fn ensure_nodes(&mut self, model_len: usize) {
        if self.postings.len() < model_len {
            self.postings.resize_with(model_len, Vec::new);
        }
    }

    /// Record that stored record `idx` is assigned to `node`. Indices must be fed in
    /// ascending order per node (the natural ingest order), keeping postings sorted.
    pub fn assign(&mut self, node: NodeId, idx: usize) {
        self.ensure_nodes(node.0 + 1);
        debug_assert!(
            idx < u32::MAX as usize,
            "record index exceeds posting width"
        );
        self.postings[node.0].push(idx as u32);
        self.assigned += 1;
    }

    /// Move previously assigned records to new nodes after a maintenance re-match:
    /// `moves` holds `(record index, old node, new assignment)` triples.
    pub fn reassign(&mut self, moves: &[(usize, Option<NodeId>, Option<NodeId>)]) {
        // Batch removals per old node so each posting list is filtered once, with a
        // set membership test — a retired temporary can carry thousands of records,
        // and a linear `contains` per posting entry would go quadratic.
        let mut removed: HashMap<usize, std::collections::HashSet<u32>> = HashMap::new();
        for &(idx, old, _) in moves {
            if let Some(old) = old {
                removed.entry(old.0).or_default().insert(idx as u32);
            }
        }
        for (node, gone) in removed {
            self.postings[node].retain(|i| !gone.contains(i));
        }
        let mut added: BTreeMap<usize, Vec<u32>> = BTreeMap::new();
        for &(idx, _, new) in moves {
            if let Some(new) = new {
                added.entry(new.0).or_default().push(idx as u32);
            }
        }
        for (node, incoming) in added {
            self.ensure_nodes(node + 1);
            let posting = &mut self.postings[node];
            posting.extend(incoming);
            posting.sort_unstable();
        }
        self.assigned = self.postings.iter().map(|p| p.len()).sum();
    }

    /// Bulk-load one sealed segment's posting list for `node`: `locals` are
    /// segment-local record offsets, shifted by the segment's position `base` in the
    /// record store. Recovery rebuilds the whole index this way — straight from the
    /// columnar postings, without re-matching a single line. Segments must be fed in
    /// ascending sequence order (postings stay sorted).
    pub fn extend_posting(&mut self, node: NodeId, base: usize, locals: &[u32]) {
        self.ensure_nodes(node.0 + 1);
        self.postings[node.0].extend(locals.iter().map(|&local| base as u32 + local));
        self.assigned += locals.len();
    }

    /// Rebuild the whole index from the record store (used after a full retrain, which
    /// renumbers the tree and re-matches every record).
    pub fn rebuild(records: &[StoredRecord], model_len: usize) -> Self {
        let mut index = QueryIndex::new();
        index.ensure_nodes(model_len);
        for (idx, stored) in records.iter().enumerate() {
            if let Some(node) = stored.template {
                index.assign(node, idx);
            }
        }
        index
    }

    /// The posting list of one node (ascending record indices).
    pub fn postings_of(&self, node: NodeId) -> &[u32] {
        self.postings
            .get(node.0)
            .map(|p| p.as_slice())
            .unwrap_or(&[])
    }

    /// Total number of assigned records.
    pub fn assigned_records(&self) -> usize {
        self.assigned
    }

    /// Iterate `(node, posting list)` for nodes with at least one record.
    fn non_empty(&self) -> impl Iterator<Item = (NodeId, &[u32])> {
        self.postings
            .iter()
            .enumerate()
            .filter(|(_, p)| !p.is_empty())
            .map(|(id, p)| (NodeId(id), p.as_slice()))
    }
}

// ---------------------------------------------------------------------------
// Group assembly (shared by the indexed and scan paths)
// ---------------------------------------------------------------------------

/// Accumulator for one presentation-text group while aggregating member nodes.
#[derive(Debug, Default)]
struct GroupAccumulator {
    /// Record count per resolved member node (BTreeMap: deterministic iteration for
    /// the representative rule).
    members: BTreeMap<NodeId, usize>,
    /// All member record indices (sorted ascending before output).
    record_indices: Vec<usize>,
}

/// Assemble final groups from per-text accumulators: deterministic representative
/// (largest member count, ties → smallest node id), minimum saturation across merged
/// nodes, ascending record indices, groups sorted largest-first.
fn finish_groups(
    model: &ParserModel,
    groups: HashMap<String, GroupAccumulator>,
    limit: usize,
) -> Vec<TemplateGroup> {
    let mut out: Vec<TemplateGroup> = groups
        .into_iter()
        .map(|(template, mut acc)| {
            let mut representative = None;
            let mut best_count = 0usize;
            let mut saturation = f64::INFINITY;
            for (&node, &count) in &acc.members {
                // Ascending NodeId iteration: strict `>` keeps the smallest id on ties.
                if count > best_count {
                    best_count = count;
                    representative = Some(node);
                }
                saturation = saturation.min(model.nodes[node.0].saturation);
            }
            acc.record_indices.sort_unstable();
            TemplateGroup {
                node: representative.expect("group has at least one member node"),
                template,
                saturation,
                record_indices: acc.record_indices,
            }
        })
        .collect();
    out.sort_by(|a, b| b.count().cmp(&a.count()).then(a.template.cmp(&b.template)));
    out.truncate(limit);
    out
}

/// The indexed grouping: aggregate postings up the ladder — O(templates), not
/// O(records), until the member index lists are materialised.
fn indexed_groups(
    model: &ParserModel,
    ladder: &SaturationLadder,
    index: &QueryIndex,
    options: QueryOptions,
) -> Vec<TemplateGroup> {
    let options = options.sanitized();
    let mut text_of: HashMap<NodeId, String> = HashMap::new();
    let mut groups: HashMap<String, GroupAccumulator> = HashMap::new();
    for (node, posting) in index.non_empty() {
        let resolved = ladder.resolve(node, options.saturation_threshold);
        let text = text_of
            .entry(resolved)
            .or_insert_with(|| {
                merge_consecutive_wildcards(&model.nodes[resolved.0].template_text())
            })
            .clone();
        let acc = groups.entry(text).or_default();
        *acc.members.entry(resolved).or_insert(0) += posting.len();
        acc.record_indices
            .extend(posting.iter().map(|&i| i as usize));
    }
    finish_groups(model, groups, options.limit)
}

/// The counts-only variant of [`indexed_groups`] for distribution queries: no record
/// index lists are materialised at all, so the cost is O(templates).
fn indexed_distribution(
    model: &ParserModel,
    ladder: &SaturationLadder,
    index: &QueryIndex,
    threshold: f64,
) -> HashMap<String, u64> {
    let threshold = sanitize_threshold(threshold);
    let mut text_of: HashMap<NodeId, String> = HashMap::new();
    let mut counts: HashMap<String, u64> = HashMap::new();
    for (node, posting) in index.non_empty() {
        let resolved = ladder.resolve(node, threshold);
        let text = text_of
            .entry(resolved)
            .or_insert_with(|| {
                merge_consecutive_wildcards(&model.nodes[resolved.0].template_text())
            })
            .clone();
        *counts.entry(text).or_insert(0) += posting.len() as u64;
    }
    counts
}

/// The retained scan reference: resolve every stored record through the pointer-walk
/// path and group per record. Differential-identical to [`indexed_groups`] by test.
fn scan_groups(
    model: &ParserModel,
    records: &[StoredRecord],
    options: QueryOptions,
) -> Vec<TemplateGroup> {
    let options = options.sanitized();
    let mut groups: HashMap<String, GroupAccumulator> = HashMap::new();
    for (idx, stored) in records.iter().enumerate() {
        let Some(node) = stored.template else {
            continue;
        };
        let resolved = resolve_with_threshold(model, node, options.saturation_threshold);
        let text = merge_consecutive_wildcards(&model.nodes[resolved.0].template_text());
        let acc = groups.entry(text).or_default();
        *acc.members.entry(resolved).or_insert(0) += 1;
        acc.record_indices.push(idx);
    }
    finish_groups(model, groups, options.limit)
}

// ---------------------------------------------------------------------------
// Query cache
// ---------------------------------------------------------------------------

/// Cache key: model version + topic generation + record count pin the topic state,
/// the quantized threshold collapses slider jitter onto a 1/1000 grid, and the limit
/// is part of the result shape.
///
/// The **generation** (bumped on recovery, TTL retention and compaction) exists
/// because `(version, record count)` stops being sound once state persists: retention
/// can evict old records and later ingest can bring the count back to a previously
/// cached value with the model version unchanged — a different record *set* under an
/// identical key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct CacheKey {
    version: u64,
    generation: u64,
    records: usize,
    threshold_millis: u32,
    limit: usize,
}

impl CacheKey {
    /// `options` must already be sanitized: the threshold sits exactly on the 1/1000
    /// grid, so the mills key names precisely the computed threshold.
    fn new(version: u64, generation: u64, records: usize, options: QueryOptions) -> Self {
        CacheKey {
            version,
            generation,
            records,
            threshold_millis: (options.saturation_threshold * 1_000.0).round() as u32,
            limit: options.limit,
        }
    }
}

/// A small LRU cache of query results, safe to use through `&self` (interior mutex) so
/// concurrent readers of a topic can share it. Invalidated wholesale when maintenance
/// hot-swaps the model; naturally missed when the version or record count moves.
#[derive(Debug, Default)]
pub struct QueryCache {
    inner: Mutex<CacheInner>,
}

#[derive(Debug, Default)]
struct CacheInner {
    /// Most recently used first. Results are shared via `Arc`, so a cache hit is a
    /// reference-count bump — never a copy of the (potentially record-count-sized)
    /// member index lists.
    entries: Vec<(CacheKey, Arc<Vec<TemplateGroup>>)>,
    hits: u64,
    misses: u64,
}

/// Maximum number of cached query results per topic (one per slider stop, roughly).
const QUERY_CACHE_CAPACITY: usize = 16;

impl QueryCache {
    fn get(&self, key: CacheKey) -> Option<Arc<Vec<TemplateGroup>>> {
        let mut inner = self.inner.lock().expect("query cache poisoned");
        if let Some(pos) = inner.entries.iter().position(|(k, _)| *k == key) {
            let entry = inner.entries.remove(pos);
            let result = Arc::clone(&entry.1);
            inner.entries.insert(0, entry);
            inner.hits += 1;
            Some(result)
        } else {
            inner.misses += 1;
            None
        }
    }

    fn put(&self, key: CacheKey, value: Arc<Vec<TemplateGroup>>) {
        let mut inner = self.inner.lock().expect("query cache poisoned");
        inner.entries.retain(|(k, _)| *k != key);
        inner.entries.insert(0, (key, value));
        inner.entries.truncate(QUERY_CACHE_CAPACITY);
    }

    /// Drop every cached result (called when maintenance hot-swaps the model).
    pub fn clear(&self) {
        self.inner
            .lock()
            .expect("query cache poisoned")
            .entries
            .clear();
    }

    /// `(hits, misses)` counters since topic creation.
    pub fn stats(&self) -> (u64, u64) {
        let inner = self.inner.lock().expect("query cache poisoned");
        (inner.hits, inner.misses)
    }
}

// ---------------------------------------------------------------------------
// Snapshot
// ---------------------------------------------------------------------------

/// A self-contained, immutable snapshot of everything a query needs — model, ladder
/// and postings behind `Arc`s — so queries can be served from other threads while the
/// topic keeps ingesting (the topic copies-on-write whatever the snapshot still
/// shares).
#[derive(Debug, Clone)]
pub struct QuerySnapshot {
    model: Arc<ParserModel>,
    ladder: Arc<SaturationLadder>,
    index: Arc<QueryIndex>,
    version: u64,
}

impl QuerySnapshot {
    pub(crate) fn new(
        model: Arc<ParserModel>,
        ladder: Arc<SaturationLadder>,
        index: Arc<QueryIndex>,
        version: u64,
    ) -> Self {
        QuerySnapshot {
            model,
            ladder,
            index,
            version,
        }
    }

    /// The model snapshot the queries resolve against.
    pub fn model(&self) -> &ParserModel {
        &self.model
    }

    /// The model version this snapshot was taken at.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Number of records covered by the snapshot's postings.
    pub fn records(&self) -> usize {
        self.index.assigned_records()
    }

    /// Group the snapshot's records by template at the requested precision (indexed
    /// path, uncached — snapshots are cheap and short-lived).
    pub fn group_by_template(&self, options: QueryOptions) -> Vec<TemplateGroup> {
        indexed_groups(&self.model, &self.ladder, &self.index, options)
    }

    /// Distribution of record counts per template at the requested precision.
    pub fn template_distribution(&self, threshold: f64) -> HashMap<String, u64> {
        indexed_distribution(&self.model, &self.ladder, &self.index, threshold)
    }
}

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

/// Query engine over a topic's stored records.
#[derive(Debug)]
pub struct QueryEngine<'a> {
    topic: &'a LogTopic,
}

impl<'a> QueryEngine<'a> {
    /// Create a query engine borrowing the topic.
    pub fn new(topic: &'a LogTopic) -> Self {
        QueryEngine { topic }
    }

    /// Group all stored records by template at the requested precision, via the
    /// indexed path (postings aggregated up the saturation ladder, LRU-cached).
    /// Materialises an owned copy of the result; the serving path
    /// ([`LogTopic::query`] / `ServiceManager::query`) hands out the cache-shared
    /// `Arc` instead.
    pub fn group_by_template(&self, options: QueryOptions) -> Vec<TemplateGroup> {
        self.topic.query(options).as_ref().clone()
    }

    /// The retained scan reference: per-record ancestor walks over the whole record
    /// store. Byte-identical to [`QueryEngine::group_by_template`] (the differential
    /// suite enforces it) but O(records) per query — kept for verification and
    /// benchmarking, not serving.
    pub fn group_by_template_scan(&self, options: QueryOptions) -> Vec<TemplateGroup> {
        scan_groups(self.topic.model(), self.topic.records(), options)
    }

    /// Distribution of record counts per template at the requested precision, keyed by
    /// template text (indexed path). Used by the comparison and anomaly-detection
    /// features.
    pub fn template_distribution(&self, threshold: f64) -> HashMap<String, u64> {
        self.topic.template_distribution(threshold)
    }
}

// ---------------------------------------------------------------------------
// Topic-facing plumbing (kept here so the whole query subsystem lives in one module)
// ---------------------------------------------------------------------------

impl LogTopic {
    /// Group all stored records by template at the requested precision. Serves from
    /// the per-node postings aggregated up the saturation ladder — O(templates) plus
    /// the size of the answer, never a record scan — with an LRU cache keyed by
    /// `(model version, record count, quantized threshold, limit)`. The result is
    /// shared via `Arc`: a warm-cache query is a reference-count bump, not a copy of
    /// the member index lists.
    pub fn query(&self, options: QueryOptions) -> Arc<Vec<TemplateGroup>> {
        let options = options.sanitized();
        let key = CacheKey::new(
            self.model_version(),
            self.generation(),
            self.records().len(),
            options,
        );
        if let Some(cached) = self.query_cache().get(key) {
            return cached;
        }
        let result = Arc::new(indexed_groups(
            self.model(),
            self.ladder(),
            self.query_index(),
            options,
        ));
        self.query_cache().put(key, Arc::clone(&result));
        result
    }

    /// Distribution of record counts per template at the requested precision (indexed,
    /// counts-only — no record index lists are materialised).
    pub fn template_distribution(&self, threshold: f64) -> HashMap<String, u64> {
        indexed_distribution(self.model(), self.ladder(), self.query_index(), threshold)
    }

    /// An immutable snapshot of the query state (model + ladder + postings), safe to
    /// move to other threads and query while this topic keeps ingesting.
    pub fn query_snapshot(&self) -> QuerySnapshot {
        QuerySnapshot::new(
            self.model_snapshot(),
            self.ladder_snapshot(),
            self.query_index_snapshot(),
            self.model_version(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topic::{LogTopic, TopicConfig};
    use bytebrain::{TemplateToken, TreeNode};

    fn topic_with_data() -> LogTopic {
        let mut topic = LogTopic::new(TopicConfig::new("query-test"));
        let mut batch = Vec::new();
        for i in 0..120 {
            batch.push(format!("user u{} logged in from 10.0.0.{}", i % 10, i % 20));
            batch.push(format!(
                "user u{} logged out after {} minutes",
                i % 10,
                i % 50
            ));
            if i % 4 == 0 {
                batch.push(format!(
                    "payment of {} EUR processed for order {}",
                    i,
                    1000 + i
                ));
            }
        }
        topic.ingest(&batch);
        topic
    }

    #[test]
    fn grouping_covers_all_assigned_records() {
        let topic = topic_with_data();
        let engine = QueryEngine::new(&topic);
        let groups = engine.group_by_template(QueryOptions::default());
        let covered: usize = groups.iter().map(|g| g.count()).sum();
        assert_eq!(covered, topic.records().len());
        assert!(!groups.is_empty());
    }

    #[test]
    fn groups_are_sorted_by_size() {
        let topic = topic_with_data();
        let groups = QueryEngine::new(&topic).group_by_template(QueryOptions::default());
        for pair in groups.windows(2) {
            assert!(pair[0].count() >= pair[1].count());
        }
    }

    #[test]
    fn lower_threshold_gives_coarser_grouping() {
        let topic = topic_with_data();
        let engine = QueryEngine::new(&topic);
        let fine = engine.group_by_template(QueryOptions {
            saturation_threshold: 0.95,
            limit: usize::MAX,
        });
        let coarse = engine.group_by_template(QueryOptions {
            saturation_threshold: 0.05,
            limit: usize::MAX,
        });
        assert!(coarse.len() <= fine.len());
    }

    #[test]
    fn limit_truncates_output() {
        let topic = topic_with_data();
        let groups = QueryEngine::new(&topic).group_by_template(QueryOptions {
            saturation_threshold: 0.9,
            limit: 2,
        });
        assert!(groups.len() <= 2);
    }

    #[test]
    fn distribution_counts_match_groups() {
        let topic = topic_with_data();
        let engine = QueryEngine::new(&topic);
        let distribution = engine.template_distribution(0.9);
        let total: u64 = distribution.values().sum();
        assert_eq!(total, topic.records().len() as u64);
    }

    #[test]
    fn templates_contain_wildcards_for_variables() {
        let topic = topic_with_data();
        let groups = QueryEngine::new(&topic).group_by_template(QueryOptions::default());
        let login_group = groups
            .iter()
            .find(|g| g.template.contains("logged in"))
            .expect("login template exists");
        assert!(login_group.template.contains('*'));
    }

    // -- indexed vs scan ------------------------------------------------------

    #[test]
    fn indexed_path_is_byte_identical_to_scan_path() {
        let topic = topic_with_data();
        let engine = QueryEngine::new(&topic);
        for threshold in [0.0, 0.1, 0.3, 0.5, 0.7, 0.9, 0.95, 1.0, f64::NAN, -1.0, 2.0] {
            let options = QueryOptions {
                saturation_threshold: threshold,
                limit: usize::MAX,
            };
            assert_eq!(
                engine.group_by_template(options),
                engine.group_by_template_scan(options),
                "indexed and scan paths diverged at threshold {threshold}"
            );
        }
    }

    #[test]
    fn snapshot_serves_identical_results() {
        let topic = topic_with_data();
        let snapshot = topic.query_snapshot();
        let options = QueryOptions::default();
        assert_eq!(
            snapshot.group_by_template(options),
            *topic.query(options),
            "snapshot diverged from the live topic"
        );
        assert_eq!(snapshot.records(), topic.records().len());
        assert_eq!(snapshot.version(), topic.model_version());
        assert_eq!(
            snapshot.template_distribution(0.9),
            topic.template_distribution(0.9)
        );
    }

    #[test]
    fn query_cache_hits_on_repeat_and_misses_after_ingest() {
        let mut topic = topic_with_data();
        let options = QueryOptions::default();
        let first = topic.query(options);
        let (hits_before, _) = topic.query_cache_stats();
        let second = topic.query(options);
        let (hits_after, _) = topic.query_cache_stats();
        assert_eq!(first, second);
        assert!(
            std::sync::Arc::ptr_eq(&first, &second),
            "a cache hit must share the stored result, not copy it"
        );
        assert_eq!(
            hits_after,
            hits_before + 1,
            "repeat query must hit the cache"
        );
        // New records change the key: the next query recomputes.
        topic.ingest(&["user u1 logged in from 10.0.0.9".to_string()]);
        let third = topic.query(options);
        let (_, misses) = topic.query_cache_stats();
        assert!(misses >= 2);
        assert_eq!(
            third.iter().map(|g| g.count()).sum::<usize>(),
            topic.records().len()
        );
    }

    // -- merged-group determinism (satellite) --------------------------------

    /// Two fixed-length variants (`users * *` and `users * * *`) that merge into the
    /// presentation text `users *`: the representative node and the reported
    /// saturation must be deterministic regardless of record order.
    #[test]
    fn merged_groups_report_deterministic_representative_and_min_saturation() {
        let make = |sat: f64, text: &[&str]| TreeNode {
            id: NodeId(0),
            parent: None,
            children: Vec::new(),
            template: text
                .iter()
                .map(|t| {
                    if *t == "*" {
                        TemplateToken::Wildcard
                    } else {
                        TemplateToken::Const(t.to_string())
                    }
                })
                .collect(),
            saturation: sat,
            depth: 0,
            log_count: 1,
            unique_count: 1,
            temporary: false,
            retired: false,
        };
        let mut model = ParserModel::new();
        let short = model.push_node(make(0.95, &["users", "*", "*"]));
        let long = model.push_node(make(0.85, &["users", "*", "*", "*"]));
        model.add_root(short);
        model.add_root(long);
        model.rebuild_match_order();
        let ladder = SaturationLadder::build(&model);

        let records: Vec<StoredRecord> = [
            // The longer variant comes FIRST in record order but covers fewer records:
            // a first-record-wins implementation would report `long`.
            (long, "users a b c"),
            (short, "users a b"),
            (short, "users x y"),
            (long, "users d e f"),
            (short, "users p q"),
        ]
        .iter()
        .map(|(node, text)| StoredRecord {
            record: text.to_string(),
            template: Some(*node),
        })
        .collect();
        let mut index = QueryIndex::new();
        for (idx, r) in records.iter().enumerate() {
            index.assign(r.template.unwrap(), idx);
        }

        let options = QueryOptions {
            saturation_threshold: 0.8,
            limit: usize::MAX,
        };
        for groups in [
            indexed_groups(&model, &ladder, &index, options),
            scan_groups(&model, &records, options),
        ] {
            assert_eq!(groups.len(), 1, "variants must merge into one group");
            let group = &groups[0];
            assert_eq!(group.template, "users *");
            assert_eq!(
                group.node, short,
                "representative must be the largest member (3 records), not the first seen"
            );
            assert_eq!(
                group.saturation, 0.85,
                "group saturation must be the minimum across merged nodes"
            );
            assert_eq!(group.record_indices, vec![0, 1, 2, 3, 4]);
        }
    }

    /// Equal member counts: the tie breaks to the smallest node id in both paths.
    #[test]
    fn merged_group_ties_break_by_node_id() {
        let make = |sat: f64, wildcards: usize| TreeNode {
            id: NodeId(0),
            parent: None,
            children: Vec::new(),
            template: std::iter::once(TemplateToken::Const("evt".to_string()))
                .chain(std::iter::repeat_n(TemplateToken::Wildcard, wildcards))
                .collect(),
            saturation: sat,
            depth: 0,
            log_count: 1,
            unique_count: 1,
            temporary: false,
            retired: false,
        };
        let mut model = ParserModel::new();
        let a = model.push_node(make(0.9, 1));
        let b = model.push_node(make(0.9, 2));
        model.add_root(a);
        model.add_root(b);
        model.rebuild_match_order();
        let ladder = SaturationLadder::build(&model);
        let records: Vec<StoredRecord> = [(b, "evt x y"), (a, "evt z")]
            .iter()
            .map(|(node, text)| StoredRecord {
                record: text.to_string(),
                template: Some(*node),
            })
            .collect();
        let mut index = QueryIndex::new();
        for (idx, r) in records.iter().enumerate() {
            index.assign(r.template.unwrap(), idx);
        }
        let options = QueryOptions {
            saturation_threshold: 0.5,
            limit: usize::MAX,
        };
        for groups in [
            indexed_groups(&model, &ladder, &index, options),
            scan_groups(&model, &records, options),
        ] {
            assert_eq!(groups.len(), 1);
            assert_eq!(groups[0].node, a, "tie must break to the smallest node id");
        }
    }

    /// The cache key stores the threshold in mills, so the computed threshold must
    /// sit exactly on that grid: a query at 0.8995 and one at 0.9001 share a key
    /// *and* a computation (both snap to 0.900), and the scan path snaps identically
    /// — no cached result can ever be served for a threshold it was not computed at.
    #[test]
    fn cache_key_and_computation_agree_on_the_quantized_threshold() {
        assert_eq!(sanitize_threshold(0.8995), 0.9);
        assert_eq!(sanitize_threshold(0.9001), 0.9);
        assert_eq!(sanitize_threshold(0.89949), 0.899);
        // A node whose saturation (0.8998) falls between two off-grid query
        // thresholds: both paths must treat both thresholds as the same grid stop.
        let make = |sat: f64, text: &[&str]| TreeNode {
            id: NodeId(0),
            parent: None,
            children: Vec::new(),
            template: text
                .iter()
                .map(|t| TemplateToken::Const(t.to_string()))
                .collect(),
            saturation: sat,
            depth: 0,
            log_count: 1,
            unique_count: 1,
            temporary: false,
            retired: false,
        };
        let mut model = ParserModel::new();
        let root = model.push_node(make(0.5, &["evt"]));
        let leaf = model.push_node(make(0.8998, &["evt", "x"]));
        model.add_root(root);
        model.attach_child(root, leaf);
        model.rebuild_match_order();
        let ladder = SaturationLadder::build(&model);
        let records = vec![StoredRecord {
            record: "evt x".to_string(),
            template: Some(leaf),
        }];
        let mut index = QueryIndex::new();
        index.assign(leaf, 0);
        for threshold in [0.8995, 0.9001] {
            let options = QueryOptions {
                saturation_threshold: threshold,
                limit: usize::MAX,
            };
            let indexed = indexed_groups(&model, &ladder, &index, options);
            assert_eq!(indexed, scan_groups(&model, &records, options));
            // 0.8998 < 0.900: the leaf does not qualify at the snapped threshold.
            assert_eq!(
                indexed[0].node, leaf,
                "nothing qualifies: most precise live"
            );
        }
    }

    // -- threshold validation (satellite) ------------------------------------

    #[test]
    fn nonsense_thresholds_are_sanitized() {
        let topic = topic_with_data();
        let engine = QueryEngine::new(&topic);
        let default_result = engine.group_by_template(QueryOptions::default());
        // NaN behaves exactly like the default threshold.
        let nan_result = engine.group_by_template(QueryOptions {
            saturation_threshold: f64::NAN,
            limit: usize::MAX,
        });
        assert_eq!(nan_result, default_result);
        // Out-of-range values clamp to the edges.
        let negative = engine.group_by_template(QueryOptions {
            saturation_threshold: -5.0,
            limit: usize::MAX,
        });
        let zero = engine.group_by_template(QueryOptions {
            saturation_threshold: 0.0,
            limit: usize::MAX,
        });
        assert_eq!(negative, zero);
        let huge = engine.group_by_template(QueryOptions {
            saturation_threshold: 42.0,
            limit: usize::MAX,
        });
        let one = engine.group_by_template(QueryOptions {
            saturation_threshold: 1.0,
            limit: usize::MAX,
        });
        assert_eq!(huge, one);
        assert_eq!(
            QueryOptions {
                saturation_threshold: f64::NAN,
                limit: 3
            }
            .sanitized()
            .saturation_threshold,
            bytebrain::DEFAULT_THRESHOLD
        );
    }
}
