//! Online matching worker pool (§3 "Online Matching" / "Parallel").
//!
//! In production, template ids must be computed together with the traditional text
//! indices before a record can be written to the append-only topic storage, so matching
//! sits on the ingestion latency path. The system therefore distributes matching across
//! multiple processing queues: independent worker threads each own a handle to the shared
//! (read-only) model and drain a work queue of log batches.
//!
//! This module implements that pool with `std::sync::mpsc` channels (workers share the
//! job queue through a mutex — matching a batch dwarfs the cost of one lock
//! acquisition per batch). Every worker keeps a private [`TokenScratch`] alive, so the
//! per-record preprocessing of both job kinds runs on the zero-copy fast path.
//!
//! Two job kinds are supported:
//!
//! * **Full** ([`MatcherPool::submit`]): returns rendered [`MatchResult`]s, used by the
//!   industrial-style experiments and service tests.
//! * **Lean** ([`MatcherPool::submit_ids`]): returns only `(node id, saturation)` pairs
//!   plus the original records, skipping template rendering entirely. This is the path
//!   the sharded streaming ingestion engine ([`crate::ingest`]) drives.

use bytebrain::matcher::{match_record_with_scratch, match_view};
use bytebrain::{CompiledMatcher, MatchCache, MatchResult, NodeId, ParserModel};
use logtok::{Preprocessor, TokenScratch};
use std::collections::VecDeque;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// One record travelling through the lean streaming path: its arrival sequence
/// number, the FNV line hash computed once at shard admission
/// ([`logtok::hash_line`]), and the raw line. The hash rides along so nothing
/// downstream — batch reordering, the per-worker match cache — re-hashes the
/// full text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamRecord {
    /// Arrival sequence number assigned by the ingestion engine.
    pub seq: u64,
    /// FNV-1a hash of `line`, computed exactly once at admission.
    pub line_hash: u64,
    /// The raw record text.
    pub line: String,
}

impl StreamRecord {
    /// Wrap `line`, hashing it. The streaming engine is the normal caller; the
    /// constructor is public so tests and benches can build batches directly.
    pub fn new(seq: u64, line: String) -> Self {
        let line_hash = logtok::hash_line(&line);
        StreamRecord {
            seq,
            line_hash,
            line,
        }
    }
}

/// A batch of records submitted to the pool, tagged so results can be re-associated.
#[derive(Debug)]
enum Job {
    /// Full matching: render templates into [`MatchResult`]s.
    Full { batch_id: u64, records: Vec<String> },
    /// Lean matching for the ingestion path: node ids only, records handed back.
    /// The job carries the model snapshot it must match against, so the ingestion
    /// engine can hot-swap to a refreshed model at a shard-flush boundary without
    /// tearing the pool down — batches flushed before the swap keep the snapshot
    /// they were flushed under.
    Ids {
        batch_id: u64,
        shard: usize,
        records: Vec<StreamRecord>,
        model: Arc<ParserModel>,
        /// Compiled automaton snapshot paired with `model`; `None` routes the
        /// batch through the tree walker (the configured escape hatch).
        compiled: Option<Arc<CompiledMatcher>>,
    },
}

/// The result of one full batch.
#[derive(Debug)]
pub struct BatchResult {
    /// Identifier returned by [`MatcherPool::submit`].
    pub batch_id: u64,
    /// One match result per submitted record, in submission order.
    pub results: Vec<MatchResult>,
}

/// Lean per-record outcome of the ingestion path: the matched node and its saturation,
/// without the rendered template text (which the ingest engine does not need).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatchId {
    /// Matched node, `None` when no template matched.
    pub node: Option<NodeId>,
    /// Saturation of the matched node (0 when unmatched).
    pub saturation: f64,
}

/// The result of one lean (ingestion) batch: the original records travel back with
/// their match ids so the coordinator never has to clone or re-associate them.
#[derive(Debug)]
pub struct IdBatchResult {
    /// Identifier returned by [`MatcherPool::submit_ids`].
    pub batch_id: u64,
    /// The shard this batch was flushed from.
    pub shard: usize,
    /// The records exactly as submitted (workers reorder internally for cache
    /// warmth but always hand the batch back in submission order).
    pub records: Vec<StreamRecord>,
    /// One match id per record, in submission order.
    pub results: Vec<MatchId>,
}

#[derive(Debug)]
enum Outcome {
    Full(BatchResult),
    Ids(IdBatchResult),
}

/// A pool of matcher workers sharing one immutable model snapshot.
///
/// The pool owns a *snapshot*: swapping in a newly trained model is done by building a new
/// pool (models are cheap to share via `Arc`), which mirrors how the production system
/// rolls models forward without locking the ingestion path.
#[derive(Debug)]
pub struct MatcherPool {
    job_tx: Option<Sender<Job>>,
    result_rx: Receiver<Outcome>,
    workers: Vec<JoinHandle<()>>,
    next_batch: u64,
    /// Results of the *other* kind received while waiting for a specific kind.
    full_buffer: VecDeque<BatchResult>,
    ids_buffer: VecDeque<IdBatchResult>,
}

impl MatcherPool {
    /// Spawn `workers` matcher threads over a shared model snapshot.
    pub fn new(model: Arc<ParserModel>, preprocessor: Arc<Preprocessor>, workers: usize) -> Self {
        let workers = workers.max(1);
        let (job_tx, job_rx) = channel::<Job>();
        let job_rx = Arc::new(Mutex::new(job_rx));
        let (result_tx, result_rx) = channel::<Outcome>();
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let job_rx = Arc::clone(&job_rx);
            let result_tx = result_tx.clone();
            let model = Arc::clone(&model);
            let preprocessor = Arc::clone(&preprocessor);
            handles.push(std::thread::spawn(move || {
                // One scratch per worker: the whole pool runs preprocessing on the
                // zero-copy fast path. The match cache is also per-worker, so
                // the automaton hot path takes no lock; generation tags keep it
                // consistent across mid-stream snapshot swaps. The order buffer
                // (cache-warm batch reordering) is likewise recycled across
                // batches, so the steady-state loop performs no per-record
                // heap allocation.
                let mut scratch = TokenScratch::new();
                let mut cache = MatchCache::default();
                let mut order: Vec<u32> = Vec::new();
                loop {
                    // Hold the lock only while dequeueing, never while matching. A
                    // poisoned lock means a sibling worker panicked mid-dequeue; exit
                    // cleanly instead of cascading the panic across the pool — the
                    // coordinator detects the closed result channel and reports the
                    // loss loudly.
                    let job = {
                        let guard = match job_rx.lock() {
                            Ok(guard) => guard,
                            Err(_) => break,
                        };
                        match guard.recv() {
                            Ok(job) => job,
                            Err(_) => break,
                        }
                    };
                    let outcome = match job {
                        Job::Full { batch_id, records } => {
                            let results = records
                                .iter()
                                .map(|r| {
                                    match_record_with_scratch(
                                        &model,
                                        &preprocessor,
                                        r,
                                        &mut scratch,
                                    )
                                })
                                .collect();
                            Outcome::Full(BatchResult { batch_id, results })
                        }
                        Job::Ids {
                            batch_id,
                            shard,
                            records,
                            model: job_model,
                            compiled,
                        } => {
                            // Cache-warm batch reordering: process records
                            // grouped by their precomputed line hash so exact
                            // duplicates run back-to-back (the dominant shape
                            // of production streams) — the duplicate of the
                            // record just matched reuses its result directly,
                            // and near-duplicates keep the MatchCache and DFA
                            // working set hot. Results are written through the
                            // permutation, so the batch is handed back in
                            // submission order regardless.
                            order.clear();
                            order.extend(0..records.len() as u32);
                            order.sort_unstable_by_key(|&i| records[i as usize].line_hash);
                            let mut results = vec![
                                MatchId {
                                    node: None,
                                    saturation: 0.0,
                                };
                                records.len()
                            ];
                            let mut prev: Option<(u32, MatchId)> = None;
                            for &idx in &order {
                                let record = &records[idx as usize];
                                if let Some((prev_idx, id)) = prev {
                                    let p = &records[prev_idx as usize];
                                    if p.line_hash == record.line_hash && p.line == record.line {
                                        results[idx as usize] = id;
                                        continue;
                                    }
                                }
                                let node = match &compiled {
                                    Some(compiled) => cache.match_record_hashed(
                                        compiled,
                                        &preprocessor,
                                        &mut scratch,
                                        &record.line,
                                        record.line_hash,
                                    ),
                                    None => {
                                        let view =
                                            preprocessor.token_view(&record.line, &mut scratch);
                                        match_view(&job_model, &view)
                                    }
                                };
                                let id = match node {
                                    Some(id) => MatchId {
                                        node: Some(id),
                                        saturation: job_model.nodes[id.0].saturation,
                                    },
                                    None => MatchId {
                                        node: None,
                                        saturation: 0.0,
                                    },
                                };
                                results[idx as usize] = id;
                                prev = Some((idx, id));
                            }
                            Outcome::Ids(IdBatchResult {
                                batch_id,
                                shard,
                                records,
                                results,
                            })
                        }
                    };
                    // The receiver may already be gone during shutdown; that is fine.
                    let _ = result_tx.send(outcome);
                }
            }));
        }
        MatcherPool {
            job_tx: Some(job_tx),
            result_rx,
            workers: handles,
            next_batch: 0,
            full_buffer: VecDeque::new(),
            ids_buffer: VecDeque::new(),
        }
    }

    fn next_batch_id(&mut self) -> u64 {
        let batch_id = self.next_batch;
        self.next_batch += 1;
        batch_id
    }

    /// Submit a batch for full matching; returns the batch id used to identify its
    /// result.
    pub fn submit(&mut self, records: Vec<String>) -> u64 {
        let batch_id = self.next_batch_id();
        self.job_tx
            .as_ref()
            .expect("pool is running")
            .send(Job::Full { batch_id, records })
            .expect("workers are alive");
        batch_id
    }

    /// Submit a lean (ids-only) batch from `shard` to be matched against `model`
    /// (via its paired `compiled` automaton snapshot when supplied); returns the
    /// batch id. Used by the streaming ingestion engine, which needs template ids
    /// but not rendered templates and passes the snapshots that were current when
    /// the batch was flushed (hot-swap happens between batches, never inside one).
    pub fn submit_ids(
        &mut self,
        shard: usize,
        records: Vec<StreamRecord>,
        model: Arc<ParserModel>,
        compiled: Option<Arc<CompiledMatcher>>,
    ) -> u64 {
        let batch_id = self.next_batch_id();
        self.job_tx
            .as_ref()
            .expect("pool is running")
            .send(Job::Ids {
                batch_id,
                shard,
                records,
                model,
                compiled,
            })
            .expect("workers are alive");
        batch_id
    }

    /// Block until the next finished full batch is available.
    pub fn recv(&mut self) -> Option<BatchResult> {
        if let Some(buffered) = self.full_buffer.pop_front() {
            return Some(buffered);
        }
        loop {
            match self.result_rx.recv().ok()? {
                Outcome::Full(result) => return Some(result),
                Outcome::Ids(result) => self.ids_buffer.push_back(result),
            }
        }
    }

    /// Block until the next finished lean batch is available.
    pub fn recv_ids(&mut self) -> Option<IdBatchResult> {
        if let Some(buffered) = self.ids_buffer.pop_front() {
            return Some(buffered);
        }
        loop {
            match self.result_rx.recv().ok()? {
                Outcome::Ids(result) => return Some(result),
                Outcome::Full(result) => self.full_buffer.push_back(result),
            }
        }
    }

    /// Bounded-wait variant of [`MatcherPool::recv_ids`]: blocks for at most
    /// `timeout`, returning `None` either when no lean batch finished in time or
    /// when the workers are gone. Callers that must distinguish the two cases can
    /// check [`MatcherPool::workers_alive`].
    pub fn recv_ids_timeout(&mut self, timeout: std::time::Duration) -> Option<IdBatchResult> {
        if let Some(buffered) = self.ids_buffer.pop_front() {
            return Some(buffered);
        }
        let deadline = std::time::Instant::now() + timeout;
        loop {
            let remaining = deadline.saturating_duration_since(std::time::Instant::now());
            match self.result_rx.recv_timeout(remaining).ok()? {
                Outcome::Ids(result) => return Some(result),
                Outcome::Full(result) => self.full_buffer.push_back(result),
            }
        }
    }

    /// Whether the worker threads still hold their result sender (i.e. the pool can
    /// still make progress).
    pub fn workers_alive(&self) -> bool {
        !self.workers.is_empty()
    }

    /// Non-blocking variant of [`MatcherPool::recv_ids`]: returns immediately with
    /// `None` when no lean batch has finished yet.
    pub fn try_recv_ids(&mut self) -> Option<IdBatchResult> {
        if let Some(buffered) = self.ids_buffer.pop_front() {
            return Some(buffered);
        }
        loop {
            match self.result_rx.try_recv().ok()? {
                Outcome::Ids(result) => return Some(result),
                Outcome::Full(result) => self.full_buffer.push_back(result),
            }
        }
    }

    /// Number of batches submitted so far (all kinds).
    pub fn submitted(&self) -> u64 {
        self.next_batch
    }

    /// Submit all `batches` and collect every result, returned in submission order.
    pub fn match_all(&mut self, batches: Vec<Vec<String>>) -> Vec<BatchResult> {
        let count = batches.len();
        for batch in batches {
            self.submit(batch);
        }
        let mut out: Vec<BatchResult> = Vec::with_capacity(count);
        for _ in 0..count {
            if let Some(result) = self.recv() {
                out.push(result);
            }
        }
        out.sort_by_key(|b| b.batch_id);
        out
    }

    /// Shut the pool down, waiting for workers to drain their queues.
    pub fn shutdown(mut self) {
        self.job_tx.take();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for MatcherPool {
    fn drop(&mut self) {
        self.job_tx.take();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytebrain::train::train;
    use bytebrain::TrainConfig;

    fn model_and_preprocessor() -> (Arc<ParserModel>, Arc<Preprocessor>) {
        let records: Vec<String> = (0..100)
            .map(|i| format!("request {} routed to shard {} in {}ms", i, i % 8, i % 90))
            .collect();
        let config = TrainConfig::default();
        let model = train(&records, &config).model;
        (
            Arc::new(model),
            Arc::new(Preprocessor::new(config.preprocess.clone())),
        )
    }

    #[test]
    fn pool_matches_batches_in_parallel() {
        let (model, pre) = model_and_preprocessor();
        let mut pool = MatcherPool::new(model, pre, 4);
        let batches: Vec<Vec<String>> = (0..8)
            .map(|b| {
                (0..50)
                    .map(|i| {
                        format!(
                            "request {} routed to shard {} in {}ms",
                            b * 100 + i,
                            i % 8,
                            i
                        )
                    })
                    .collect()
            })
            .collect();
        let results = pool.match_all(batches);
        assert_eq!(results.len(), 8);
        for (expected_id, batch) in results.iter().enumerate() {
            assert_eq!(batch.batch_id, expected_id as u64);
            assert_eq!(batch.results.len(), 50);
            assert!(batch.results.iter().all(|r| r.is_matched()));
        }
        pool.shutdown();
    }

    #[test]
    fn unmatched_records_are_reported_not_dropped() {
        let (model, pre) = model_and_preprocessor();
        let mut pool = MatcherPool::new(model, pre, 2);
        pool.submit(vec!["completely novel kernel message".to_string()]);
        let result = pool.recv().expect("one batch");
        assert_eq!(result.results.len(), 1);
        assert!(!result.results[0].is_matched());
    }

    #[test]
    fn pool_with_single_worker_still_works() {
        let (model, pre) = model_and_preprocessor();
        let mut pool = MatcherPool::new(model, pre, 1);
        let id = pool.submit(vec!["request 5 routed to shard 1 in 3ms".to_string()]);
        let result = pool.recv().unwrap();
        assert_eq!(result.batch_id, id);
        assert_eq!(pool.submitted(), 1);
    }

    #[test]
    fn dropping_the_pool_joins_workers() {
        let (model, pre) = model_and_preprocessor();
        let pool = MatcherPool::new(model, pre, 3);
        drop(pool); // must not hang or panic
    }

    #[test]
    fn lean_batches_return_ids_and_records() {
        let (model, pre) = model_and_preprocessor();
        let mut pool = MatcherPool::new(Arc::clone(&model), pre, 2);
        let records: Vec<StreamRecord> = (0..20)
            .map(|i| {
                StreamRecord::new(
                    i,
                    format!("request {} routed to shard {} in {}ms", i, i % 8, i),
                )
            })
            .collect();
        let id = pool.submit_ids(3, records.clone(), model, None);
        let result = pool.recv_ids().expect("one lean batch");
        assert_eq!(result.batch_id, id);
        assert_eq!(result.shard, 3);
        assert_eq!(result.records, records);
        assert_eq!(result.results.len(), 20);
        assert!(result.results.iter().all(|r| r.node.is_some()));
        assert!(result.results.iter().all(|r| r.saturation > 0.0));
    }

    #[test]
    fn compiled_lean_batches_agree_with_tree_walk_batches() {
        let (model, pre) = model_and_preprocessor();
        let compiled = Arc::new(CompiledMatcher::compile(&model));
        let mut pool = MatcherPool::new(Arc::clone(&model), pre, 2);
        // Repeat records so the per-worker match cache (and the in-batch
        // duplicate-reuse path behind hash reordering) sees hits too.
        let records: Vec<StreamRecord> = (0..40)
            .map(|i| {
                StreamRecord::new(
                    i,
                    format!("request {} routed to shard {} in {}ms", i % 5, i % 2, i % 3),
                )
            })
            .collect();
        pool.submit_ids(0, records.clone(), Arc::clone(&model), Some(compiled));
        let automaton = pool.recv_ids().expect("automaton batch");
        pool.submit_ids(0, records, Arc::clone(&model), None);
        let tree = pool.recv_ids().expect("tree batch");
        assert_eq!(automaton.results, tree.results);
    }

    #[test]
    fn full_and_lean_batches_interleave() {
        let (model, pre) = model_and_preprocessor();
        let mut pool = MatcherPool::new(Arc::clone(&model), pre, 2);
        pool.submit(vec!["request 1 routed to shard 1 in 5ms".to_string()]);
        pool.submit_ids(
            0,
            vec![StreamRecord::new(
                0,
                "request 2 routed to shard 2 in 6ms".to_string(),
            )],
            model,
            None,
        );
        // Receiving in the opposite order of completion must still route correctly.
        let ids = pool.recv_ids().expect("lean batch");
        assert_eq!(ids.results.len(), 1);
        let full = pool.recv().expect("full batch");
        assert_eq!(full.results.len(), 1);
        assert!(full.results[0].is_matched());
    }
}
