//! Online matching worker pool (§3 "Online Matching" / "Parallel").
//!
//! In production, template ids must be computed together with the traditional text
//! indices before a record can be written to the append-only topic storage, so matching
//! sits on the ingestion latency path. The system therefore distributes matching across
//! multiple processing queues: independent worker threads each own a handle to the shared
//! (read-only) model and drain a work queue of log batches.
//!
//! This module implements that pool with `crossbeam` channels. It is used by the
//! industrial-style experiments and exercised directly by the service tests; `LogTopic`
//! uses the simpler scoped-thread path for synchronous ingestion.

use bytebrain::matcher::match_record;
use bytebrain::{MatchResult, ParserModel};
use crossbeam::channel::{unbounded, Receiver, Sender};
use logtok::Preprocessor;
use std::sync::Arc;
use std::thread::JoinHandle;

/// A batch of records submitted to the pool, tagged so results can be re-associated.
#[derive(Debug)]
struct Job {
    batch_id: u64,
    records: Vec<String>,
}

/// The result of one batch.
#[derive(Debug)]
pub struct BatchResult {
    /// Identifier returned by [`MatcherPool::submit`].
    pub batch_id: u64,
    /// One match result per submitted record, in submission order.
    pub results: Vec<MatchResult>,
}

/// A pool of matcher workers sharing one immutable model snapshot.
///
/// The pool owns a *snapshot*: swapping in a newly trained model is done by building a new
/// pool (models are cheap to share via `Arc`), which mirrors how the production system
/// rolls models forward without locking the ingestion path.
#[derive(Debug)]
pub struct MatcherPool {
    job_tx: Option<Sender<Job>>,
    result_rx: Receiver<BatchResult>,
    workers: Vec<JoinHandle<()>>,
    next_batch: u64,
}

impl MatcherPool {
    /// Spawn `workers` matcher threads over a shared model snapshot.
    pub fn new(model: Arc<ParserModel>, preprocessor: Arc<Preprocessor>, workers: usize) -> Self {
        let workers = workers.max(1);
        let (job_tx, job_rx) = unbounded::<Job>();
        let (result_tx, result_rx) = unbounded::<BatchResult>();
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let job_rx: Receiver<Job> = job_rx.clone();
            let result_tx = result_tx.clone();
            let model = Arc::clone(&model);
            let preprocessor = Arc::clone(&preprocessor);
            handles.push(std::thread::spawn(move || {
                while let Ok(job) = job_rx.recv() {
                    let results = job
                        .records
                        .iter()
                        .map(|r| match_record(&model, &preprocessor, r))
                        .collect();
                    // The receiver may already be gone during shutdown; that is fine.
                    let _ = result_tx.send(BatchResult {
                        batch_id: job.batch_id,
                        results,
                    });
                }
            }));
        }
        MatcherPool {
            job_tx: Some(job_tx),
            result_rx,
            workers: handles,
            next_batch: 0,
        }
    }

    /// Submit a batch for matching; returns the batch id used to identify its result.
    pub fn submit(&mut self, records: Vec<String>) -> u64 {
        let batch_id = self.next_batch;
        self.next_batch += 1;
        self.job_tx
            .as_ref()
            .expect("pool is running")
            .send(Job { batch_id, records })
            .expect("workers are alive");
        batch_id
    }

    /// Block until the next finished batch is available.
    pub fn recv(&self) -> Option<BatchResult> {
        self.result_rx.recv().ok()
    }

    /// Number of batches submitted so far.
    pub fn submitted(&self) -> u64 {
        self.next_batch
    }

    /// Submit all `batches` and collect every result, returned in submission order.
    pub fn match_all(&mut self, batches: Vec<Vec<String>>) -> Vec<BatchResult> {
        let count = batches.len();
        for batch in batches {
            self.submit(batch);
        }
        let mut out: Vec<BatchResult> = Vec::with_capacity(count);
        for _ in 0..count {
            if let Some(result) = self.recv() {
                out.push(result);
            }
        }
        out.sort_by_key(|b| b.batch_id);
        out
    }

    /// Shut the pool down, waiting for workers to drain their queues.
    pub fn shutdown(mut self) {
        self.job_tx.take();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for MatcherPool {
    fn drop(&mut self) {
        self.job_tx.take();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytebrain::train::train;
    use bytebrain::TrainConfig;

    fn model_and_preprocessor() -> (Arc<ParserModel>, Arc<Preprocessor>) {
        let records: Vec<String> = (0..100)
            .map(|i| format!("request {} routed to shard {} in {}ms", i, i % 8, i % 90))
            .collect();
        let config = TrainConfig::default();
        let model = train(&records, &config).model;
        (
            Arc::new(model),
            Arc::new(Preprocessor::new(config.preprocess.clone())),
        )
    }

    #[test]
    fn pool_matches_batches_in_parallel() {
        let (model, pre) = model_and_preprocessor();
        let mut pool = MatcherPool::new(model, pre, 4);
        let batches: Vec<Vec<String>> = (0..8)
            .map(|b| {
                (0..50)
                    .map(|i| format!("request {} routed to shard {} in {}ms", b * 100 + i, i % 8, i))
                    .collect()
            })
            .collect();
        let results = pool.match_all(batches);
        assert_eq!(results.len(), 8);
        for (expected_id, batch) in results.iter().enumerate() {
            assert_eq!(batch.batch_id, expected_id as u64);
            assert_eq!(batch.results.len(), 50);
            assert!(batch.results.iter().all(|r| r.is_matched()));
        }
        pool.shutdown();
    }

    #[test]
    fn unmatched_records_are_reported_not_dropped() {
        let (model, pre) = model_and_preprocessor();
        let mut pool = MatcherPool::new(model, pre, 2);
        pool.submit(vec!["completely novel kernel message".to_string()]);
        let result = pool.recv().expect("one batch");
        assert_eq!(result.results.len(), 1);
        assert!(!result.results[0].is_matched());
    }

    #[test]
    fn pool_with_single_worker_still_works() {
        let (model, pre) = model_and_preprocessor();
        let mut pool = MatcherPool::new(model, pre, 1);
        let id = pool.submit(vec!["request 5 routed to shard 1 in 3ms".to_string()]);
        let result = pool.recv().unwrap();
        assert_eq!(result.batch_id, id);
        assert_eq!(pool.submitted(), 1);
    }

    #[test]
    fn dropping_the_pool_joins_workers() {
        let (model, pre) = model_and_preprocessor();
        let pool = MatcherPool::new(model, pre, 3);
        drop(pool); // must not hang or panic
    }
}
