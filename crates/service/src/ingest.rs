//! Sharded streaming ingestion engine (§3 "System Design": online matching must keep up
//! with ingestion across thousands of topics).
//!
//! [`StreamIngestor`] is the high-throughput alternative to calling
//! [`LogTopic::ingest`](crate::topic::LogTopic::ingest) one record (or one small batch)
//! at a time. Records are routed to one of `shards` per-topic shard buffers — by a
//! rotating counter for [`StreamIngestor::push`] (balanced) or by FNV key hash for
//! [`StreamIngestor::push_keyed`] (per-key ordering, e.g. one shard per host). Each
//! shard accumulates a batch that is flushed when it reaches `batch_records` (size
//! bound) or when its oldest record has waited `flush_interval` (time bound), and
//! flushed batches are matched in parallel by the shared [`MatcherPool`] over an
//! immutable model snapshot.
//!
//! The matching hot path is zero-copy end to end: every pool worker keeps a private
//! [`logtok::TokenScratch`], records travel to the workers and back by move, and the
//! lean [`MatchId`](crate::matcher_pool::MatchId) results carry no rendered template
//! text.
//!
//! Back-pressure is explicit: at most `max_in_flight` batches may be submitted and
//! unharvested; a `push` that would exceed the bound first blocks on the next finished
//! batch. [`IngestStats`] reports the waits, the high-water mark, and per-shard
//! counters so saturation is observable rather than silent.
//!
//! ```text
//!             push / push_keyed
//!                    │ route (round-robin or key hash)
//!        ┌───────────┼─────────────┐
//!        ▼           ▼             ▼
//!    [shard 0]   [shard 1]  …  [shard N-1]     per-shard batch buffers
//!        │ size / time flush     │
//!        ▼                       ▼
//!            MatcherPool (worker threads, shared model snapshot,
//!            per-worker TokenScratch — zero-copy preprocessing)
//!        │                       │
//!        ▼                       ▼
//!     IdBatchResult  ──────►  completed records (seq-ordered on finish)
//! ```

use crate::matcher_pool::{IdBatchResult, MatcherPool, StreamRecord};
use bytebrain::{CompiledMatcher, NodeId, ParserModel};
use logtok::{hash_line, hash_token, Preprocessor};
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Pushes between time-bound staleness checks on the hot path: `push` consults
/// the clock only every this many records (plus whenever a batch flushes),
/// keeping `Instant::now` off the per-record cost. [`StreamIngestor::poll`]
/// always applies the time bound exactly.
const STALE_CHECK_INTERVAL: u64 = 64;

/// How [`LogTopic::ingest_stream`](crate::topic::LogTopic::ingest_stream) routes each
/// record to a shard buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Routing {
    /// Rotate through the shards (maximally balanced; the default).
    #[default]
    RoundRobin,
    /// Hash the record's first whitespace-delimited token (a host/component proxy in
    /// most log formats), so all records of a key land on one shard and stay in
    /// arrival order relative to each other.
    FirstTokenKey,
}

/// Configuration of the sharded streaming ingestion engine.
#[derive(Debug, Clone)]
pub struct IngestConfig {
    /// Number of shard buffers records are routed to.
    pub shards: usize,
    /// Size bound: a shard flushes its batch when it holds this many records.
    pub batch_records: usize,
    /// Time bound: a shard flushes a partial batch once its oldest record has waited
    /// this long (checked on every push and in [`StreamIngestor::poll`]).
    pub flush_interval: Duration,
    /// Back-pressure bound: the maximum number of flushed-but-unharvested batches.
    pub max_in_flight: usize,
    /// Matcher pool worker threads (the paper bounds production topics to 1–5 cores).
    pub workers: usize,
    /// Shard-routing strategy used by the topic-level streaming entry point.
    pub routing: Routing,
}

impl Default for IngestConfig {
    fn default() -> Self {
        IngestConfig {
            shards: 4,
            batch_records: 512,
            flush_interval: Duration::from_millis(50),
            max_in_flight: 8,
            workers: 4,
            routing: Routing::RoundRobin,
        }
    }
}

impl IngestConfig {
    /// Override the shard count (clamped to at least 1).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Override the per-batch record bound (clamped to at least 1).
    pub fn with_batch_records(mut self, batch_records: usize) -> Self {
        self.batch_records = batch_records.max(1);
        self
    }

    /// Override the worker thread count (clamped to at least 1).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Override the time-based flush bound.
    pub fn with_flush_interval(mut self, interval: Duration) -> Self {
        self.flush_interval = interval;
        self
    }

    /// Override the back-pressure bound (clamped to at least 1).
    pub fn with_max_in_flight(mut self, max_in_flight: usize) -> Self {
        self.max_in_flight = max_in_flight.max(1);
        self
    }

    /// Override the shard-routing strategy.
    pub fn with_routing(mut self, routing: Routing) -> Self {
        self.routing = routing;
        self
    }
}

/// Monotonic counters of one shard.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardCounters {
    /// Records routed to this shard.
    pub records: u64,
    /// Bytes routed to this shard (record text only).
    pub bytes: u64,
    /// Batches flushed from this shard.
    pub batches: u64,
    /// Records of this shard matched to an existing template.
    pub matched: u64,
    /// Records of this shard that matched no template.
    pub unmatched: u64,
    /// Flushes triggered by the size bound.
    pub size_flushes: u64,
    /// Flushes triggered by the time bound.
    pub time_flushes: u64,
    /// Flushes triggered by an explicit [`StreamIngestor::flush`] / `finish`.
    pub forced_flushes: u64,
}

/// Aggregate statistics of one streaming run, including back-pressure behaviour.
#[derive(Debug, Clone, Default)]
pub struct IngestStats {
    /// Per-shard counters, indexed by shard id.
    pub shards: Vec<ShardCounters>,
    /// Batches submitted to the matcher pool.
    pub submitted_batches: u64,
    /// Batches whose results have been harvested.
    pub completed_batches: u64,
    /// Blocked back-pressure episodes: times a flush parked on the results channel
    /// because `max_in_flight` batches were outstanding. Counted once per episode
    /// (not once per poll), so it is bounded by `submitted_batches` — a spin-poll
    /// regression would blow far past that bound.
    pub backpressure_waits: u64,
    /// High-water mark of outstanding batches.
    pub max_in_flight_observed: usize,
    /// Model snapshots hot-swapped in via [`StreamIngestor::swap_model`].
    pub model_swaps: u64,
    /// Records rejected by [`StreamIngestor::push_bounded`] because the pool stayed
    /// saturated past the caller's wait bound.
    pub overload_rejections: u64,
}

impl IngestStats {
    /// Total records routed, across shards.
    pub fn records(&self) -> u64 {
        self.shards.iter().map(|s| s.records).sum()
    }

    /// Total records matched to an existing template, across shards.
    pub fn matched(&self) -> u64 {
        self.shards.iter().map(|s| s.matched).sum()
    }

    /// Total records that matched no template, across shards.
    pub fn unmatched(&self) -> u64 {
        self.shards.iter().map(|s| s.unmatched).sum()
    }
}

/// Typed rejection from [`StreamIngestor::push_bounded`]: the pool stayed at
/// `max_in_flight` for the whole wait bound, so the record was **not** accepted.
/// The record rides back in the error so the caller can retry or shed it without
/// cloning up front.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Overloaded {
    /// The rejected record, returned unconsumed.
    pub record: String,
    /// How long the caller was willing to wait for a free slot.
    pub waited: Duration,
}

impl std::fmt::Display for Overloaded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ingest overloaded: no pool slot freed within {:?} (max_in_flight saturated)",
            self.waited
        )
    }
}

impl std::error::Error for Overloaded {}

/// One record that has completed matching.
#[derive(Debug, Clone)]
pub struct MatchedRecord {
    /// Arrival sequence number (0-based); [`IngestReport::records`] is sorted by it.
    pub seq: u64,
    /// Shard the record was routed to.
    pub shard: usize,
    /// The raw record text.
    pub record: String,
    /// Matched template, `None` when no template matched.
    pub node: Option<NodeId>,
    /// Saturation of the matched template (0 when unmatched).
    pub saturation: f64,
}

/// Result of a completed streaming run.
#[derive(Debug)]
pub struct IngestReport {
    /// The completed records with their match outcomes, sorted by arrival order.
    /// When [`StreamIngestor::drain_completed`] harvested records mid-stream, this
    /// holds only the records released after the last harvest; [`IngestStats`]
    /// always covers the full run.
    pub records: Vec<MatchedRecord>,
    /// Shard/back-pressure statistics of the run.
    pub stats: IngestStats,
    /// Wall-clock duration from engine construction to `finish`.
    pub elapsed: Duration,
}

impl IngestReport {
    /// Records matched to an existing template.
    pub fn matched(&self) -> u64 {
        self.stats.matched()
    }

    /// Records that matched no template.
    pub fn unmatched(&self) -> u64 {
        self.stats.unmatched()
    }

    /// Throughput of the run in records per second, counting every ingested record
    /// (including those harvested mid-stream via
    /// [`StreamIngestor::drain_completed`]).
    ///
    /// A report taken before any measurable work (elapsed ≈ 0) yields `0.0`, never
    /// `inf`/`NaN` — the value is persisted into segment metadata, which forbids
    /// non-finite floats.
    pub fn records_per_second(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 && self.stats.records() > 0 {
            self.stats.records() as f64 / secs
        } else {
            0.0
        }
    }
}

/// One shard's batch buffer.
#[derive(Debug, Default)]
struct ShardBuffer {
    /// Records of the open batch, each carrying its admission-time line hash.
    pending: Vec<StreamRecord>,
    /// When the oldest pending record arrived (None while empty).
    opened_at: Option<Instant>,
}

/// Why a shard batch is being flushed (drives the per-shard flush counters).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FlushReason {
    Size,
    Time,
    Forced,
}

/// The sharded streaming ingestion engine: routes records to shard buffers, batches
/// them, and drives batches through a [`MatcherPool`] in parallel. See the module
/// documentation for the data flow.
#[derive(Debug)]
pub struct StreamIngestor {
    config: IngestConfig,
    pool: MatcherPool,
    /// The model snapshot captured at the next shard flush. [`StreamIngestor::swap_model`]
    /// replaces it; already-flushed batches keep the snapshot they were flushed under.
    model: Arc<ParserModel>,
    /// Compiled automaton paired with `model`; `None` keeps the stream on the
    /// tree walker. Swapped together with the model, so a flushed batch always
    /// carries a mutually consistent (model, automaton) snapshot pair.
    compiled: Option<Arc<CompiledMatcher>>,
    buffers: Vec<ShardBuffer>,
    stats: IngestStats,
    /// Completed records as a sequence-indexed ring: slot `i` holds the record
    /// with sequence `next_release + i` (None until its batch lands). O(1)
    /// absorb and pop-front, replacing the former `BTreeMap` (whose per-record
    /// rebalancing showed up on the stream hot path); mid-stream harvesting
    /// still releases a contiguous, deterministic arrival-order prefix.
    completed: VecDeque<Option<MatchedRecord>>,
    /// Number of `Some` slots in `completed` (for loss accounting).
    completed_count: usize,
    /// First sequence number not yet released by [`StreamIngestor::drain_completed`].
    next_release: u64,
    next_seq: u64,
    round_robin: usize,
    in_flight: usize,
    /// Emptied batch buffers recycled back to the shards, so steady-state
    /// pushes append into already-allocated Vecs.
    spare_batches: Vec<Vec<StreamRecord>>,
    started: Instant,
}

impl StreamIngestor {
    /// Build an engine over an immutable model snapshot. The model is shared with the
    /// pool workers via `Arc`; training a new model means building a new engine, which
    /// mirrors how the production system rolls models forward without locking the
    /// ingestion path.
    pub fn new(
        model: Arc<ParserModel>,
        preprocessor: Arc<Preprocessor>,
        config: IngestConfig,
    ) -> Self {
        let config = IngestConfig {
            shards: config.shards.max(1),
            batch_records: config.batch_records.max(1),
            max_in_flight: config.max_in_flight.max(1),
            workers: config.workers.max(1),
            ..config
        };
        let pool = MatcherPool::new(Arc::clone(&model), preprocessor, config.workers);
        let buffers = (0..config.shards).map(|_| ShardBuffer::default()).collect();
        let stats = IngestStats {
            shards: vec![ShardCounters::default(); config.shards],
            ..IngestStats::default()
        };
        StreamIngestor {
            config,
            pool,
            model,
            compiled: None,
            buffers,
            stats,
            completed: VecDeque::new(),
            completed_count: 0,
            next_release: 0,
            next_seq: 0,
            round_robin: 0,
            in_flight: 0,
            spare_batches: Vec::new(),
            started: Instant::now(),
        }
    }

    /// Route flushed batches through a compiled automaton snapshot instead of
    /// the tree walker (builder-style; call before pushing records or swap via
    /// [`StreamIngestor::swap_model`]). The snapshot must be compiled from the
    /// engine's current model.
    pub fn with_compiled(mut self, compiled: Arc<CompiledMatcher>) -> Self {
        self.compiled = Some(compiled);
        self
    }

    /// Hot-swap the model snapshot and its paired compiled automaton (`None`
    /// drops the stream back to the tree walker). The swap takes effect at
    /// shard-flush boundaries: batches flushed after this call are matched
    /// against `model`, batches already submitted keep the snapshot pair they
    /// were flushed under. This is how incremental maintenance rolls a patched
    /// model into a live stream without tearing down the worker pool or
    /// pausing ingestion.
    pub fn swap_model(&mut self, model: Arc<ParserModel>, compiled: Option<Arc<CompiledMatcher>>) {
        self.model = model;
        self.compiled = compiled;
        self.stats.model_swaps += 1;
    }

    /// The model snapshot that the next flushed batch will be matched against.
    pub fn current_model(&self) -> &Arc<ParserModel> {
        &self.model
    }

    /// The engine's configuration.
    pub fn config(&self) -> &IngestConfig {
        &self.config
    }

    /// Current statistics (updated as batches flush and results are harvested).
    pub fn stats(&self) -> &IngestStats {
        &self.stats
    }

    /// Number of records accepted so far.
    pub fn pushed(&self) -> u64 {
        self.next_seq
    }

    /// Ingest one record, routed round-robin across shards (maximally balanced; use
    /// [`StreamIngestor::push_keyed`] when per-key ordering matters).
    pub fn push(&mut self, record: impl Into<String>) {
        let shard = self.round_robin;
        self.round_robin = (self.round_robin + 1) % self.config.shards;
        self.push_to_shard(shard, record.into());
    }

    /// Ingest one record, routed by the FNV-1a hash of `key` so all records of a key
    /// land on the same shard (and therefore stay in arrival order relative to each
    /// other all the way through the pool).
    pub fn push_keyed(&mut self, key: &str, record: impl Into<String>) {
        let shard = (hash_token(key) % self.config.shards as u64) as usize;
        self.push_to_shard(shard, record.into());
    }

    /// Ingest one record, routed by the engine's configured [`Routing`] strategy:
    /// round-robin, or keyed by the record's first whitespace-delimited token.
    pub fn push_routed(&mut self, record: impl Into<String>) {
        let record = record.into();
        match self.config.routing {
            Routing::RoundRobin => self.push(record),
            Routing::FirstTokenKey => {
                let trimmed = record.trim_start();
                let key_end = trimmed.find(char::is_whitespace).unwrap_or(trimmed.len());
                let shard = (hash_token(&trimmed[..key_end]) % self.config.shards as u64) as usize;
                self.push_to_shard(shard, record);
            }
        }
    }

    /// Bounded-wait variant of [`StreamIngestor::push_routed`]: when `max_in_flight`
    /// batches are outstanding, wait at most `wait` for a slot to free instead of
    /// parking indefinitely, and return the record inside [`Overloaded`] if none
    /// does. On `Ok` the record has been accepted and any flush it triggered was
    /// guaranteed non-blocking (one push causes at most one flush, and a slot was
    /// just verified free). `wait == Duration::ZERO` makes this a pure try-push.
    pub fn push_bounded(
        &mut self,
        record: impl Into<String>,
        wait: Duration,
    ) -> Result<(), Overloaded> {
        self.drain_ready();
        if self.in_flight >= self.config.max_in_flight {
            self.stats.backpressure_waits += 1;
            let deadline = Instant::now() + wait;
            while self.in_flight >= self.config.max_in_flight {
                let remaining = deadline.saturating_duration_since(Instant::now());
                match self.pool.recv_ids_timeout(remaining) {
                    Some(result) => self.absorb(result),
                    None => {
                        self.stats.overload_rejections += 1;
                        return Err(Overloaded {
                            record: record.into(),
                            waited: wait,
                        });
                    }
                }
            }
        }
        self.push_routed(record);
        Ok(())
    }

    fn push_to_shard(&mut self, shard: usize, record: String) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let line_hash = hash_line(&record);
        let counters = &mut self.stats.shards[shard];
        counters.records += 1;
        counters.bytes += record.len() as u64;
        let buffer = &mut self.buffers[shard];
        if buffer.pending.is_empty() {
            buffer.opened_at = Some(Instant::now());
        }
        buffer.pending.push(StreamRecord {
            seq,
            line_hash,
            line: record,
        });
        if buffer.pending.len() >= self.config.batch_records {
            // Harvest finished batches at flush boundaries (bounded lag: at
            // most `max_in_flight` batches ever wait in the result channel).
            self.drain_ready();
            self.flush_shard(shard, FlushReason::Size);
        } else if seq.is_multiple_of(STALE_CHECK_INTERVAL) {
            self.flush_if_stale(shard);
        }
    }

    /// Flush any shard whose open batch has exceeded the time bound and harvest
    /// finished results. Long-lived callers with bursty input should call this
    /// periodically; `push` also applies the time bound to the shard it touches.
    pub fn poll(&mut self) {
        for shard in 0..self.config.shards {
            self.flush_if_stale(shard);
        }
        self.drain_ready();
    }

    /// Force-flush every shard's open batch regardless of the size/time bounds.
    pub fn flush(&mut self) {
        for shard in 0..self.config.shards {
            if !self.buffers[shard].pending.is_empty() {
                self.flush_shard(shard, FlushReason::Forced);
            }
        }
    }

    fn flush_if_stale(&mut self, shard: usize) {
        let stale = match self.buffers[shard].opened_at {
            Some(opened) => opened.elapsed() >= self.config.flush_interval,
            None => false,
        };
        if stale && !self.buffers[shard].pending.is_empty() {
            self.flush_shard(shard, FlushReason::Time);
        }
    }

    fn flush_shard(&mut self, shard: usize, reason: FlushReason) {
        let refill = self.spare_batches.pop().unwrap_or_default();
        let batch = std::mem::replace(&mut self.buffers[shard].pending, refill);
        self.buffers[shard].opened_at = None;
        if batch.is_empty() {
            self.spare_batches.push(batch);
            return;
        }
        // Back-pressure: park on the results channel until a slot frees up. One
        // blocked episode is counted once, however many batches it takes to drain
        // below the bound — `recv_ids` is a blocking channel `recv`, so a stalled
        // worker parks this thread instead of burning a core.
        if self.in_flight >= self.config.max_in_flight {
            self.stats.backpressure_waits += 1;
            while self.in_flight >= self.config.max_in_flight {
                match self.pool.recv_ids() {
                    Some(result) => self.absorb(result),
                    None => self.panic_workers_died(),
                }
            }
        }
        let counters = &mut self.stats.shards[shard];
        counters.batches += 1;
        match reason {
            FlushReason::Size => counters.size_flushes += 1,
            FlushReason::Time => counters.time_flushes += 1,
            FlushReason::Forced => counters.forced_flushes += 1,
        }
        self.pool
            .submit_ids(shard, batch, Arc::clone(&self.model), self.compiled.clone());
        self.in_flight += 1;
        self.stats.submitted_batches += 1;
        self.stats.max_in_flight_observed = self.stats.max_in_flight_observed.max(self.in_flight);
    }

    /// Harvest every batch the pool has already finished, without blocking.
    fn drain_ready(&mut self) {
        while let Some(result) = self.pool.try_recv_ids() {
            self.absorb(result);
        }
    }

    fn absorb(&mut self, result: IdBatchResult) {
        self.in_flight -= 1;
        self.stats.completed_batches += 1;
        let IdBatchResult {
            shard,
            mut records,
            results,
            ..
        } = result;
        let counters = &mut self.stats.shards[shard];
        for (record, id) in records.drain(..).zip(results) {
            match id.node {
                Some(_) => counters.matched += 1,
                None => counters.unmatched += 1,
            }
            // Slot `seq - next_release` in the completed ring; batches never
            // carry a released sequence, so the index never underflows.
            let slot = (record.seq - self.next_release) as usize;
            if slot >= self.completed.len() {
                self.completed.resize_with(slot + 1, || None);
            }
            self.completed[slot] = Some(MatchedRecord {
                seq: record.seq,
                shard,
                record: record.line,
                node: id.node,
                saturation: id.saturation,
            });
            self.completed_count += 1;
        }
        // Hand the emptied batch buffer back to the shards.
        self.spare_batches.push(records);
    }

    /// Harvest finished batches without blocking and return the records that form a
    /// contiguous arrival-order prefix (i.e. every record up to the first one still
    /// outstanding). Long-lived callers use this to apply results — and detect
    /// drift — while the stream is still running; the contiguity guarantee keeps
    /// downstream application order identical to the batch path regardless of how
    /// batches raced through the pool.
    pub fn drain_completed(&mut self) -> Vec<MatchedRecord> {
        self.drain_ready();
        let mut out = Vec::new();
        while matches!(self.completed.front(), Some(Some(_))) {
            let record = self.completed.pop_front().flatten().expect("checked Some");
            out.push(record);
            self.next_release += 1;
            self.completed_count -= 1;
        }
        out
    }

    /// Force-flush every shard and block until every in-flight batch has been
    /// absorbed: after `sync` returns, [`StreamIngestor::drain_completed`]
    /// releases the full contiguous prefix of everything pushed so far.
    /// [`LogTopic::ingest_stream`](crate::LogTopic::ingest_stream) calls this at
    /// drift-check boundaries so maintenance decisions — and mid-stream model
    /// hot-swaps — depend only on the record sequence, never on worker
    /// scheduling. That determinism is what lets the differential suite assert
    /// *byte-identical* assignments across engines and runs.
    ///
    /// # Panics
    /// Panics if pool workers died with batches outstanding.
    pub fn sync(&mut self) {
        self.flush();
        while self.in_flight > 0 {
            match self.pool.recv_ids() {
                Some(result) => self.absorb(result),
                None => self.panic_workers_died(),
            }
        }
    }

    /// A closed result channel while batches are outstanding means pool workers died
    /// (a panic in matching/preprocessing). Records would be silently lost if this
    /// were treated as a clean shutdown — fail loudly instead.
    fn panic_workers_died(&self) -> ! {
        panic!(
            "matcher pool workers terminated with {} batch(es) outstanding — \
             {} record(s) would be lost",
            self.in_flight,
            self.stats.records() - self.next_release - self.completed_count as u64
        );
    }

    /// Flush everything, wait for all outstanding batches, shut the pool down, and
    /// return the full report with records in arrival order. When
    /// [`StreamIngestor::drain_completed`] harvested records mid-stream, the report
    /// contains only the records released after the last harvest.
    ///
    /// # Panics
    /// Panics if pool workers died with batches outstanding (records would otherwise
    /// be silently dropped from the report).
    pub fn finish(mut self) -> IngestReport {
        self.flush();
        while self.in_flight > 0 {
            match self.pool.recv_ids() {
                Some(result) => self.absorb(result),
                None => self.panic_workers_died(),
            }
        }
        let elapsed = self.started.elapsed();
        // After sync-ing every batch the ring is fully contiguous: the flatten
        // drops nothing (trailing None slots can only exist from a resize past
        // the highest landed sequence, which absorb never leaves behind).
        let records: Vec<MatchedRecord> = std::mem::take(&mut self.completed)
            .into_iter()
            .flatten()
            .collect();
        self.completed_count = 0;
        IngestReport {
            records,
            stats: std::mem::take(&mut self.stats),
            elapsed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytebrain::train::train;
    use bytebrain::TrainConfig;

    fn trained() -> (Arc<ParserModel>, Arc<Preprocessor>) {
        let records: Vec<String> = (0..200)
            .map(|i| {
                format!(
                    "job {} finished on host node-{:02} in {}ms",
                    i,
                    i % 16,
                    i % 500
                )
            })
            .collect();
        let config = TrainConfig::default();
        let model = train(&records, &config).model;
        (
            Arc::new(model),
            Arc::new(Preprocessor::new(config.preprocess.clone())),
        )
    }

    fn stream(n: usize) -> Vec<String> {
        (0..n)
            .map(|i| {
                format!(
                    "job {} finished on host node-{:02} in {}ms",
                    i + 1000,
                    i % 16,
                    i % 777
                )
            })
            .collect()
    }

    #[test]
    fn every_pushed_record_comes_back_in_order() {
        let (model, pre) = trained();
        let mut ingestor =
            StreamIngestor::new(model, pre, IngestConfig::default().with_batch_records(64));
        for record in stream(1_000) {
            ingestor.push(record);
        }
        let report = ingestor.finish();
        assert_eq!(report.records.len(), 1_000);
        for (i, record) in report.records.iter().enumerate() {
            assert_eq!(record.seq, i as u64, "records must be seq-ordered");
        }
        assert_eq!(report.matched() + report.unmatched(), 1_000);
        assert!(
            report.matched() > 900,
            "stream shape was trained: {report:?}"
        );
    }

    #[test]
    fn records_spread_across_all_shards() {
        let (model, pre) = trained();
        let config = IngestConfig::default()
            .with_shards(4)
            .with_batch_records(32);
        let mut ingestor = StreamIngestor::new(model, pre, config);
        for record in stream(640) {
            ingestor.push(record);
        }
        let report = ingestor.finish();
        assert_eq!(report.stats.shards.len(), 4);
        for (shard, counters) in report.stats.shards.iter().enumerate() {
            assert_eq!(counters.records, 160, "shard {shard} starved: {counters:?}");
            assert!(counters.batches >= 5);
            assert!(counters.bytes > 0);
        }
    }

    #[test]
    fn keyed_routing_pins_keys_to_shards() {
        let (model, pre) = trained();
        let mut ingestor = StreamIngestor::new(model, pre, IngestConfig::default().with_shards(8));
        for i in 0..400 {
            let key = format!("host-{}", i % 5);
            ingestor.push_keyed(&key, format!("job {i} finished on host node-01 in 3ms"));
        }
        let report = ingestor.finish();
        // 5 keys can touch at most 5 of the 8 shards.
        let active = report.stats.shards.iter().filter(|s| s.records > 0).count();
        assert!(active <= 5, "{active} shards active for 5 keys");
        // Every record of one key went to exactly one shard.
        let mut shard_of_key: std::collections::HashMap<&str, usize> =
            std::collections::HashMap::new();
        for record in &report.records {
            // Recover the key from the record text (job id mod 5).
            let id: usize = record.record.split(' ').nth(1).unwrap().parse().unwrap();
            let key = ["host-0", "host-1", "host-2", "host-3", "host-4"][id % 5];
            let entry = shard_of_key.entry(key).or_insert(record.shard);
            assert_eq!(*entry, record.shard, "key {key} hopped shards");
        }
    }

    #[test]
    fn size_bound_flushes_full_batches() {
        let (model, pre) = trained();
        let config = IngestConfig::default()
            .with_shards(2)
            .with_batch_records(50);
        let mut ingestor = StreamIngestor::new(model, pre, config);
        for record in stream(500) {
            ingestor.push(record);
        }
        let report = ingestor.finish();
        let size_flushes: u64 = report.stats.shards.iter().map(|s| s.size_flushes).sum();
        assert_eq!(size_flushes, 10, "250 records per shard / 50 per batch");
    }

    #[test]
    fn time_bound_flushes_partial_batches() {
        let (model, pre) = trained();
        let config = IngestConfig::default()
            .with_shards(1)
            .with_batch_records(1_000_000)
            .with_flush_interval(Duration::from_millis(1));
        let mut ingestor = StreamIngestor::new(model, pre, config);
        ingestor.push("job 1 finished on host node-01 in 5ms".to_string());
        std::thread::sleep(Duration::from_millis(5));
        ingestor.poll();
        let time_flushes: u64 = ingestor.stats().shards.iter().map(|s| s.time_flushes).sum();
        assert_eq!(time_flushes, 1, "stale partial batch must flush on poll");
        let report = ingestor.finish();
        assert_eq!(report.records.len(), 1);
    }

    #[test]
    fn backpressure_bounds_outstanding_batches() {
        let (model, pre) = trained();
        let config = IngestConfig::default()
            .with_shards(4)
            .with_batch_records(10)
            .with_max_in_flight(2);
        let mut ingestor = StreamIngestor::new(model, pre, config);
        for record in stream(2_000) {
            ingestor.push(record);
        }
        let report = ingestor.finish();
        assert_eq!(report.records.len(), 2_000);
        assert!(
            report.stats.max_in_flight_observed <= 2,
            "bound violated: {}",
            report.stats.max_in_flight_observed
        );
        assert_eq!(
            report.stats.submitted_batches,
            report.stats.completed_batches
        );
        // The blocked-wait counter must still increment (200 batches through a
        // 2-deep window has to park), but each episode is counted exactly once:
        // a busy-wait loop would rack up counts far past the number of batches
        // that could possibly have released it.
        assert!(
            report.stats.backpressure_waits > 0,
            "200 batches through max_in_flight=2 must block at least once"
        );
        assert!(
            report.stats.backpressure_waits <= report.stats.submitted_batches,
            "spin-poll detected: {} waits for {} batches",
            report.stats.backpressure_waits,
            report.stats.submitted_batches
        );
    }

    #[test]
    fn empty_report_throughput_is_finite_zero() {
        let (model, pre) = trained();
        // Finish immediately: no records, elapsed ≈ 0 — the old code returned
        // `inf` here, which is now persisted into segment metadata and must be 0.
        let ingestor = StreamIngestor::new(model, pre, IngestConfig::default());
        let report = ingestor.finish();
        assert_eq!(report.records.len(), 0);
        let rps = report.records_per_second();
        assert!(rps.is_finite(), "throughput must be finite, got {rps}");
        assert_eq!(rps, 0.0);

        // Zero-duration report constructed directly (fields are public).
        let zero = IngestReport {
            records: Vec::new(),
            stats: report.stats,
            elapsed: Duration::ZERO,
        };
        assert_eq!(zero.records_per_second(), 0.0);
    }

    #[test]
    fn unmatched_records_are_counted_per_shard() {
        let (model, pre) = trained();
        let mut ingestor = StreamIngestor::new(model, pre, IngestConfig::default());
        ingestor.push("job 77 finished on host node-03 in 9ms".to_string());
        ingestor.push("segfault at 0xffff in thread reaper".to_string());
        let report = ingestor.finish();
        assert_eq!(report.matched(), 1);
        assert_eq!(report.unmatched(), 1);
        let unmatched_record = report.records.iter().find(|r| r.node.is_none()).unwrap();
        assert!(unmatched_record.record.contains("segfault"));
        assert_eq!(unmatched_record.saturation, 0.0);
    }

    #[test]
    fn compiled_stream_agrees_with_tree_walk_stream() {
        let (model, pre) = trained();
        let compiled = Arc::new(CompiledMatcher::compile(&model));
        let config = IngestConfig::default()
            .with_shards(4)
            .with_batch_records(64);
        let mut fast = StreamIngestor::new(Arc::clone(&model), Arc::clone(&pre), config.clone())
            .with_compiled(compiled);
        let mut reference = StreamIngestor::new(model, pre, config);
        for record in stream(1_000) {
            fast.push(record.clone());
            reference.push(record);
        }
        let fast_report = fast.finish();
        let reference_report = reference.finish();
        assert_eq!(fast_report.records.len(), reference_report.records.len());
        for (a, b) in fast_report.records.iter().zip(&reference_report.records) {
            assert_eq!(a.node, b.node, "engines diverged on {:?}", a.record);
            assert_eq!(a.saturation, b.saturation);
        }
    }

    #[test]
    fn saturated_pool_yields_overloaded_instead_of_hanging() {
        let (model, pre) = trained();
        // One shard, one worker, one slot: the 40k-record batch flushed below keeps
        // the single worker busy for tens of milliseconds, so the zero-wait push
        // that follows finds the pool saturated before the worker can drain it.
        let config = IngestConfig::default()
            .with_shards(1)
            .with_batch_records(40_000)
            .with_max_in_flight(1)
            .with_workers(1);
        let mut ingestor = StreamIngestor::new(model, pre, config);
        for record in stream(40_000) {
            ingestor.push(record);
        }
        assert_eq!(
            ingestor.stats().submitted_batches,
            1,
            "the size bound must have flushed exactly one in-flight batch"
        );
        let rejected = ingestor
            .push_bounded("job 99999 finished on host node-03 in 5ms", Duration::ZERO)
            .expect_err("zero-wait push against a saturated pool must be rejected");
        assert_eq!(rejected.record, "job 99999 finished on host node-03 in 5ms");
        assert_eq!(ingestor.stats().overload_rejections, 1);
        // A generous bound lets the slot free up: the same record is then accepted.
        ingestor
            .push_bounded(rejected.record, Duration::from_secs(30))
            .expect("bounded push must succeed once the worker drains the batch");
        let report = ingestor.finish();
        assert_eq!(report.records.len(), 40_001, "rejected record re-admitted");
        assert_eq!(report.stats.overload_rejections, 1);
    }

    #[test]
    fn report_throughput_is_positive() {
        let (model, pre) = trained();
        let mut ingestor = StreamIngestor::new(model, pre, IngestConfig::default());
        for record in stream(100) {
            ingestor.push(record);
        }
        let report = ingestor.finish();
        assert!(report.records_per_second() > 0.0);
        assert!(report.elapsed > Duration::ZERO);
    }
}
