//! Out-of-the-box log anomaly detection built on parsing results (§1, §6): the service
//! flags (a) templates that newly appear and (b) templates whose record count shifts
//! abnormally between two time windows.
//!
//! Window distributions come from the planned query path: callers either pass
//! precomputed `(template, count)` distributions (as returned by
//! `template_distribution`) to [`AnomalyDetector::detect`] or hand two
//! [`QuerySnapshot`]s to [`AnomalyDetector::detect_snapshots`], which aggregates
//! per-node postings up the saturation ladder — O(templates) per window, never a
//! record scan.

use crate::query::QuerySnapshot;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The kind of anomaly detected for a template.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AnomalyKind {
    /// The template did not appear in the baseline window.
    NewTemplate,
    /// The template's count increased by more than the configured factor.
    CountSurge,
    /// The template's count decreased by more than the configured factor (including
    /// disappearing entirely).
    CountDrop,
}

/// One detected anomaly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnomalyReport {
    /// Template text (presentation form).
    pub template: String,
    /// Anomaly kind.
    pub kind: AnomalyKind,
    /// Count in the baseline window.
    pub baseline_count: u64,
    /// Count in the current window.
    pub current_count: u64,
}

/// Detector configuration.
#[derive(Debug, Clone, Copy)]
pub struct AnomalyDetector {
    /// A template whose count grows by more than this factor is a surge (e.g. 3.0 = 3×).
    pub surge_factor: f64,
    /// A template whose count shrinks by more than this factor is a drop.
    pub drop_factor: f64,
    /// Minimum current count for a surge to be reported (suppresses noise from
    /// templates with a handful of records).
    pub min_count: u64,
}

impl Default for AnomalyDetector {
    fn default() -> Self {
        AnomalyDetector {
            surge_factor: 3.0,
            drop_factor: 3.0,
            min_count: 10,
        }
    }
}

impl AnomalyDetector {
    /// Compare a baseline template distribution against the current one and report
    /// anomalies, most severe (largest relative change) first. Distributions are
    /// `(template, count)` pairs as returned by `template_distribution`.
    pub fn detect(
        &self,
        baseline: &[(String, u64)],
        current: &[(String, u64)],
    ) -> Vec<AnomalyReport> {
        let baseline_by_template: HashMap<&str, u64> =
            baseline.iter().map(|(t, c)| (t.as_str(), *c)).collect();
        let current_by_template: HashMap<&str, u64> =
            current.iter().map(|(t, c)| (t.as_str(), *c)).collect();
        let mut reports = Vec::new();
        for (template, &current_count) in current.iter().map(|(t, c)| (t, c)) {
            match baseline_by_template.get(template.as_str()).copied() {
                None => {
                    if current_count >= self.min_count.min(1) {
                        reports.push(AnomalyReport {
                            template: template.clone(),
                            kind: AnomalyKind::NewTemplate,
                            baseline_count: 0,
                            current_count,
                        });
                    }
                }
                Some(baseline_count) => {
                    if current_count >= self.min_count
                        && current_count as f64 > baseline_count as f64 * self.surge_factor
                    {
                        reports.push(AnomalyReport {
                            template: template.clone(),
                            kind: AnomalyKind::CountSurge,
                            baseline_count,
                            current_count,
                        });
                    } else if baseline_count >= self.min_count
                        && (current_count as f64) < baseline_count as f64 / self.drop_factor
                    {
                        reports.push(AnomalyReport {
                            template: template.clone(),
                            kind: AnomalyKind::CountDrop,
                            baseline_count,
                            current_count,
                        });
                    }
                }
            }
        }
        // Templates that vanished entirely.
        for (template, &baseline_count) in baseline.iter().map(|(t, c)| (t, c)) {
            if !current_by_template.contains_key(template.as_str())
                && baseline_count >= self.min_count
            {
                reports.push(AnomalyReport {
                    template: template.clone(),
                    kind: AnomalyKind::CountDrop,
                    baseline_count,
                    current_count: 0,
                });
            }
        }
        Self::rank(&mut reports);
        reports
    }

    /// Compare two topic query snapshots at the given saturation threshold and report
    /// anomalies. Both distributions are computed through the indexed path (postings
    /// aggregated up the ladder), so the comparison cost is bounded by the number of
    /// templates, not the number of stored records.
    pub fn detect_snapshots(
        &self,
        baseline: &QuerySnapshot,
        current: &QuerySnapshot,
        threshold: f64,
    ) -> Vec<AnomalyReport> {
        self.detect(
            &baseline.template_distribution(threshold),
            &current.template_distribution(threshold),
        )
    }

    /// Order reports most severe (largest relative change) first.
    fn rank(reports: &mut [AnomalyReport]) {
        reports.sort_by(|a, b| {
            let severity = |r: &AnomalyReport| {
                let base = r.baseline_count.max(1) as f64;
                let cur = r.current_count.max(1) as f64;
                (cur / base).max(base / cur)
            };
            severity(b)
                .partial_cmp(&severity(a))
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.template.cmp(&b.template))
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts(pairs: &[(&str, u64)]) -> Vec<(String, u64)> {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    #[test]
    fn new_template_is_reported() {
        let detector = AnomalyDetector::default();
        let baseline = counts(&[("user login *", 100)]);
        let current = counts(&[("user login *", 110), ("disk failure on *", 5)]);
        let reports = detector.detect(&baseline, &current);
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].kind, AnomalyKind::NewTemplate);
        assert_eq!(reports[0].template, "disk failure on *");
    }

    #[test]
    fn count_surge_is_reported() {
        let detector = AnomalyDetector::default();
        let baseline = counts(&[("timeout calling *", 10)]);
        let current = counts(&[("timeout calling *", 200)]);
        let reports = detector.detect(&baseline, &current);
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].kind, AnomalyKind::CountSurge);
    }

    #[test]
    fn count_drop_and_disappearance_are_reported() {
        let detector = AnomalyDetector::default();
        let baseline = counts(&[("heartbeat from *", 500), ("request served *", 300)]);
        let current = counts(&[("heartbeat from *", 20)]);
        let reports = detector.detect(&baseline, &current);
        assert_eq!(reports.len(), 2);
        assert!(reports.iter().all(|r| r.kind == AnomalyKind::CountDrop));
    }

    #[test]
    fn stable_distribution_reports_nothing() {
        let detector = AnomalyDetector::default();
        let baseline = counts(&[("a *", 100), ("b *", 50)]);
        let current = counts(&[("a *", 120), ("b *", 45)]);
        assert!(detector.detect(&baseline, &current).is_empty());
    }

    #[test]
    fn most_severe_anomaly_comes_first() {
        let detector = AnomalyDetector::default();
        let baseline = counts(&[("mild *", 10), ("wild *", 10)]);
        let current = counts(&[("mild *", 40), ("wild *", 1000)]);
        let reports = detector.detect(&baseline, &current);
        assert_eq!(reports[0].template, "wild *");
    }

    #[test]
    fn snapshot_detection_matches_manual_distributions() {
        use crate::topic::{LogTopic, TopicConfig};
        let mut topic = LogTopic::new(TopicConfig::new("anom").with_volume_threshold(u64::MAX));
        let healthy: Vec<String> = (0..300)
            .map(|i| format!("request {} served in {}ms", i, i % 30))
            .collect();
        topic.ingest(&healthy);
        let baseline = topic.query_snapshot();
        let incident: Vec<String> = (0..80)
            .map(|i| format!("upstream timeout calling billing after {}ms", 1000 + i))
            .collect();
        topic.ingest(&incident);
        topic.run_training();
        let current = topic.query_snapshot();
        let detector = AnomalyDetector::default();
        let reports = detector.detect_snapshots(&baseline, &current, 0.9);
        assert_eq!(
            reports,
            detector.detect(
                &baseline.template_distribution(0.9),
                &current.template_distribution(0.9)
            )
        );
        assert!(
            reports.iter().any(|r| r.kind == AnomalyKind::NewTemplate),
            "the incident template must be flagged as new: {reports:?}"
        );
    }

    #[test]
    fn small_counts_are_suppressed() {
        let detector = AnomalyDetector {
            min_count: 10,
            ..AnomalyDetector::default()
        };
        let baseline = counts(&[("rare *", 1)]);
        let current = counts(&[("rare *", 5)]);
        assert!(detector.detect(&baseline, &current).is_empty());
    }
}
