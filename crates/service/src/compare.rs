//! Template-distribution comparison across time periods (§1, §6): users compare the
//! templates generated in two windows to understand how system behaviour changed.
//!
//! Window distributions come from the indexed query path ([`compare_snapshots`]
//! aggregates per-node postings up the saturation ladder), so comparing two windows
//! of a 100k-record topic costs O(templates), not O(records).

use crate::query::QuerySnapshot;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// The change of a single template between two windows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DistributionShift {
    /// Template text.
    pub template: String,
    /// Count in the first (baseline) window.
    pub before: u64,
    /// Count in the second (comparison) window.
    pub after: u64,
    /// `after/total_after − before/total_before`: the change of the template's share of
    /// the stream, in percentage points (−1..1).
    pub share_delta: f64,
}

/// Compare two template distributions (`(template, count)` pairs as returned by
/// `template_distribution`) and return one entry per template seen in either
/// window, ordered by the absolute change of stream share (largest first).
pub fn compare_windows(
    before: &[(String, u64)],
    after: &[(String, u64)],
) -> Vec<DistributionShift> {
    let before_map: HashMap<&str, u64> = before.iter().map(|(t, c)| (t.as_str(), *c)).collect();
    let after_map: HashMap<&str, u64> = after.iter().map(|(t, c)| (t.as_str(), *c)).collect();
    let total_before: u64 = before_map.values().sum();
    let total_after: u64 = after_map.values().sum();
    let share = |count: u64, total: u64| {
        if total == 0 {
            0.0
        } else {
            count as f64 / total as f64
        }
    };
    let templates: HashSet<&str> = before_map.keys().chain(after_map.keys()).copied().collect();
    let mut shifts: Vec<DistributionShift> = templates
        .into_iter()
        .map(|template| {
            let b = before_map.get(template).copied().unwrap_or(0);
            let a = after_map.get(template).copied().unwrap_or(0);
            DistributionShift {
                template: template.to_string(),
                before: b,
                after: a,
                share_delta: share(a, total_after) - share(b, total_before),
            }
        })
        .collect();
    shifts.sort_by(|x, y| {
        y.share_delta
            .abs()
            .partial_cmp(&x.share_delta.abs())
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(x.template.cmp(&y.template))
    });
    shifts
}

/// Compare two topic query snapshots at the given saturation threshold: both window
/// distributions are computed through the indexed path (postings aggregated up the
/// saturation ladder — no record scan) and fed to [`compare_windows`].
pub fn compare_snapshots(
    before: &QuerySnapshot,
    after: &QuerySnapshot,
    threshold: f64,
) -> Vec<DistributionShift> {
    compare_windows(
        &before.template_distribution(threshold),
        &after.template_distribution(threshold),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts(pairs: &[(&str, u64)]) -> Vec<(String, u64)> {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    #[test]
    fn identical_windows_have_zero_deltas() {
        let w = counts(&[("a *", 50), ("b *", 50)]);
        let shifts = compare_windows(&w, &w);
        assert_eq!(shifts.len(), 2);
        for s in shifts {
            assert!(s.share_delta.abs() < 1e-12);
        }
    }

    #[test]
    fn growing_template_has_positive_delta() {
        let before = counts(&[("error *", 10), ("ok *", 90)]);
        let after = counts(&[("error *", 50), ("ok *", 50)]);
        let shifts = compare_windows(&before, &after);
        let error = shifts.iter().find(|s| s.template == "error *").unwrap();
        assert!(error.share_delta > 0.3);
        let ok = shifts.iter().find(|s| s.template == "ok *").unwrap();
        assert!(ok.share_delta < -0.3);
    }

    #[test]
    fn templates_missing_from_one_window_are_included() {
        let before = counts(&[("old *", 100)]);
        let after = counts(&[("new *", 100)]);
        let shifts = compare_windows(&before, &after);
        assert_eq!(shifts.len(), 2);
        assert!(shifts.iter().any(|s| s.template == "old *" && s.after == 0));
        assert!(shifts
            .iter()
            .any(|s| s.template == "new *" && s.before == 0));
    }

    #[test]
    fn largest_shift_comes_first() {
        let before = counts(&[("stable *", 100), ("shrinking *", 100), ("growing *", 10)]);
        let after = counts(&[("stable *", 100), ("shrinking *", 10), ("growing *", 200)]);
        let shifts = compare_windows(&before, &after);
        assert!(shifts[0].share_delta.abs() >= shifts[1].share_delta.abs());
        assert!(shifts[1].share_delta.abs() >= shifts[2].share_delta.abs());
    }

    #[test]
    fn snapshot_comparison_matches_manual_distributions() {
        use crate::topic::{LogTopic, TopicConfig};
        let mut topic = LogTopic::new(TopicConfig::new("cmp").with_volume_threshold(u64::MAX));
        let first: Vec<String> = (0..200)
            .map(|i| format!("request {} served in {}ms", i, i % 30))
            .collect();
        topic.ingest(&first);
        let before = topic.query_snapshot();
        let second: Vec<String> = (0..150)
            .map(|i| format!("session {} expired after {} minutes", i, i % 60))
            .collect();
        topic.ingest(&second);
        let after = topic.query_snapshot();
        let shifts = compare_snapshots(&before, &after, 0.9);
        assert_eq!(
            shifts,
            compare_windows(
                &before.template_distribution(0.9),
                &after.template_distribution(0.9)
            )
        );
        // The new family gained share; something in the old family lost share.
        assert!(shifts
            .iter()
            .any(|s| s.before == 0 && s.after > 0 && s.share_delta > 0.0));
    }

    #[test]
    fn empty_windows_do_not_divide_by_zero() {
        let empty = Vec::new();
        let after = counts(&[("x *", 5)]);
        let shifts = compare_windows(&empty, &after);
        assert_eq!(shifts.len(), 1);
        assert!((shifts[0].share_delta - 1.0).abs() < 1e-9);
    }
}
