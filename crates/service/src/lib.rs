//! `service` — the cloud-service layer around the core parser (§3 "System Design", §6
//! "Industrial Evaluation").
//!
//! A **log topic** is the unit of the log service: records are ingested into a topic,
//! parsed online against the topic's current model, and stored with their template id so
//! queries can group and filter by template at any precision. Training runs periodically —
//! triggered by ingested volume or elapsed time — on the recent logs of the topic, and the
//! refreshed model is merged with the previous one.
//!
//! Modules:
//!
//! * [`topic`] — the `LogTopic`: ingestion, online matching, training lifecycle.
//! * [`trigger`] — volume/time training triggers.
//! * [`store`] — the "internal topic" that persists template metadata snapshots.
//! * [`query`] — query API with per-query precision thresholds and template grouping.
//! * [`anomaly`] — out-of-the-box analytics: new-template detection and count-shift
//!   detection between time windows.
//! * [`library`] — the user-curated template library used for alert configuration.
//! * [`compare`] — template-distribution comparison across time ranges.

pub mod anomaly;
pub mod compare;
pub mod library;
pub mod manager;
pub mod matcher_pool;
pub mod query;
pub mod store;
pub mod topic;
pub mod trigger;

pub use anomaly::{AnomalyDetector, AnomalyKind, AnomalyReport};
pub use compare::{compare_windows, DistributionShift};
pub use library::TemplateLibrary;
pub use manager::{FleetStats, ServiceManager, TenantDefaults};
pub use matcher_pool::{BatchResult, MatcherPool};
pub use query::{QueryEngine, QueryOptions, TemplateGroup};
pub use store::ModelStore;
pub use topic::{IngestOutcome, LogTopic, TopicConfig, TopicStats};
pub use trigger::{TrainingTrigger, TriggerDecision};
