//! `service` — the cloud-service layer around the core parser (§3 "System Design", §6
//! "Industrial Evaluation").
//!
//! A **log topic** is the unit of the log service: records are ingested into a topic,
//! parsed online against the topic's current model, and stored with their template id so
//! queries can group and filter by template at any precision. Training runs periodically —
//! triggered by ingested volume or elapsed time — on the recent logs of the topic, and the
//! refreshed model is merged with the previous one.
//!
//! Modules:
//!
//! * [`topic`] — the `LogTopic`: ingestion, online matching, training lifecycle.
//! * [`ingest`] — the sharded streaming ingestion engine: shard → batch → parallel
//!   match over an immutable model snapshot, with back-pressure stats.
//! * [`matcher_pool`] — the worker pool that executes matching for the engine and the
//!   industrial-style experiments.
//! * [`trigger`] — volume/time training triggers.
//! * [`store`] — the "internal topic" that persists template metadata snapshots.
//! * [`query`] — query API with per-query precision thresholds and template grouping,
//!   served from per-node postings aggregated up the precomputed saturation ladder
//!   (never a record scan), with an LRU result cache and thread-safe query snapshots.
//! * [`anomaly`] — out-of-the-box analytics: new-template detection and count-shift
//!   detection between time windows.
//! * [`library`] — the user-curated template library used for alert configuration.
//! * [`compare`] — template-distribution comparison across time ranges.
//!
//! # Streaming ingestion quick start
//!
//! ```
//! use service::{IngestConfig, LogTopic, TopicConfig};
//!
//! let mut topic = LogTopic::new(TopicConfig::new("web").with_volume_threshold(1_000_000));
//! // Cold start: the first (batch) ingest triggers initial training.
//! let warmup: Vec<String> = (0..200)
//!     .map(|i| format!("GET /api/items/{} took {}ms", i % 20, i % 90))
//!     .collect();
//! topic.ingest(&warmup);
//! // Steady state: stream through 4 shards with batched parallel matching.
//! let stream: Vec<String> = (0..1000)
//!     .map(|i| format!("GET /api/items/{} took {}ms", i % 30, i % 400))
//!     .collect();
//! let result = topic.ingest_stream(stream, &IngestConfig::default().with_shards(4));
//! assert_eq!(result.stats.shards.len(), 4);
//! assert!(result.outcome.matched > 900);
//! ```

#![warn(missing_docs)]

pub mod admission;
pub mod anomaly;
pub mod api;
pub mod compare;
pub mod ingest;
pub mod library;
pub mod manager;
pub mod matcher_pool;
pub mod query;
pub mod storage;
pub mod store;
pub mod topic;
pub mod trigger;

pub use admission::{
    Admission, AdmissionConfig, AdmissionMetrics, AdmittedBatch, Shed, TenantAdmissionStats,
    TenantQuota,
};
pub use anomaly::{AnomalyDetector, AnomalyKind, AnomalyReport};
pub use api::{ErrorBody, IngestRequest, IngestResponse, StatsResponse};
pub use bytebrain::{CompiledMatcher, MatchCache, MatchEngine};
pub use compare::{compare_snapshots, compare_windows, DistributionShift};
pub use ingest::{
    IngestConfig, IngestReport, IngestStats, MatchedRecord, Overloaded, Routing, ShardCounters,
    StreamIngestor,
};
pub use library::TemplateLibrary;
pub use manager::{FleetStats, ServiceManager, TenantDefaults};
pub use matcher_pool::{BatchResult, IdBatchResult, MatchId, MatcherPool, StreamRecord};
pub use query::{
    QueryCache, QueryEngine, QueryIndex, QueryOptions, QuerySnapshot, QueryValue, TemplateGroup,
};
pub use storage::{RecoveredTopic, StorageConfig, TopicMeta, TopicStorage};
pub use store::{ModelStore, SnapshotInfo, SnapshotKind};
pub use topic::{
    IngestOutcome, LogTopic, MaintenancePolicy, StreamOutcome, StreamOverloaded, TopicConfig,
    TopicStats,
};
pub use trigger::{TrainingTrigger, TriggerDecision};
