//! The multi-tenant HTTP front end: `minihttp` router → admission control → engine.
//!
//! Request flow (see ARCHITECTURE.md "Front end"):
//!
//! ```text
//! client ──HTTP──▶ minihttp workers ──submit──▶ Admission (quotas, fair RR)
//!                        ▲                            │ next()
//!                        │ reply channel              ▼
//!                        └──────────────────── engine thread ──▶ ServiceManager
//! ```
//!
//! * `POST /v1/{tenant}/{topic}/ingest` — batched log lines ([`service::api::IngestRequest`]).
//!   Sheds with **429** + `Retry-After` when the tenant's token bucket, byte quota,
//!   or queue bound says no — except a batch that alone exceeds its byte quota,
//!   which is a permanent **413**. When the engine's own `max_in_flight` stays
//!   saturated past the configured wait, the committed prefix is reported as a
//!   **200** whose body carries `accepted` and `shed` counts: the client resends
//!   only the last `shed` records, never the whole batch.
//! * `POST /v1/{tenant}/query` — body `{"topic": ..., "query": <Query AST JSON>}`;
//!   planned and executed through the indexed path, responses rendered by
//!   [`service::api::query_value_to_json`] so they are byte-identical to direct
//!   library calls.
//! * `GET /v1/{tenant}/{topic}/stats`, `GET /healthz`, `GET /metrics`.
//!
//! A single **engine thread** owns all `ServiceManager` mutations: it pulls admitted
//! batches in fair round-robin order from the [`Admission`] scheduler and applies
//! them via [`apply_batch`] (exact same function the differential tests call on
//! their twin manager). Storage maintenance runs on a periodic tick thread when
//! [`ServerConfig::maintenance_interval`] is set — library callers keep the
//! inline-only behaviour.
//!
//! Graceful shutdown ([`LogServer::shutdown`]) drains in flight at both layers:
//! the HTTP layer finishes requests it already accepted, then the engine drains
//! **every** admitted batch before the `ServiceManager` is handed back — an
//! admitted (2xx-bound) record is never dropped.

#![warn(missing_docs)]

use minihttp::{percent_decode, Handler, Request, Response};
use serde::Value;
use service::api::{self, ErrorBody, IngestRequest, IngestResponse, StatsResponse};
use service::{Admission, AdmissionConfig, IngestConfig, ServiceManager};
use std::collections::{BTreeMap, HashMap};
use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How a batch is applied to the manager once scheduled.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Streaming-engine tuning for large batches.
    pub ingest: IngestConfig,
    /// Batches with at least this many records take the sharded streaming path;
    /// smaller ones take the direct batch path (streaming setup costs more than it
    /// saves on small batches).
    pub stream_threshold: usize,
    /// Bounded back-pressure: how long the streaming path may wait on a saturated
    /// `max_in_flight` before shedding the rest of the batch.
    pub engine_wait: Duration,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            ingest: IngestConfig::default(),
            stream_threshold: 4_096,
            engine_wait: Duration::from_secs(2),
        }
    }
}

/// Outcome of applying one admitted batch.
#[derive(Debug, Clone)]
pub struct ApplyOutcome {
    /// Matched/unmatched/trained/maintained counters of the accepted prefix.
    pub outcome: service::IngestOutcome,
    /// Records shed by engine-level back-pressure (0 on the batch path and on any
    /// un-saturated streaming run).
    pub shed: usize,
}

/// Apply one batch of records to a tenant's topic exactly as the server's engine
/// thread does: direct batch path below [`EngineConfig::stream_threshold`], the
/// bounded streaming path at or above it. Public so the loopback differential suite
/// drives its twin [`ServiceManager`] through the identical code path.
pub fn apply_batch(
    manager: &mut ServiceManager,
    tenant: &str,
    topic: &str,
    records: Vec<String>,
    config: &EngineConfig,
) -> ApplyOutcome {
    if records.len() < config.stream_threshold {
        let outcome = manager.ingest(tenant, topic, &records);
        return ApplyOutcome { outcome, shed: 0 };
    }
    match manager.ingest_stream_bounded(tenant, topic, records, &config.ingest, config.engine_wait)
    {
        Ok(stream) => ApplyOutcome {
            outcome: stream.outcome,
            shed: 0,
        },
        Err(overloaded) => ApplyOutcome {
            outcome: overloaded.outcome.outcome,
            shed: overloaded.rejected.len(),
        },
    }
}

/// Front-end configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// HTTP layer tuning (worker count, timeouts, body bound).
    pub http: minihttp::ServerConfig,
    /// Admission quotas and overrides.
    pub admission: AdmissionConfig,
    /// Engine application tuning.
    pub engine: EngineConfig,
    /// When set, a tick thread runs fleet-wide storage maintenance (retention +
    /// compaction) at this interval. `None` (the default, matching library
    /// behaviour) leaves maintenance to explicit calls.
    pub maintenance_interval: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            http: minihttp::ServerConfig::default(),
            admission: AdmissionConfig::default(),
            engine: EngineConfig::default(),
            maintenance_interval: None,
        }
    }
}

/// Log-2 latency histogram: bucket `i` counts samples in `[2^i, 2^(i+1))` µs.
#[derive(Debug, Clone, Default)]
struct LatencyHistogram {
    count: u64,
    total_us: u64,
    buckets: [u64; 24],
}

impl LatencyHistogram {
    fn record(&mut self, elapsed: Duration) {
        let us = elapsed.as_micros() as u64;
        self.count += 1;
        self.total_us += us;
        let bucket = (63 - us.max(1).leading_zeros() as usize).min(self.buckets.len() - 1);
        self.buckets[bucket] += 1;
    }

    fn to_value(&self) -> Value {
        let last_used = self
            .buckets
            .iter()
            .rposition(|&c| c > 0)
            .map(|i| i + 1)
            .unwrap_or(0);
        Value::Object(vec![
            ("count".to_string(), Value::UInt(self.count)),
            ("total_us".to_string(), Value::UInt(self.total_us)),
            (
                "log2_us_buckets".to_string(),
                Value::Array(
                    self.buckets[..last_used]
                        .iter()
                        .map(|&c| Value::UInt(c))
                        .collect(),
                ),
            ),
        ])
    }
}

/// Scheduler state shared between HTTP workers and the engine thread: the admission
/// layer plus the reply channels of batches in flight. One mutex so a submit and its
/// reply-channel registration are atomic with respect to the engine's pull.
struct Sched {
    admission: Admission,
    pending: HashMap<u64, Sender<ApplyOutcome>>,
}

struct ServerState {
    manager: Mutex<ServiceManager>,
    sched: Mutex<Sched>,
    work: Condvar,
    stopping: AtomicBool,
    query_latency: Mutex<BTreeMap<String, LatencyHistogram>>,
    maintenance_ticks: AtomicU64,
    engine: EngineConfig,
}

/// The running front end. Obtain one from [`serve`]; recover the manager with
/// [`LogServer::shutdown`].
pub struct LogServer {
    http: Option<minihttp::Server>,
    state: Option<Arc<ServerState>>,
    engine_thread: Option<JoinHandle<()>>,
    tick_thread: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for LogServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LogServer").finish_non_exhaustive()
    }
}

/// Start serving `manager` under `config`.
pub fn serve(manager: ServiceManager, config: ServerConfig) -> io::Result<LogServer> {
    let state = Arc::new(ServerState {
        manager: Mutex::new(manager),
        sched: Mutex::new(Sched {
            admission: Admission::new(config.admission.clone()),
            pending: HashMap::new(),
        }),
        work: Condvar::new(),
        stopping: AtomicBool::new(false),
        query_latency: Mutex::new(BTreeMap::new()),
        maintenance_ticks: AtomicU64::new(0),
        engine: config.engine.clone(),
    });

    let engine_thread = {
        let state = Arc::clone(&state);
        std::thread::Builder::new()
            .name("server-engine".to_string())
            .spawn(move || engine_loop(&state))
            .expect("spawn engine thread")
    };

    let tick_thread = config.maintenance_interval.map(|interval| {
        let state = Arc::clone(&state);
        std::thread::Builder::new()
            .name("server-maintenance".to_string())
            .spawn(move || maintenance_loop(&state, interval))
            .expect("spawn maintenance thread")
    });

    let handler: Handler = {
        let state = Arc::clone(&state);
        Arc::new(move |request: &Request| route(&state, request))
    };
    let http = minihttp::Server::bind(&config.addr, config.http.clone(), handler)?;

    Ok(LogServer {
        http: Some(http),
        state: Some(state),
        engine_thread: Some(engine_thread),
        tick_thread,
    })
}

impl LogServer {
    /// The bound address.
    pub fn addr(&self) -> std::net::SocketAddr {
        self.http.as_ref().expect("server is running").addr()
    }

    /// Graceful shutdown: stop accepting, finish in-flight HTTP requests, drain
    /// every admitted batch through the engine, stop the maintenance tick, and hand
    /// the (fully caught-up) manager back.
    pub fn shutdown(mut self) -> ServiceManager {
        self.stop();
        let state = self.state.take().expect("state present until shutdown");
        let state = Arc::try_unwrap(state)
            .unwrap_or_else(|_| unreachable!("all worker threads were joined in stop()"));
        state
            .manager
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    fn stop(&mut self) {
        let Some(state) = self.state.as_ref() else {
            return;
        };
        state.stopping.store(true, Ordering::SeqCst);
        // 1. HTTP drain: no new connections; accepted requests run to completion
        //    (their ingest replies arrive because the engine is still running).
        if let Some(http) = self.http.take() {
            http.shutdown();
        }
        // 2. Engine drain: wake it so it sees `stopping`; it exits only once the
        //    admission queues are empty.
        {
            let _sched = state.sched.lock().expect("sched lock");
            state.work.notify_all();
        }
        if let Some(engine) = self.engine_thread.take() {
            let _ = engine.join();
        }
        if let Some(tick) = self.tick_thread.take() {
            let _ = tick.join();
        }
    }
}

impl Drop for LogServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn engine_loop(state: &ServerState) {
    loop {
        let batch = {
            let mut sched = state.sched.lock().expect("sched lock");
            loop {
                if let Some(batch) = sched.admission.next_batch() {
                    break Some(batch);
                }
                // Drain-before-exit: `stopping` only matters once no work is queued,
                // so every admitted batch lands in the manager before shutdown.
                if state.stopping.load(Ordering::SeqCst) {
                    break None;
                }
                sched = state.work.wait(sched).expect("sched lock");
            }
        };
        let Some(batch) = batch else { return };
        let outcome = {
            let mut manager = state.manager.lock().expect("manager lock");
            apply_batch(
                &mut manager,
                &batch.tenant,
                &batch.topic,
                batch.records,
                &state.engine,
            )
        };
        let mut sched = state.sched.lock().expect("sched lock");
        sched.admission.complete(&batch.tenant, batch.bytes);
        if let Some(reply) = sched.pending.remove(&batch.ticket) {
            // A dead receiver just means the HTTP client went away; the batch is
            // applied either way.
            let _ = reply.send(outcome);
        }
    }
}

fn maintenance_loop(state: &ServerState, interval: Duration) {
    let step = Duration::from_millis(25).min(interval);
    loop {
        let mut waited = Duration::ZERO;
        while waited < interval {
            if state.stopping.load(Ordering::SeqCst) {
                return;
            }
            std::thread::sleep(step);
            waited += step;
        }
        let mut manager = state.manager.lock().expect("manager lock");
        manager.run_storage_maintenance();
        drop(manager);
        state.maintenance_ticks.fetch_add(1, Ordering::SeqCst);
    }
}

// --- routing ----------------------------------------------------------------------------

fn error_response(status: u16, body: &ErrorBody) -> Response {
    let rendered = serde_json::to_string(body).expect("error body renders");
    let response = Response::json(status, rendered);
    match body.retry_after_ms {
        Some(ms) => response.with_header(
            "Retry-After",
            // Ceil to whole seconds per RFC 9110 (delay-seconds), min 1.
            &ms.div_ceil(1000).max(1).to_string(),
        ),
        None => response,
    }
}

fn not_found() -> Response {
    error_response(404, &ErrorBody::new("no such route"))
}

fn route(state: &ServerState, request: &Request) -> Response {
    let path = request.path_only().to_string();
    let segments: Vec<String> = path
        .split('/')
        .filter(|s| !s.is_empty())
        .map(percent_decode)
        .collect();
    let parts: Vec<&str> = segments.iter().map(String::as_str).collect();
    match (request.method.as_str(), parts.as_slice()) {
        ("GET", ["healthz"]) => Response::json(200, r#"{"status":"ok"}"#),
        ("GET", ["metrics"]) => metrics(state),
        ("POST", ["v1", tenant, "query"]) => query(state, tenant, request),
        ("POST", ["v1", tenant, topic, "ingest"]) => ingest(state, tenant, topic, request),
        ("GET", ["v1", tenant, topic, "stats"]) => stats(state, tenant, topic),
        (_, ["healthz" | "metrics"]) | (_, ["v1", ..]) => {
            error_response(405, &ErrorBody::new("method not allowed on this route"))
        }
        _ => not_found(),
    }
}

fn ingest(state: &ServerState, tenant: &str, topic: &str, request: &Request) -> Response {
    let body = match request.body_str() {
        Ok(text) => text,
        Err(_) => return error_response(400, &ErrorBody::new("body must be UTF-8 JSON")),
    };
    let parsed: IngestRequest = match serde_json::from_str(body) {
        Ok(parsed) => parsed,
        Err(e) => return error_response(400, &ErrorBody::new(format!("bad ingest body: {e}"))),
    };
    if parsed.records.is_empty() {
        return error_response(400, &ErrorBody::new("records must be non-empty"));
    }
    let (reply_tx, reply_rx) = channel();
    {
        let mut sched = state.sched.lock().expect("sched lock");
        match sched
            .admission
            .submit(tenant, topic, parsed.records, Instant::now())
        {
            Ok(ticket) => {
                sched.pending.insert(ticket, reply_tx);
                state.work.notify_all();
            }
            Err(shed) => {
                // Transient sheds are retryable (429 + Retry-After); a batch that
                // can never fit its quota is a permanent 413 — retrying as-is would
                // loop forever.
                return match shed.retry_after() {
                    Some(retry) => error_response(
                        429,
                        &ErrorBody::shed(shed.to_string(), retry.as_millis() as u64),
                    ),
                    None => error_response(413, &ErrorBody::new(shed.to_string())),
                };
            }
        }
    }
    match reply_rx.recv() {
        Ok(applied) => {
            // Even when the engine shed a suffix, the accepted prefix is already
            // committed — report a success-shaped body with the shed count so the
            // client resends only the tail, never the whole (part-duplicate) batch.
            let response =
                IngestResponse::from_outcome(&applied.outcome).with_shed(applied.shed as u64);
            Response::json(200, serde_json::to_string(&response).expect("renders"))
        }
        Err(_) => error_response(503, &ErrorBody::new("engine stopped before reply")),
    }
}

fn query(state: &ServerState, tenant: &str, request: &Request) -> Response {
    let body = match request.body_str() {
        Ok(text) => text,
        Err(_) => return error_response(400, &ErrorBody::new("body must be UTF-8 JSON")),
    };
    let value = match serde_json::parse_value(body) {
        Ok(value) => value,
        Err(e) => return error_response(400, &ErrorBody::new(format!("bad JSON: {e}"))),
    };
    let topic = match value.get("topic") {
        Some(Value::String(topic)) => topic.clone(),
        _ => return error_response(400, &ErrorBody::new("body must carry a \"topic\" string")),
    };
    let query_value = match value.get("query") {
        Some(raw) => raw,
        None => return error_response(400, &ErrorBody::new("body must carry a \"query\" object")),
    };
    let parsed = match api::query_from_value(query_value) {
        Ok(parsed) => parsed,
        Err(e) => return error_response(400, &ErrorBody::new(format!("bad query: {e}"))),
    };
    let plan = match parsed.plan() {
        Ok(plan) => plan,
        Err(e) => return error_response(400, &ErrorBody::new(format!("unplannable query: {e}"))),
    };
    let started = Instant::now();
    let result = {
        let manager = state.manager.lock().expect("manager lock");
        manager.execute(tenant, &topic, &plan)
    };
    let elapsed = started.elapsed();
    state
        .query_latency
        .lock()
        .expect("latency lock")
        .entry(tenant.to_string())
        .or_default()
        .record(elapsed);
    match result {
        Some(result) => Response::json(200, api::query_value_to_json(&result)),
        None => error_response(404, &ErrorBody::new(format!("unknown topic {topic:?}"))),
    }
}

fn stats(state: &ServerState, tenant: &str, topic: &str) -> Response {
    let manager = state.manager.lock().expect("manager lock");
    match manager.topic(tenant, topic) {
        Some(found) => {
            let response = StatsResponse::from_stats(&found.stats());
            Response::json(200, serde_json::to_string(&response).expect("renders"))
        }
        None => error_response(404, &ErrorBody::new(format!("unknown topic {topic:?}"))),
    }
}

fn metrics(state: &ServerState) -> Response {
    let admission = {
        let sched = state.sched.lock().expect("sched lock");
        sched.admission.metrics()
    };
    let latency = state.query_latency.lock().expect("latency lock");
    let mut tenants: Vec<(String, Value)> = Vec::new();
    let mut names: Vec<&String> = admission.keys().chain(latency.keys()).collect();
    names.sort();
    names.dedup();
    for name in names {
        let mut fields: Vec<(String, Value)> = Vec::new();
        if let Some(stats) = admission.get(name.as_str()) {
            fields.extend([
                (
                    "admitted_batches".to_string(),
                    Value::UInt(stats.admitted_batches),
                ),
                (
                    "admitted_records".to_string(),
                    Value::UInt(stats.admitted_records),
                ),
                ("shed_batches".to_string(), Value::UInt(stats.shed_batches)),
                ("shed_records".to_string(), Value::UInt(stats.shed_records)),
                (
                    "queued_batches".to_string(),
                    Value::UInt(stats.queued_batches as u64),
                ),
                (
                    "in_flight_bytes".to_string(),
                    Value::UInt(stats.in_flight_bytes),
                ),
            ]);
        }
        if let Some(histogram) = latency.get(name.as_str()) {
            fields.push(("query_latency".to_string(), histogram.to_value()));
        }
        tenants.push((name.clone(), Value::Object(fields)));
    }
    let body = Value::Object(vec![
        ("tenants".to_string(), Value::Object(tenants)),
        (
            "maintenance_ticks".to_string(),
            Value::UInt(state.maintenance_ticks.load(Ordering::SeqCst)),
        ),
    ]);
    Response::json(200, serde_json::to_string(&body).expect("renders"))
}
