//! Run the multi-tenant HTTP front end on a fixed port.
//!
//! ```bash
//! cargo run --release -p server --example serve
//! ```
//!
//! Then, from another shell:
//!
//! ```bash
//! curl -s -X POST localhost:7171/v1/acme/web/ingest \
//!   -d '{"records":["Accepted password for carol from 10.0.0.7 port 22"]}'
//! curl -s -X POST localhost:7171/v1/acme/query \
//!   -d '{"topic":"web","query":{"threshold":0.6,"aggregate":{"top_k":5}}}'
//! curl -s localhost:7171/v1/acme/web/stats
//! curl -s localhost:7171/metrics
//! ```

use server::{serve, ServerConfig};
use service::{AdmissionConfig, ServiceManager, TenantQuota};

fn main() -> std::io::Result<()> {
    let config = ServerConfig {
        addr: "127.0.0.1:7171".to_string(),
        // Every tenant gets the same demo quota: 50k records/s sustained with
        // a 100k-record burst. Overshoot answers 429 + Retry-After.
        admission: AdmissionConfig::default().with_default_quota(
            TenantQuota::default()
                .with_rate(50_000.0)
                .with_burst(100_000),
        ),
        ..ServerConfig::default()
    };
    let server = serve(ServiceManager::new(), config)?;
    println!("listening on http://{}", server.addr());
    println!("try:");
    println!(
        "  curl -s -X POST localhost:7171/v1/acme/web/ingest -d '{{\"records\":[\"a b c\"]}}'"
    );
    println!(
        "  curl -s -X POST localhost:7171/v1/acme/query -d '{{\"topic\":\"web\",\"query\":{{}}}}'"
    );
    println!("  curl -s localhost:7171/metrics");
    println!("(ctrl-c to stop)");
    loop {
        std::thread::park();
    }
}
