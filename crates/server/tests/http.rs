//! Loopback integration suite: the HTTP front end against real sockets.
//!
//! The centrepiece is the **differential** contract: every endpoint's response body
//! must be byte-identical to what the equivalent direct `ServiceManager` call
//! produces, with the twin manager driven through `server::apply_batch` — the exact
//! function the server's engine thread runs. On top of that: quota sheds (429 →
//! recovery), two-tenant fairness under a saturating flood, graceful shutdown with
//! zero admitted-record loss on a durable root, and the periodic maintenance tick.

use minihttp::ClientConn;
use server::{apply_batch, serve, EngineConfig, ServerConfig};
use service::api::{self, IngestRequest, IngestResponse, StatsResponse};
use service::{AdmissionConfig, IngestConfig, ServiceManager, StorageConfig, TenantQuota};
use std::path::PathBuf;
use std::time::{Duration, Instant};

use bytebrain::{Predicate, Query};

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bb-server-{tag}-{}", std::process::id()));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).expect("clear scratch dir");
    }
    dir
}

fn lines(tenant: &str, start: usize, n: usize) -> Vec<String> {
    (start..start + n)
        .map(|i| {
            format!(
                "{} job {} finished on host node-{:02} in {}ms",
                tenant,
                i,
                i % 16,
                i % 700
            )
        })
        .collect()
}

fn ingest_body(records: &[String]) -> String {
    serde_json::to_string(&IngestRequest {
        records: records.to_vec(),
    })
    .expect("render ingest request")
}

fn query_body(topic: &str, query: &Query) -> String {
    format!(
        "{{\"topic\":{},\"query\":{}}}",
        serde_json::to_string(&topic.to_string()).unwrap(),
        api::query_to_json(query)
    )
}

/// POST helper returning (status, body).
fn post(client: &mut ClientConn, path: &str, body: &str) -> (u16, String) {
    let response = client
        .request_with_headers(
            "POST",
            path,
            &[("Content-Type", "application/json")],
            body.as_bytes(),
        )
        .expect("request round-trips");
    (response.status, response.body_str())
}

fn get(client: &mut ClientConn, path: &str) -> (u16, String) {
    let response = client
        .request("GET", path, b"")
        .expect("request round-trips");
    (response.status, response.body_str())
}

#[test]
fn healthz_and_unknown_routes() {
    let server = serve(ServiceManager::new(), ServerConfig::default()).expect("serve");
    let mut client = ClientConn::connect(server.addr()).unwrap();
    let (status, body) = get(&mut client, "/healthz");
    assert_eq!((status, body.as_str()), (200, r#"{"status":"ok"}"#));
    let (status, _) = get(&mut client, "/nope");
    assert_eq!(status, 404);
    let (status, _) = post(&mut client, "/healthz", "{}");
    assert_eq!(status, 405);
    let (status, body) = post(&mut client, "/v1/t/q/ingest", "not json");
    assert_eq!(status, 400, "{body}");
    server.shutdown();
}

/// Every endpoint response, byte for byte, against a twin manager driven through
/// the identical `apply_batch` path — including a repeated (plan-cache-hit) query.
#[test]
fn loopback_differential_is_byte_identical() {
    let engine = EngineConfig {
        stream_threshold: 1_024,
        ..EngineConfig::default()
    };
    let config = ServerConfig {
        engine: engine.clone(),
        ..ServerConfig::default()
    };
    let server = serve(ServiceManager::new(), config).expect("serve");
    let addr = server.addr();

    // Two tenants ingest concurrently over real sockets; each tenant's own request
    // stream is serial, so its topic state is deterministic regardless of how the
    // engine interleaves tenants.
    let tenants = ["acme", "globex"];
    let handles: Vec<_> = tenants
        .iter()
        .map(|tenant| {
            let tenant = tenant.to_string();
            std::thread::spawn(move || {
                let mut client = ClientConn::connect(addr).unwrap();
                let mut bodies = Vec::new();
                // Mixed batch sizes: 300 (batch path) and 2_000 (streaming path).
                for (start, n) in [(0, 300), (300, 2_000), (2_300, 300)] {
                    let records = lines(&tenant, start, n);
                    let (status, body) = post(
                        &mut client,
                        &format!("/v1/{tenant}/events/ingest"),
                        &ingest_body(&records),
                    );
                    assert_eq!(status, 200, "{body}");
                    bodies.push(body);
                }
                bodies
            })
        })
        .collect();
    let response_bodies: Vec<Vec<String>> = handles
        .into_iter()
        .map(|h| h.join().expect("client thread"))
        .collect();

    // Twin manager: identical records through the identical apply path.
    let mut twin = ServiceManager::new();
    for (t, tenant) in tenants.iter().enumerate() {
        for ((start, n), served_body) in [(0, 300), (300, 2_000), (2_300, 300)]
            .into_iter()
            .zip(&response_bodies[t])
        {
            let applied = apply_batch(
                &mut twin,
                tenant,
                "events",
                lines(tenant, start, n),
                &engine,
            );
            assert_eq!(applied.shed, 0);
            let expected =
                serde_json::to_string(&IngestResponse::from_outcome(&applied.outcome)).unwrap();
            assert_eq!(
                served_body, &expected,
                "ingest response diverged for tenant {tenant}"
            );
        }
    }

    // Queries: every aggregate kind, nested predicates, and a repeated query so the
    // second hit is served by the plan/result cache — still byte-identical.
    let queries = vec![
        Query::group_by(),
        Query::top_k(3).filter(Predicate::template_matches("job <*> finished")),
        Query::distribution().at_threshold(0.3),
        Query::count_distinct().filter(Predicate::Or(vec![
            Predicate::variable_contains("node-03"),
            Predicate::TimeWindow { start: 0, end: 500 },
        ])),
        Query::group_by(), // repeat: plan-cache + result-cache hit
    ];
    let mut client = ClientConn::connect(addr).unwrap();
    for tenant in &tenants {
        for query in &queries {
            let (status, served) = post(
                &mut client,
                &format!("/v1/{tenant}/query"),
                &query_body("events", query),
            );
            assert_eq!(status, 200, "{served}");
            let plan = query.clone().plan().expect("plannable");
            let direct = twin
                .execute(tenant, "events", &plan)
                .expect("twin topic exists");
            assert_eq!(
                served,
                api::query_value_to_json(&direct),
                "query response diverged for tenant {tenant}: {query:?}"
            );
        }
    }

    // Stats endpoint vs the twin's stats.
    for tenant in &tenants {
        let (status, served) = get(&mut client, &format!("/v1/{tenant}/events/stats"));
        assert_eq!(status, 200);
        let direct = twin.topic(tenant, "events").expect("twin topic").stats();
        let expected = serde_json::to_string(&StatsResponse::from_stats(&direct)).unwrap();
        assert_eq!(served, expected, "stats diverged for tenant {tenant}");
    }

    // Unknown topics 404 on both query and stats.
    let (status, _) = post(
        &mut client,
        "/v1/acme/query",
        &query_body("ghost", &queries[0]),
    );
    assert_eq!(status, 404);
    let (status, _) = get(&mut client, "/v1/acme/ghost/stats");
    assert_eq!(status, 404);

    server.shutdown();
}

#[test]
fn quota_exhaustion_returns_429_then_recovers() {
    let quota = TenantQuota::default().with_rate(1_000.0).with_burst(500);
    let config = ServerConfig {
        admission: AdmissionConfig::default().with_tenant_quota("metered", quota),
        ..ServerConfig::default()
    };
    let server = serve(ServiceManager::new(), config).expect("serve");
    let mut client = ClientConn::connect(server.addr()).unwrap();

    // Burst of 500 is admitted; the immediate follow-up is shed.
    let (status, body) = post(
        &mut client,
        "/v1/metered/logs/ingest",
        &ingest_body(&lines("metered", 0, 500)),
    );
    assert_eq!(status, 200, "{body}");
    let (status, body) = post(
        &mut client,
        "/v1/metered/logs/ingest",
        &ingest_body(&lines("metered", 500, 400)),
    );
    assert_eq!(status, 429, "{body}");
    assert!(body.contains("rate limited"), "{body}");
    assert!(body.contains("retry_after_ms"), "{body}");
    let shed_response = client
        .request("GET", "/metrics", b"")
        .expect("metrics round-trips");
    assert!(
        shed_response.body_str().contains("\"shed_batches\":1"),
        "{}",
        shed_response.body_str()
    );

    // 400 records at 1000/s refill in 400ms; wait a little longer, then recover.
    std::thread::sleep(Duration::from_millis(600));
    let (status, body) = post(
        &mut client,
        "/v1/metered/logs/ingest",
        &ingest_body(&lines("metered", 500, 400)),
    );
    assert_eq!(status, 200, "refilled bucket must admit again: {body}");

    // The 429 carried a Retry-After header.
    let response = client
        .request_with_headers(
            "POST",
            "/v1/metered/logs/ingest",
            &[("Content-Type", "application/json")],
            ingest_body(&lines("metered", 900, 2_000)).as_bytes(),
        )
        .unwrap();
    assert_eq!(response.status, 429);
    assert!(
        response.header("Retry-After").is_some(),
        "429 must carry Retry-After"
    );
    server.shutdown();
}

/// Percent-escapes abutting multibyte UTF-8 path chars must not take down HTTP
/// workers: more such requests than the worker pool holds, then normal service.
#[test]
fn multibyte_percent_paths_do_not_kill_the_server() {
    let server = serve(ServiceManager::new(), ServerConfig::default()).expect("serve");
    for _ in 0..6 {
        let mut client = ClientConn::connect(server.addr()).unwrap();
        let (status, body) = post(&mut client, "/v1/%aé/query", "{}");
        assert_eq!(status, 400, "{body}");
    }
    let mut client = ClientConn::connect(server.addr()).unwrap();
    let (status, _) = get(&mut client, "/healthz");
    assert_eq!(status, 200, "server must still be serving");
    server.shutdown();
}

/// A batch that alone exceeds its tenant's in-flight byte bound can never be
/// admitted: it must be a permanent 413, not a 429 the client retries forever.
#[test]
fn oversized_batch_is_rejected_with_413_not_429() {
    let quota = TenantQuota::default().with_max_in_flight_bytes(1_000);
    let config = ServerConfig {
        admission: AdmissionConfig::default().with_tenant_quota("capped", quota),
        ..ServerConfig::default()
    };
    let server = serve(ServiceManager::new(), config).expect("serve");
    let mut client = ClientConn::connect(server.addr()).unwrap();
    let response = client
        .request_with_headers(
            "POST",
            "/v1/capped/logs/ingest",
            &[("Content-Type", "application/json")],
            ingest_body(&vec!["x".repeat(2_000)]).as_bytes(),
        )
        .expect("request round-trips");
    assert_eq!(response.status, 413, "{}", response.body_str());
    assert!(
        response.header("Retry-After").is_none(),
        "a permanent rejection must not invite a retry"
    );
    // A batch that fits is still served normally.
    let (status, body) = post(
        &mut client,
        "/v1/capped/logs/ingest",
        &ingest_body(&lines("capped", 0, 5)),
    );
    assert_eq!(status, 200, "{body}");
    server.shutdown();
}

/// When the engine sheds a suffix of an admitted batch, the committed prefix must
/// be reported as a 200 with accepted/shed counts — not a 429 that tricks the
/// client into resending (and duplicating) the already-committed prefix.
#[test]
fn engine_shed_reports_committed_prefix_as_success() {
    let engine = EngineConfig {
        // A 1-slot, 1-worker pool with zero wait: once the first big batch is in
        // flight, the very next push finds the slot occupied (matching 256 long
        // records far outlasts one buffer append) and the remainder is shed.
        ingest: IngestConfig::default()
            .with_shards(1)
            .with_workers(1)
            .with_max_in_flight(1)
            .with_batch_records(256),
        stream_threshold: 8,
        engine_wait: Duration::ZERO,
    };
    let server = serve(
        ServiceManager::new(),
        ServerConfig {
            engine,
            ..ServerConfig::default()
        },
    )
    .expect("serve");
    let mut client = ClientConn::connect(server.addr()).unwrap();
    let make = |start: u64, n: u64| -> Vec<String> {
        (start..start + n)
            .map(|i| format!("job {i} finished with payload {}", "word ".repeat(200)))
            .collect()
    };
    // Prime the topic: an empty model bypasses the streaming engine entirely, so
    // train it first with a plain batch.
    let (status, body) = post(&mut client, "/v1/t/logs/ingest", &ingest_body(&make(0, 300)));
    assert_eq!(status, 200, "{body}");
    let primed: IngestResponse = serde_json::from_str(&body).expect("prime body");

    let total = 5_000u64;
    let (status, body) = post(
        &mut client,
        "/v1/t/logs/ingest",
        &ingest_body(&make(300, total)),
    );
    assert_eq!(status, 200, "partial application is a success: {body}");
    let parsed: IngestResponse = serde_json::from_str(&body).expect("success-shaped body");
    assert!(parsed.shed > 0, "saturated 1-slot pool must shed: {body}");
    assert_eq!(parsed.accepted + parsed.shed, total, "{body}");
    // The accepted count is exactly what was committed: resending the last `shed`
    // records (and only those) reconstructs the full batch without duplicates.
    let (status, stats_body) = get(&mut client, "/v1/t/logs/stats");
    assert_eq!(status, 200);
    let stats: StatsResponse = serde_json::from_str(&stats_body).expect("stats body");
    assert_eq!(
        stats.total_records,
        primed.accepted + parsed.accepted,
        "{stats_body}"
    );
    server.shutdown();
}

/// Under a saturating two-tenant workload, the rate-limited tenant sheds with 429s
/// while the in-quota tenant's ingest throughput stays within 20% of its solo rate.
#[test]
fn fair_share_isolates_the_in_quota_tenant() {
    let flood_quota = TenantQuota::default().with_rate(200.0).with_burst(200);
    let admission = AdmissionConfig::default().with_tenant_quota("flood", flood_quota);
    let payload_batches: Vec<Vec<String>> =
        (0..12).map(|i| lines("steady", i * 2_000, 2_000)).collect();

    let run_steady = |addr: std::net::SocketAddr| -> Duration {
        let mut client = ClientConn::connect(addr).unwrap();
        let started = Instant::now();
        for batch in &payload_batches {
            let (status, body) = post(&mut client, "/v1/steady/logs/ingest", &ingest_body(batch));
            assert_eq!(status, 200, "steady tenant must never shed: {body}");
        }
        started.elapsed()
    };

    // Solo baseline.
    let solo_server = serve(
        ServiceManager::new(),
        ServerConfig {
            admission: admission.clone(),
            ..ServerConfig::default()
        },
    )
    .expect("serve solo");
    let solo = run_steady(solo_server.addr());
    solo_server.shutdown();

    // Contended run: "flood" hammers past its quota the whole time.
    let contended_server = serve(
        ServiceManager::new(),
        ServerConfig {
            admission,
            ..ServerConfig::default()
        },
    )
    .expect("serve contended");
    let addr = contended_server.addr();
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let flood_handle = {
        let stop = std::sync::Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut client = ClientConn::connect(addr).unwrap();
            let batch = ingest_body(&lines("flood", 0, 50));
            let mut sheds = 0u64;
            while !stop.load(std::sync::atomic::Ordering::SeqCst) {
                let (status, _) = post(&mut client, "/v1/flood/logs/ingest", &batch);
                if status == 429 {
                    sheds += 1;
                }
                // Paced flood: saturates the 200 rec/s quota many times over
                // without monopolizing the single-core container's CPU.
                std::thread::sleep(Duration::from_millis(10));
            }
            sheds
        })
    };
    let contended = run_steady(addr);
    stop.store(true, std::sync::atomic::Ordering::SeqCst);
    let sheds = flood_handle.join().expect("flood thread");
    contended_server.shutdown();

    assert!(
        sheds > 0,
        "the flooding tenant must have been shed at least once"
    );
    let ratio = contended.as_secs_f64() / solo.as_secs_f64();
    assert!(
        ratio <= 1.25,
        "in-quota tenant slowed by more than 20% under flood: solo {solo:?}, contended {contended:?} (ratio {ratio:.2})"
    );
}

/// Graceful shutdown on a durable root: every record a 200 response admitted is on
/// disk after reopen; nothing is lost in the HTTP or engine queues.
#[test]
fn graceful_shutdown_loses_zero_admitted_records() {
    let root = scratch_dir("drain");
    let manager = ServiceManager::durable(&root, StorageConfig::default()).expect("durable");
    let server = serve(manager, ServerConfig::default()).expect("serve");
    let addr = server.addr();

    // Concurrent clients keep batches moving right up to the shutdown call.
    let handles: Vec<_> = (0..3)
        .map(|c| {
            std::thread::spawn(move || {
                let mut client = ClientConn::connect(addr).unwrap();
                let mut accepted = 0u64;
                for b in 0..6 {
                    let records = lines("dur", (c * 6 + b) * 250, 250);
                    let (status, body) =
                        post(&mut client, "/v1/dur/audit/ingest", &ingest_body(&records));
                    if status == 200 {
                        let parsed: IngestResponse = serde_json::from_str(&body).unwrap();
                        accepted += parsed.accepted;
                    }
                }
                accepted
            })
        })
        .collect();
    let accepted: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    assert_eq!(accepted, 3 * 6 * 250, "open quotas admit everything");

    // Shutdown returns the drained manager; its state must already be complete...
    let manager = server.shutdown();
    let live_stats = manager.topic("dur", "audit").expect("topic exists").stats();
    assert_eq!(live_stats.total_records, accepted);
    drop(manager);

    // ...and so must the durable copy, after a cold reopen.
    let reopened = ServiceManager::open(&root).expect("reopen");
    let stats = reopened
        .topic("dur", "audit")
        .expect("recovered topic")
        .stats();
    assert_eq!(
        stats.total_records, accepted,
        "recovered topic must hold every admitted record"
    );
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn maintenance_tick_runs_periodically() {
    let root = scratch_dir("tick");
    let manager = ServiceManager::durable(&root, StorageConfig::default()).expect("durable");
    let config = ServerConfig {
        maintenance_interval: Some(Duration::from_millis(50)),
        ..ServerConfig::default()
    };
    let server = serve(manager, config).expect("serve");
    let mut client = ClientConn::connect(server.addr()).unwrap();
    let (status, _) = post(
        &mut client,
        "/v1/t/logs/ingest",
        &ingest_body(&lines("t", 0, 200)),
    );
    assert_eq!(status, 200);
    let deadline = Instant::now() + Duration::from_secs(5);
    let ticks = loop {
        let (status, body) = get(&mut client, "/metrics");
        assert_eq!(status, 200);
        let value = serde_json::parse_value(&body).expect("metrics is JSON");
        let ticks = match value.get("maintenance_ticks") {
            Some(serde::Value::UInt(n)) => *n,
            other => panic!("bad maintenance_ticks: {other:?}"),
        };
        if ticks >= 2 || Instant::now() > deadline {
            break ticks;
        }
        std::thread::sleep(Duration::from_millis(25));
    };
    assert!(ticks >= 2, "tick thread must have run repeatedly: {ticks}");
    server.shutdown();
    std::fs::remove_dir_all(&root).ok();
}
