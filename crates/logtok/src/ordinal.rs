//! Ordinal encoding — the dictionary-based alternative to hash encoding.
//!
//! The paper compares hash encoding against ordinal encoding (assigning each distinct
//! token a sequential id) and shows in Fig. 10 that the token→id dictionary grows to
//! hundreds of megabytes on large corpora, whereas hash encoding needs no dictionary at
//! all. This module exists to reproduce that ablation (Fig. 9 "ordinal encoding" variant
//! and Fig. 10): it measures the dictionary size and provides an alternative encoder with
//! identical semantics but a persistent mapping.

use std::collections::HashMap;

/// Dictionary-based token encoder.
#[derive(Debug, Default, Clone)]
pub struct OrdinalEncoder {
    token_to_id: HashMap<String, u64>,
    id_to_token: Vec<String>,
}

impl OrdinalEncoder {
    /// Create an empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Encode a token, assigning a fresh id if it has not been seen before.
    ///
    /// Unlike hash encoding this is inherently sequential: the id depends on insertion
    /// order, so tokens cannot be encoded in parallel without coordination (one of the
    /// efficiency arguments for hash encoding in §4.1.4).
    pub fn encode(&mut self, token: &str) -> u64 {
        if let Some(&id) = self.token_to_id.get(token) {
            return id;
        }
        let id = self.id_to_token.len() as u64;
        self.token_to_id.insert(token.to_string(), id);
        self.id_to_token.push(token.to_string());
        id
    }

    /// Encode a whole token sequence.
    pub fn encode_sequence<S: AsRef<str>>(&mut self, tokens: &[S]) -> Vec<u64> {
        tokens.iter().map(|t| self.encode(t.as_ref())).collect()
    }

    /// Decode an id back into its token, when it exists.
    pub fn decode(&self, id: u64) -> Option<&str> {
        self.id_to_token.get(id as usize).map(|s| s.as_str())
    }

    /// Number of distinct tokens in the dictionary.
    pub fn vocabulary_size(&self) -> usize {
        self.id_to_token.len()
    }

    /// Size in bytes of the serialized dictionary: for every entry we count the token
    /// bytes plus an 8-byte id, which is what a minimal on-disk token→id mapping costs.
    /// This is the quantity plotted in Fig. 10.
    pub fn dictionary_size_bytes(&self) -> u64 {
        self.id_to_token.iter().map(|t| t.len() as u64 + 8).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_stable_and_sequential() {
        let mut enc = OrdinalEncoder::new();
        assert_eq!(enc.encode("alpha"), 0);
        assert_eq!(enc.encode("beta"), 1);
        assert_eq!(enc.encode("alpha"), 0);
        assert_eq!(enc.vocabulary_size(), 2);
    }

    #[test]
    fn decode_round_trip() {
        let mut enc = OrdinalEncoder::new();
        let id = enc.encode("gamma");
        assert_eq!(enc.decode(id), Some("gamma"));
        assert_eq!(enc.decode(999), None);
    }

    #[test]
    fn sequence_encoding() {
        let mut enc = OrdinalEncoder::new();
        let seq = enc.encode_sequence(&["a", "b", "a", "c"]);
        assert_eq!(seq, vec![0, 1, 0, 2]);
    }

    #[test]
    fn dictionary_size_tracks_token_bytes() {
        let mut enc = OrdinalEncoder::new();
        enc.encode("abcd");
        enc.encode("x");
        // (4 + 8) + (1 + 8)
        assert_eq!(enc.dictionary_size_bytes(), 21);
    }

    #[test]
    fn dictionary_grows_only_with_distinct_tokens() {
        let mut enc = OrdinalEncoder::new();
        for _ in 0..1000 {
            enc.encode("repeated");
        }
        assert_eq!(enc.vocabulary_size(), 1);
        assert_eq!(enc.dictionary_size_bytes(), 8 + 8);
    }
}
