//! Common variable replacement (§4.1.2).
//!
//! Users may supply regex patterns for obvious variables so that clustering does not have
//! to discover them. The paper ships default patterns per topic for timestamps, IP
//! addresses, MD5 hashes, UUIDs "and so on"; this module provides the equivalent default
//! rule set plus the ability to add domain-specific rules.
//!
//! Masked spans are replaced by the wildcard token `<*>` so downstream clustering treats
//! them as already-resolved variable positions.

use crate::WILDCARD;
use logregex::{BytePresence, Regex, RegexError};

/// One masking rule: a pattern and the replacement it maps to.
#[derive(Debug, Clone)]
pub struct MaskRule {
    /// Human-readable rule name (used in diagnostics and the service UI).
    pub name: String,
    regex: Regex,
    replacement: String,
}

impl MaskRule {
    /// Create a rule that replaces every match of `pattern` with `<*>`.
    pub fn new(name: &str, pattern: &str) -> Result<Self, RegexError> {
        Self::with_replacement(name, pattern, WILDCARD)
    }

    /// Create a rule with an explicit replacement string.
    pub fn with_replacement(
        name: &str,
        pattern: &str,
        replacement: &str,
    ) -> Result<Self, RegexError> {
        Ok(MaskRule {
            name: name.to_string(),
            regex: Regex::new(pattern)?,
            replacement: replacement.to_string(),
        })
    }

    /// Apply the rule to `text`, returning the masked string.
    pub fn apply(&self, text: &str) -> String {
        self.regex.replace_all(text, &self.replacement)
    }

    /// True when the rule matches anywhere in `text`.
    pub fn matches(&self, text: &str) -> bool {
        self.regex.is_match(text)
    }
}

/// An ordered list of masking rules applied to each raw log record.
#[derive(Debug, Clone, Default)]
pub struct Masker {
    rules: Vec<MaskRule>,
}

impl Masker {
    /// A masker with no rules (masking disabled).
    pub fn empty() -> Self {
        Masker { rules: Vec::new() }
    }

    /// The default rule set: timestamps, IPs, UUIDs, MD5/long-hex ids, and memory sizes.
    ///
    /// These mirror the "default patterns for common variables" the paper provides per
    /// topic. The rules deliberately target unambiguous formats; plain decimal integers
    /// are *not* masked by default because they are frequently structural (error codes,
    /// levels) and the clustering stage resolves them on its own.
    pub fn default_rules() -> Self {
        let mut masker = Masker::empty();
        let rules: &[(&str, &str)] = &[
            (
                "iso-timestamp",
                r"\d{4}-\d{2}-\d{2}[ T]\d{2}:\d{2}:\d{2}(\.\d+)?",
            ),
            ("clock-time", r"\d{2}:\d{2}:\d{2}(\.\d+)?"),
            (
                "ipv4",
                r"\d{1,3}\.\d{1,3}\.\d{1,3}\.\d{1,3}(/\d{1,2})?(:\d{1,5})?",
            ),
            (
                "uuid",
                r"[0-9a-fA-F]{8}-[0-9a-fA-F]{4}-[0-9a-fA-F]{4}-[0-9a-fA-F]{4}-[0-9a-fA-F]{12}",
            ),
            ("md5", r"[0-9a-f]{32}"),
            ("long-hex", r"0x[0-9a-fA-F]{4,16}"),
            ("mem-size", r"\d+(\.\d+)?(KB|MB|GB|TB|kb|mb|gb|B)"),
            ("duration-ms", r"\d+(\.\d+)?(ms|us|ns|sec|secs|seconds)"),
        ];
        for (name, pattern) in rules {
            masker.add_rule(MaskRule::new(name, pattern).expect("default mask rule must compile"));
        }
        masker
    }

    /// Append a rule; rules are applied in insertion order.
    pub fn add_rule(&mut self, rule: MaskRule) {
        self.rules.push(rule);
    }

    /// Convenience: compile and append a rule.
    pub fn add_pattern(&mut self, name: &str, pattern: &str) -> Result<(), RegexError> {
        self.add_rule(MaskRule::new(name, pattern)?);
        Ok(())
    }

    /// Number of configured rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True when no rules are configured.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Apply every rule in order and return the masked record.
    pub fn mask(&self, record: &str) -> String {
        let mut out = String::new();
        let mut swap = String::new();
        self.mask_into(record, &mut out, &mut swap);
        out
    }

    /// Allocation-free variant of [`Masker::mask`] for hot paths: the masked record is
    /// left in `out`, with `swap` used as the ping-pong buffer between rules. Both
    /// buffers are reused across calls, so after warm-up no heap allocation happens.
    ///
    /// Two filters keep the per-record regex work proportional to the rules that can
    /// actually fire: a one-pass [`BytePresence`] bitmap rejects rules whose mandatory
    /// bytes are absent from the line (a line with no `-` can never contain a UUID or
    /// ISO timestamp), and rules that pass are driven by a single find-then-resume scan
    /// instead of an `is_match` probe followed by a full re-scan.
    pub fn mask_into(&self, record: &str, out: &mut String, swap: &mut String) {
        out.clear();
        out.push_str(record);
        if self.rules.is_empty() {
            return;
        }
        let mut presence = BytePresence::scan(out.as_bytes());
        for rule in &self.rules {
            if !rule.regex.may_match(&presence) {
                continue;
            }
            let Some(first) = rule.regex.find(out) else {
                continue;
            };
            swap.clear();
            swap.push_str(&out[..first.start]);
            swap.push_str(&rule.replacement);
            let mut last = first.end;
            // Resume past the first match; for an empty match step one byte so
            // the scan always advances (mirrors `find_iter` semantics).
            let resume = if first.is_empty() {
                first.end + 1
            } else {
                first.end
            };
            for m in rule.regex.find_iter_at(out, resume) {
                swap.push_str(&out[last..m.start]);
                swap.push_str(&rule.replacement);
                last = m.end;
            }
            swap.push_str(&out[last..]);
            std::mem::swap(out, swap);
            // The replacement changed the byte population; rescan for the
            // remaining rules (only paid when a rule actually fired).
            presence = BytePresence::scan(out.as_bytes());
        }
    }

    /// Names of the configured rules, in application order.
    pub fn rule_names(&self) -> Vec<&str> {
        self.rules.iter().map(|r| r.name.as_str()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_ipv4_addresses() {
        let m = Masker::default_rules();
        let out = m.mask("Failed password for root from 183.62.140.253 port 22 ssh2");
        assert!(out.contains("<*>"));
        assert!(!out.contains("183.62.140.253"));
    }

    #[test]
    fn masks_iso_timestamp() {
        let m = Masker::default_rules();
        let out = m.mask("2025-04-12 08:15:12.123 INFO dfs.DataNode started");
        assert!(out.starts_with("<*>"));
        assert!(out.contains("INFO"));
    }

    #[test]
    fn masks_uuid_and_hex() {
        let m = Masker::default_rules();
        let out = m.mask("request 123e4567-e89b-12d3-a456-426614174000 flag 0xDEADBEEF done");
        assert_eq!(out, "request <*> flag <*> done");
    }

    #[test]
    fn leaves_plain_integers_alone() {
        let m = Masker::default_rules();
        let out = m.mask("exit code 3 after 5 retries");
        assert_eq!(out, "exit code 3 after 5 retries");
    }

    #[test]
    fn custom_rule_order_is_respected() {
        let mut m = Masker::empty();
        m.add_pattern("block-id", r"blk_-?\d+").unwrap();
        let out = m.mask("Deleting block blk_-1608999687919862906 file x");
        assert_eq!(out, "Deleting block <*> file x");
    }

    #[test]
    fn custom_replacement_text() {
        let rule = MaskRule::with_replacement("pid", r"pid=\d+", "pid=<pid>").unwrap();
        assert_eq!(rule.apply("start pid=4242 ok"), "start pid=<pid> ok");
    }

    #[test]
    fn empty_masker_is_identity() {
        let m = Masker::empty();
        assert!(m.is_empty());
        assert_eq!(m.mask("anything 1.2.3.4 here"), "anything 1.2.3.4 here");
    }

    #[test]
    fn invalid_pattern_is_rejected() {
        let mut m = Masker::empty();
        assert!(m.add_pattern("bad", "(?=lookahead)").is_err());
    }

    #[test]
    fn rule_names_in_order() {
        let m = Masker::default_rules();
        let names = m.rule_names();
        assert_eq!(names[0], "iso-timestamp");
        assert!(names.contains(&"ipv4"));
        assert_eq!(names.len(), m.len());
    }

    #[test]
    fn memory_and_duration_units() {
        let m = Masker::default_rules();
        assert_eq!(m.mask("allocated 512MB in 35ms"), "allocated <*> in <*>");
    }
}
