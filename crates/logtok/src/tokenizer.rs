//! Tokenization of raw log records (§4.1.1).
//!
//! The paper's default tokenizer (Listing 1) splits on:
//!
//! * the URL protocol separator `://`
//! * common delimiters: whitespace, quotes, `;=()[]{}?@&<>:,` and control characters
//! * sentence-ending periods (a `.` followed by whitespace or end of record), while
//!   preserving periods inside numbers, versions and hostnames
//! * escaped quotes `\"` and `\'`
//!
//! Runs of consecutive delimiters collapse into a single split point and empty tokens are
//! dropped. Rather than paying a generic regex engine for this hot path, the default rules
//! are implemented directly as a byte-level scanner (the behaviour is verified against the
//! regex semantics in the tests); custom per-topic delimiter sets are supported as the
//! paper allows users to override tokenization per log topic.

use serde::{Deserialize, Serialize};

/// Configuration for the tokenizer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TokenizerConfig {
    /// Extra single-byte delimiters in addition to the paper's default set.
    pub extra_delimiters: Vec<u8>,
    /// When false, the default delimiter set is not used and only `extra_delimiters`
    /// split tokens (useful for pre-tokenized or CSV-ish topics).
    pub use_default_delimiters: bool,
    /// Treat sentence-ending periods (`.` followed by whitespace/end) as delimiters.
    pub split_sentence_periods: bool,
    /// Maximum number of tokens to produce per record; the remainder of the record is
    /// appended as one final token. Guards against pathological records (e.g. megabyte
    /// JSON blobs) blowing up clustering cost.
    pub max_tokens: usize,
}

impl Default for TokenizerConfig {
    fn default() -> Self {
        TokenizerConfig {
            extra_delimiters: Vec::new(),
            use_default_delimiters: true,
            split_sentence_periods: true,
            max_tokens: 512,
        }
    }
}

/// A reusable tokenizer with a fixed configuration.
#[derive(Debug, Clone)]
pub struct Tokenizer {
    config: TokenizerConfig,
    extra: [bool; 256],
}

impl Default for Tokenizer {
    fn default() -> Self {
        Tokenizer::new(TokenizerConfig::default())
    }
}

impl Tokenizer {
    /// Build a tokenizer from `config`.
    pub fn new(config: TokenizerConfig) -> Self {
        let mut extra = [false; 256];
        for &b in &config.extra_delimiters {
            extra[b as usize] = true;
        }
        Tokenizer { config, extra }
    }

    /// Tokenizer with the paper's default rules.
    pub fn default_rules() -> Self {
        Tokenizer::new(TokenizerConfig::default())
    }

    /// Split `record` into tokens. Tokens borrow from the input; no allocation happens
    /// beyond the output vector.
    pub fn tokenize<'a>(&self, record: &'a str) -> Vec<&'a str> {
        let mut spans = Vec::with_capacity(16);
        self.tokenize_spans(record, &mut spans);
        spans.iter().map(|&(s, e)| &record[s..e]).collect()
    }

    /// Zero-copy core of [`Tokenizer::tokenize`]: write the byte span of every token
    /// into `spans` (cleared first) instead of materialising a slice vector. The
    /// streaming ingestion fast path calls this with a per-shard scratch vector so
    /// tokenizing a record performs no allocation at all once the scratch has warmed up.
    pub fn tokenize_spans(&self, record: &str, spans: &mut Vec<(usize, usize)>) {
        spans.clear();
        let bytes = record.as_bytes();
        let mut start = 0usize;
        let mut i = 0usize;
        let len = bytes.len();

        while i < len {
            // The wildcard token `<*>` produced by variable masking must survive
            // tokenization even though `<` and `>` are delimiters: treat it as opaque.
            if bytes[i] == b'<'
                && bytes.get(i + 1) == Some(&b'*')
                && bytes.get(i + 2) == Some(&b'>')
            {
                i += 3;
                continue;
            }
            let (is_delim, delim_len) = self.delimiter_at(bytes, i);
            if is_delim {
                if i > start {
                    spans.push((start, i));
                    if spans.len() + 1 >= self.config.max_tokens {
                        // Emit the rest of the record as one tail token and stop.
                        let rest_start = i + delim_len;
                        if rest_start < len {
                            let rest = record[rest_start..].trim();
                            if !rest.is_empty() {
                                let offset = rest.as_ptr() as usize - record.as_ptr() as usize;
                                spans.push((offset, offset + rest.len()));
                            }
                        }
                        return;
                    }
                }
                i += delim_len;
                start = i;
            } else {
                i += 1;
            }
        }
        if start < len {
            spans.push((start, len));
        }
    }

    /// Is there a delimiter starting at byte offset `i`? Returns the delimiter length.
    fn delimiter_at(&self, bytes: &[u8], i: usize) -> (bool, usize) {
        let b = bytes[i];
        if self.extra[b as usize] {
            return (true, 1);
        }
        if !self.config.use_default_delimiters {
            return (false, 1);
        }
        // `://` — URL protocol separator.
        if b == b':' && bytes.get(i + 1) == Some(&b'/') && bytes.get(i + 2) == Some(&b'/') {
            return (true, 3);
        }
        if is_default_delimiter(b) {
            return (true, 1);
        }
        // Escaped quotes `\"` and `\'`.
        if b == b'\\' {
            if let Some(&next) = bytes.get(i + 1) {
                if next == b'"' || next == b'\'' {
                    return (true, 2);
                }
            }
        }
        // Sentence-ending period: `.` followed by whitespace or end of record.
        if self.config.split_sentence_periods && b == b'.' {
            match bytes.get(i + 1) {
                None => return (true, 1),
                Some(&next) if next.is_ascii_whitespace() => return (true, 1),
                _ => {}
            }
        }
        (false, 1)
    }
}

/// The paper's default single-byte delimiter set:
/// `\s ' " ; = ( ) [ ] { } ? @ & < > : \n \t \r ,`
#[inline]
pub fn is_default_delimiter(b: u8) -> bool {
    matches!(
        b,
        b' ' | b'\t'
            | b'\n'
            | b'\r'
            | 0x0b
            | 0x0c
            | b'\''
            | b'"'
            | b';'
            | b'='
            | b'('
            | b')'
            | b'['
            | b']'
            | b'{'
            | b'}'
            | b'?'
            | b'@'
            | b'&'
            | b'<'
            | b'>'
            | b':'
            | b','
    )
}

/// Convenience wrapper: tokenize with the default rules.
pub fn tokenize(record: &str) -> Vec<&str> {
    thread_local! {
        static DEFAULT: Tokenizer = Tokenizer::default_rules();
    }
    DEFAULT.with(|t| t.tokenize(record))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_on_whitespace() {
        assert_eq!(tokenize("a b  c"), vec!["a", "b", "c"]);
    }

    #[test]
    fn splits_on_equals_and_commas() {
        // Mirrors the wakelock example from Fig. 1 of the paper.
        let record = r#"release:lock=2337, flg=0x0, tag="View Lock", name=systemui, ws=null"#;
        let tokens = tokenize(record);
        assert_eq!(
            tokens,
            vec![
                "release", "lock", "2337", "flg", "0x0", "tag", "View", "Lock", "name", "systemui",
                "ws", "null"
            ]
        );
    }

    #[test]
    fn url_protocol_separator() {
        let tokens = tokenize("GET https://example.com/path ok");
        assert_eq!(tokens, vec!["GET", "https", "example.com/path", "ok"]);
    }

    #[test]
    fn preserves_periods_in_numbers_and_hosts() {
        let tokens = tokenize("latency 3.14 from host01.prod.net");
        assert_eq!(tokens, vec!["latency", "3.14", "from", "host01.prod.net"]);
    }

    #[test]
    fn sentence_ending_period_is_split() {
        let tokens = tokenize("Connection closed. Retrying now.");
        assert_eq!(tokens, vec!["Connection", "closed", "Retrying", "now"]);
    }

    #[test]
    fn escaped_quotes_are_delimiters() {
        let tokens = tokenize(r#"msg=\"disk full\" level=error"#);
        assert_eq!(tokens, vec!["msg", "disk", "full", "level", "error"]);
    }

    #[test]
    fn brackets_and_braces() {
        let tokens = tokenize("pid[123] state={running} <idle>");
        assert_eq!(tokens, vec!["pid", "123", "state", "running", "idle"]);
    }

    #[test]
    fn empty_record_yields_no_tokens() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("   \t  ").is_empty());
    }

    #[test]
    fn extra_delimiters_are_honoured() {
        let t = Tokenizer::new(TokenizerConfig {
            extra_delimiters: vec![b'|', b'/'],
            ..TokenizerConfig::default()
        });
        assert_eq!(t.tokenize("a|b/c d"), vec!["a", "b", "c", "d"]);
    }

    #[test]
    fn default_rules_disabled() {
        let t = Tokenizer::new(TokenizerConfig {
            extra_delimiters: vec![b'|'],
            use_default_delimiters: false,
            split_sentence_periods: false,
            max_tokens: 512,
        });
        assert_eq!(t.tokenize("a b|c d"), vec!["a b", "c d"]);
    }

    #[test]
    fn max_tokens_truncates_with_tail() {
        let t = Tokenizer::new(TokenizerConfig {
            max_tokens: 4,
            ..TokenizerConfig::default()
        });
        let record = "a b c d e f g";
        let tokens = t.tokenize(record);
        assert!(tokens.len() <= 4);
        // All input content is preserved across the emitted tokens.
        let rejoined: String = tokens.join(" ");
        assert!(rejoined.contains('g'));
    }

    #[test]
    fn colon_splits_but_not_protocol() {
        let tokens = tokenize("time:12:30:45 url=http://x.y/z");
        assert_eq!(
            tokens,
            vec!["time", "12", "30", "45", "url", "http", "x.y/z"]
        );
    }

    #[test]
    fn unicode_content_is_preserved() {
        let tokens = tokenize("用户 登录 成功 id=42");
        assert_eq!(tokens, vec!["用户", "登录", "成功", "id", "42"]);
    }

    #[test]
    fn agreement_with_regex_semantics() {
        // The hand-rolled scanner must agree with the paper's regex on representative logs.
        let re = logregex::Regex::new(
            r#"(?:://)|(?:(?:[\s'";=()\[\]{}?@&<>:\n\t\r,])|(?:\.(\s|$))|(?:\\["']))+"#,
        )
        .unwrap();
        let records = [
            "Verification succeeded for blk_-1608999687919862906",
            "PacketResponder 1 for block blk_38865049064139660 terminating",
            r#"acquire lock=1661, flg=0x1, tag="RILJ_ACK_WL", name=phone, ws=null"#,
            "Failed password for root from 183.62.140.253 port 22 ssh2",
        ];
        for record in records {
            let ours = tokenize(record);
            let theirs: Vec<&str> = re
                .split(record)
                .into_iter()
                .filter(|s| !s.is_empty())
                .collect();
            assert_eq!(ours, theirs, "tokenizer disagrees on {record:?}");
        }
    }
}
