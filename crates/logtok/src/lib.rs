//! `logtok` — preprocessing substrate for the ByteBrain-LogParser reproduction.
//!
//! Implements §4.1 of the paper:
//!
//! * **Tokenization** ([`tokenizer`]): splits a raw log record into tokens using the
//!   paper's default delimiter rules (Listing 1) or a user-supplied delimiter set.
//! * **Common variable replacement** ([`masking`]): optional regex-driven masking of
//!   obvious variables (timestamps, IPs, hex ids, UUIDs, numbers, …) before parsing.
//! * **Deduplication** ([`dedup`]): collapses identical token sequences while keeping
//!   occurrence counts (Fig. 4 motivates this).
//! * **Hash encoding** ([`hashenc`]): deterministic 64-bit token hashing so that offline
//!   training and online matching agree without storing a token dictionary.
//! * **Ordinal encoding** ([`ordinal`]): the dictionary-based alternative the paper
//!   compares against in Fig. 10 (ablation: storage cost of the token dictionary).
//! * **Pipeline** ([`pipeline`]): glues the steps together into the exact preprocessing
//!   sequence used by both the offline trainer and the online matcher.

#![warn(missing_docs)]

pub mod dedup;
pub mod hashenc;
pub mod masking;
pub mod ordinal;
pub mod pipeline;
pub mod tokenizer;

pub use dedup::{DedupStats, Deduplicator, UniqueLog};
pub use hashenc::{hash_line, hash_token, EncodedLog, WILDCARD_HASH};
pub use masking::{MaskRule, Masker};
pub use ordinal::OrdinalEncoder;
pub use pipeline::{PreprocessConfig, PreprocessedBatch, Preprocessor, TokenScratch, TokenView};
pub use tokenizer::{tokenize, Tokenizer, TokenizerConfig};

/// The wildcard token text used in rendered templates (`*` in the paper's figures).
pub const WILDCARD: &str = "<*>";
