//! Hash encoding of tokens (§4.1.4).
//!
//! Each token is mapped to a 64-bit integer with a deterministic hash function (FNV-1a).
//! Using the same function during offline training and online matching removes the need
//! to persist a token→id dictionary (the storage cost the paper quantifies in Fig. 10),
//! and hashing is embarrassingly parallel because tokens are processed independently.
//!
//! The collision probability follows the birthday bound the paper derives in Eq. 1: for
//! 10 million distinct tokens it is ≈ 0.000271 %, negligible in practice.

use serde::{Deserialize, Serialize};

/// Reserved hash value representing the wildcard (`*`) position in an encoded template.
///
/// FNV-1a never produces this value for any real token because we remap a real collision
/// with the sentinel (see [`hash_token`]); the remapping is deterministic so training and
/// matching stay consistent.
pub const WILDCARD_HASH: u64 = u64::MAX;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Deterministic 64-bit hash of a token (FNV-1a over the UTF-8 bytes).
#[inline]
pub fn hash_token(token: &str) -> u64 {
    let mut hash = FNV_OFFSET;
    for &byte in token.as_bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    // Keep the sentinel reserved for wildcards.
    if hash == WILDCARD_HASH {
        hash - 1
    } else {
        hash
    }
}

/// Deterministic 64-bit FNV-1a hash of a raw log line (no wildcard remapping —
/// lines are never compared against the wildcard sentinel). Computed once per
/// record at stream admission and carried alongside the line so downstream
/// consumers (batch reordering, the match cache) never re-hash the full text.
#[inline]
pub fn hash_line(line: &str) -> u64 {
    let mut hash = FNV_OFFSET;
    for &byte in line.as_bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// A log record after preprocessing: the hashed token vector plus bookkeeping needed to
/// render templates and count duplicates.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EncodedLog {
    /// Hash of each token, in order.
    pub encoded: Vec<u64>,
    /// The token texts (post-masking). Kept so that cluster nodes can render template
    /// strings; deduplication means only one copy is stored per unique log.
    pub tokens: Vec<String>,
    /// Number of raw records collapsed into this unique log by deduplication.
    pub count: u64,
}

impl EncodedLog {
    /// Encode a token sequence (count = 1).
    pub fn from_tokens<S: AsRef<str>>(tokens: &[S]) -> Self {
        let token_vec: Vec<String> = tokens.iter().map(|t| t.as_ref().to_string()).collect();
        let encoded = token_vec.iter().map(|t| hash_token(t)).collect();
        EncodedLog {
            encoded,
            tokens: token_vec,
            count: 1,
        }
    }

    /// Number of token positions.
    pub fn len(&self) -> usize {
        self.encoded.len()
    }

    /// True when the log has no tokens.
    pub fn is_empty(&self) -> bool {
        self.encoded.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hashing_is_deterministic() {
        assert_eq!(hash_token("error"), hash_token("error"));
        assert_eq!(hash_token(""), hash_token(""));
    }

    #[test]
    fn distinct_tokens_get_distinct_hashes() {
        // Not a guarantee in general, but these must differ for the tests to be meaningful.
        let tokens = [
            "error", "Error", "ERROR", "warn", "info", "blk_123", "blk_124", "10.0.0.1",
            "10.0.0.2", "null", "None", "0", "1", "-1",
        ];
        let mut hashes: Vec<u64> = tokens.iter().map(|t| hash_token(t)).collect();
        hashes.sort_unstable();
        hashes.dedup();
        assert_eq!(hashes.len(), tokens.len());
    }

    #[test]
    fn wildcard_hash_is_reserved() {
        for t in ["a", "bb", "*", "<*>", "wildcard", "the quick brown fox"] {
            assert_ne!(hash_token(t), WILDCARD_HASH);
        }
    }

    #[test]
    fn encoded_log_round_trip() {
        let log = EncodedLog::from_tokens(&["open", "file", "/tmp/x", "ok"]);
        assert_eq!(log.len(), 4);
        assert_eq!(log.count, 1);
        assert_eq!(log.encoded[0], hash_token("open"));
        assert_eq!(log.tokens[2], "/tmp/x");
        assert!(!log.is_empty());
    }

    #[test]
    fn empty_log() {
        let log = EncodedLog::from_tokens::<&str>(&[]);
        assert!(log.is_empty());
        assert_eq!(log.len(), 0);
    }

    #[test]
    fn known_fnv_vector() {
        // FNV-1a 64-bit of "a" is 0xaf63dc4c8601ec8c.
        assert_eq!(hash_token("a"), 0xaf63_dc4c_8601_ec8c);
    }
}
