//! The end-to-end preprocessing pipeline (§4.1): masking → tokenization → deduplication →
//! hash encoding. Both the offline trainer and the online matcher run the same pipeline so
//! that templates and incoming logs live in the same token space.

use crate::dedup::{DedupStats, Deduplicator, UniqueLog};
use crate::masking::Masker;
use crate::tokenizer::{Tokenizer, TokenizerConfig};
use serde::{Deserialize, Serialize};

/// Configuration of the preprocessing pipeline.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PreprocessConfig {
    /// Tokenizer configuration (delimiters, truncation).
    pub tokenizer: TokenizerConfig,
    /// Whether the default common-variable masking rules are applied.
    pub use_default_masks: bool,
    /// Additional user-supplied masking rules: (name, pattern).
    pub extra_masks: Vec<(String, String)>,
    /// Whether duplicate token sequences are collapsed (the paper's §4.1.3 optimisation;
    /// disabled by the "w/o deduplication & related techs" ablation variant).
    pub deduplicate: bool,
}

impl Default for PreprocessConfig {
    fn default() -> Self {
        PreprocessConfig {
            tokenizer: TokenizerConfig::default(),
            use_default_masks: true,
            extra_masks: Vec::new(),
            deduplicate: true,
        }
    }
}

/// Output of preprocessing a batch of raw records.
#[derive(Debug)]
pub struct PreprocessedBatch {
    /// Unique (deduplicated) logs. With deduplication disabled there is one entry per
    /// input record.
    pub unique_logs: Vec<UniqueLog>,
    /// For every input record, the index of its unique log in `unique_logs`.
    pub record_to_unique: Vec<usize>,
    /// Deduplication statistics for the batch.
    pub stats: DedupStats,
}

/// Reusable per-thread scratch buffers for the zero-copy preprocessing fast path.
///
/// [`Preprocessor::token_view`] masks and tokenizes a record into these buffers instead
/// of allocating a fresh `Vec<String>` per record (what [`Preprocessor::tokens_of`]
/// does). A shard worker of the streaming ingestion engine keeps one `TokenScratch`
/// alive for its whole lifetime, so after the first few records the hot path performs
/// no heap allocation.
#[derive(Debug, Default)]
pub struct TokenScratch {
    /// The masked record text (reused capacity).
    masked: String,
    /// Ping-pong buffer for multi-rule masking.
    swap: String,
    /// Byte spans of the tokens within `masked`.
    spans: Vec<(usize, usize)>,
}

impl TokenScratch {
    /// Fresh scratch buffers (empty until the first [`Preprocessor::token_view`] call).
    pub fn new() -> Self {
        Self::default()
    }
}

/// A borrowed view of one preprocessed record: the masked text plus token spans, both
/// living inside a [`TokenScratch`]. Provides positional access without owning any
/// token storage.
#[derive(Debug, Clone, Copy)]
pub struct TokenView<'s> {
    text: &'s str,
    spans: &'s [(usize, usize)],
}

impl<'s> TokenView<'s> {
    /// Number of tokens.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True when the record produced no tokens.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// The `i`-th token.
    ///
    /// # Panics
    /// Panics when `i >= self.len()`.
    pub fn get(&self, i: usize) -> &'s str {
        let (start, end) = self.spans[i];
        &self.text[start..end]
    }

    /// Iterator over the tokens, in record order.
    pub fn iter(&self) -> impl Iterator<Item = &'s str> + '_ {
        self.spans.iter().map(move |&(s, e)| &self.text[s..e])
    }

    /// Materialise the tokens as owned strings (used when a cold path — e.g. inserting
    /// a temporary template for an unmatched record — needs to keep them).
    pub fn to_owned_tokens(&self) -> Vec<String> {
        self.iter().map(str::to_string).collect()
    }
}

/// Reusable preprocessor (the configuration is parsed/compiled once).
#[derive(Debug, Clone)]
pub struct Preprocessor {
    tokenizer: Tokenizer,
    masker: Masker,
    deduplicate: bool,
}

impl Preprocessor {
    /// Build a preprocessor from `config`.
    ///
    /// # Panics
    /// Panics if one of the `extra_masks` patterns fails to compile; user-facing layers
    /// (the service crate) validate patterns before constructing the pipeline.
    pub fn new(config: PreprocessConfig) -> Self {
        let mut masker = if config.use_default_masks {
            Masker::default_rules()
        } else {
            Masker::empty()
        };
        for (name, pattern) in &config.extra_masks {
            masker
                .add_pattern(name, pattern)
                .unwrap_or_else(|e| panic!("mask rule {name:?} failed to compile: {e}"));
        }
        Preprocessor {
            tokenizer: Tokenizer::new(config.tokenizer),
            masker,
            deduplicate: config.deduplicate,
        }
    }

    /// Preprocessor with all defaults.
    pub fn default_pipeline() -> Self {
        Preprocessor::new(PreprocessConfig::default())
    }

    /// Mask and tokenize a single record, returning owned token strings.
    pub fn tokens_of(&self, record: &str) -> Vec<String> {
        let masked = self.masker.mask(record);
        self.tokenizer
            .tokenize(&masked)
            .into_iter()
            .map(|t| t.to_string())
            .collect()
    }

    /// Zero-copy fast path: mask and tokenize `record` into `scratch`, returning a
    /// borrowed [`TokenView`] over the result. Unlike [`Preprocessor::tokens_of`], this
    /// performs no heap allocation once the scratch buffers have grown to a typical
    /// record size, which is what keeps the online matching path of the streaming
    /// ingestion engine cheap.
    pub fn token_view<'s>(&self, record: &str, scratch: &'s mut TokenScratch) -> TokenView<'s> {
        self.masker
            .mask_into(record, &mut scratch.masked, &mut scratch.swap);
        self.tokenizer
            .tokenize_spans(&scratch.masked, &mut scratch.spans);
        TokenView {
            text: &scratch.masked,
            spans: &scratch.spans,
        }
    }

    /// Run the full pipeline over a batch of raw records.
    pub fn preprocess<S: AsRef<str>>(&self, records: &[S]) -> PreprocessedBatch {
        let mut dedup = Deduplicator::new();
        let mut record_to_unique = Vec::with_capacity(records.len());
        if self.deduplicate {
            for (idx, record) in records.iter().enumerate() {
                let tokens = self.tokens_of(record.as_ref());
                let slot = dedup.push(idx, &tokens);
                record_to_unique.push(slot);
            }
            let stats = dedup.stats();
            PreprocessedBatch {
                unique_logs: dedup.into_unique(),
                record_to_unique,
                stats,
            }
        } else {
            // One unique log per record: downstream code paths are identical, only the
            // collapse step is skipped (used by the ablation study, Fig. 9).
            let mut unique_logs = Vec::with_capacity(records.len());
            for (idx, record) in records.iter().enumerate() {
                let tokens = self.tokens_of(record.as_ref());
                unique_logs.push(UniqueLog {
                    encoded: crate::hashenc::EncodedLog::from_tokens(&tokens),
                    record_indices: vec![idx],
                });
                record_to_unique.push(idx);
            }
            let stats = DedupStats {
                total_records: records.len() as u64,
                unique_records: records.len() as u64,
            };
            PreprocessedBatch {
                unique_logs,
                record_to_unique,
                stats,
            }
        }
    }

    /// Access to the configured masker (used by the Fig. 4 experiment to compare
    /// duplication with and without variable replacement).
    pub fn masker(&self) -> &Masker {
        &self.masker
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<String> {
        vec![
            "2025-04-12 08:00:01 Accepted password for alice from 10.0.0.5 port 5022".into(),
            "2025-04-12 08:00:02 Accepted password for bob from 10.0.0.9 port 5022".into(),
            "2025-04-12 08:00:03 Accepted password for carol from 10.0.0.7 port 5022".into(),
            "2025-04-12 08:00:04 Connection closed by 10.0.0.5".into(),
        ]
    }

    #[test]
    fn masking_plus_dedup_collapses_similar_records() {
        let pre = Preprocessor::default_pipeline();
        let records = sample_records();
        let batch = pre.preprocess(&records);
        // After masking timestamps/IPs the first three records still differ by user name,
        // so they stay distinct; dedup only collapses exact duplicates.
        assert_eq!(batch.stats.total_records, 4);
        assert_eq!(batch.unique_logs.len(), 4);
        assert_eq!(batch.record_to_unique.len(), 4);
    }

    #[test]
    fn exact_duplicates_after_masking_collapse() {
        let mut config = PreprocessConfig::default();
        config
            .extra_masks
            .push(("user".into(), r"for \w+ from".into()));
        let pre = Preprocessor::new(config);
        let records = sample_records();
        let batch = pre.preprocess(&records);
        // With user names also masked, the first three records become identical.
        assert_eq!(batch.unique_logs.len(), 2);
        assert_eq!(batch.unique_logs[0].encoded.count, 3);
        assert_eq!(batch.record_to_unique[0], batch.record_to_unique[2]);
    }

    #[test]
    fn dedup_disabled_keeps_every_record() {
        let config = PreprocessConfig {
            deduplicate: false,
            ..PreprocessConfig::default()
        };
        let pre = Preprocessor::new(config);
        let records = vec!["same log", "same log", "same log"];
        let batch = pre.preprocess(&records);
        assert_eq!(batch.unique_logs.len(), 3);
        assert_eq!(batch.record_to_unique, vec![0, 1, 2]);
    }

    #[test]
    fn tokens_of_applies_masking() {
        let pre = Preprocessor::default_pipeline();
        let tokens = pre.tokens_of("error at 2025-01-01 10:11:12 on 192.168.1.1");
        assert!(tokens.contains(&"<*>".to_string()));
        assert!(!tokens.iter().any(|t| t.contains("192.168")));
    }

    #[test]
    fn no_default_masks_keeps_raw_values() {
        let config = PreprocessConfig {
            use_default_masks: false,
            ..PreprocessConfig::default()
        };
        let pre = Preprocessor::new(config);
        let tokens = pre.tokens_of("ping 10.1.2.3 ok");
        assert!(tokens.contains(&"10.1.2.3".to_string()));
    }

    #[test]
    fn record_to_unique_is_consistent() {
        let pre = Preprocessor::default_pipeline();
        let records = vec!["a b c", "d e f", "a b c", "a b c", "d e f"];
        let batch = pre.preprocess(&records);
        for (i, &slot) in batch.record_to_unique.iter().enumerate() {
            assert!(batch.unique_logs[slot].record_indices.contains(&i));
        }
        let total: u64 = batch.unique_logs.iter().map(|u| u.encoded.count).sum();
        assert_eq!(total, records.len() as u64);
    }
}
