//! Deduplication of identical token sequences (§4.1.3).
//!
//! Log streams contain a large fraction of exact duplicates, and the fraction grows after
//! common-variable replacement (Fig. 4). Collapsing duplicates while keeping a count both
//! shrinks the clustering input and lets every downstream statistic (position frequencies,
//! saturation, grouping accuracy) be computed over weighted unique logs.

use crate::hashenc::{hash_token, EncodedLog};
use std::collections::HashMap;

/// A unique log produced by deduplication: the encoded log plus the indices of the raw
/// records that collapsed into it (so parse results can be mapped back to every record).
#[derive(Debug, Clone)]
pub struct UniqueLog {
    /// The deduplicated, encoded log (its `count` equals `record_indices.len()`).
    pub encoded: EncodedLog,
    /// Indices (into the original batch) of all records that collapsed into this log.
    pub record_indices: Vec<usize>,
}

/// Summary statistics of one deduplication pass, used by the Fig. 4 reproduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DedupStats {
    /// Number of raw records processed.
    pub total_records: u64,
    /// Number of unique token sequences.
    pub unique_records: u64,
}

impl DedupStats {
    /// Average number of raw records per unique record.
    pub fn duplication_factor(&self) -> f64 {
        if self.unique_records == 0 {
            0.0
        } else {
            self.total_records as f64 / self.unique_records as f64
        }
    }
}

/// Streaming deduplicator keyed by the hashed token sequence.
#[derive(Debug, Default)]
pub struct Deduplicator {
    /// Key: (sequence hash, token count) → slot in `unique`.
    index: HashMap<(u64, usize), usize>,
    unique: Vec<UniqueLog>,
    total: u64,
}

impl Deduplicator {
    /// Create an empty deduplicator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one tokenized record (by index) and return the slot of its unique log.
    pub fn push<S: AsRef<str>>(&mut self, record_index: usize, tokens: &[S]) -> usize {
        self.total += 1;
        let mut seq_hash: u64 = 0xcbf2_9ce4_8422_2325;
        for t in tokens {
            // Order-sensitive combination of per-token hashes.
            seq_hash = seq_hash.rotate_left(5).wrapping_mul(0x0000_0100_0000_01b3)
                ^ hash_token(t.as_ref());
        }
        let key = (seq_hash, tokens.len());
        if let Some(&slot) = self.index.get(&key) {
            let existing = &mut self.unique[slot];
            // Guard against (astronomically unlikely) sequence-hash collisions by
            // verifying the token texts; on mismatch fall through to a new slot.
            if existing.encoded.tokens.len() == tokens.len()
                && existing
                    .encoded
                    .tokens
                    .iter()
                    .zip(tokens.iter())
                    .all(|(a, b)| a == b.as_ref())
            {
                existing.encoded.count += 1;
                existing.record_indices.push(record_index);
                return slot;
            }
        }
        let slot = self.unique.len();
        self.unique.push(UniqueLog {
            encoded: EncodedLog::from_tokens(tokens),
            record_indices: vec![record_index],
        });
        self.index.insert(key, slot);
        slot
    }

    /// Number of unique logs so far.
    pub fn unique_len(&self) -> usize {
        self.unique.len()
    }

    /// Total number of records pushed so far.
    pub fn total_records(&self) -> u64 {
        self.total
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> DedupStats {
        DedupStats {
            total_records: self.total,
            unique_records: self.unique.len() as u64,
        }
    }

    /// Consume the deduplicator and return the unique logs.
    pub fn into_unique(self) -> Vec<UniqueLog> {
        self.unique
    }

    /// Borrow the unique logs accumulated so far.
    pub fn unique(&self) -> &[UniqueLog] {
        &self.unique
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicates_collapse_with_counts() {
        let mut d = Deduplicator::new();
        d.push(0, &["user", "login", "ok"]);
        d.push(1, &["user", "logout", "ok"]);
        d.push(2, &["user", "login", "ok"]);
        d.push(3, &["user", "login", "ok"]);
        assert_eq!(d.unique_len(), 2);
        assert_eq!(d.total_records(), 4);
        let unique = d.into_unique();
        assert_eq!(unique[0].encoded.count, 3);
        assert_eq!(unique[0].record_indices, vec![0, 2, 3]);
        assert_eq!(unique[1].encoded.count, 1);
    }

    #[test]
    fn same_slot_returned_for_duplicates() {
        let mut d = Deduplicator::new();
        let a = d.push(0, &["a", "b"]);
        let b = d.push(1, &["a", "b"]);
        let c = d.push(2, &["a", "c"]);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn order_matters() {
        let mut d = Deduplicator::new();
        d.push(0, &["a", "b"]);
        d.push(1, &["b", "a"]);
        assert_eq!(d.unique_len(), 2);
    }

    #[test]
    fn different_lengths_never_collide() {
        let mut d = Deduplicator::new();
        d.push(0, &["a", "b", ""]);
        d.push(1, &["a", "b"]);
        assert_eq!(d.unique_len(), 2);
    }

    #[test]
    fn stats_and_duplication_factor() {
        let mut d = Deduplicator::new();
        for i in 0..10 {
            d.push(i, &["heartbeat", "ok"]);
        }
        d.push(10, &["heartbeat", "failed"]);
        let stats = d.stats();
        assert_eq!(stats.total_records, 11);
        assert_eq!(stats.unique_records, 2);
        assert!((stats.duplication_factor() - 5.5).abs() < 1e-9);
    }

    #[test]
    fn empty_dedup_stats() {
        let d = Deduplicator::new();
        assert_eq!(d.stats().duplication_factor(), 0.0);
        assert_eq!(d.unique_len(), 0);
    }
}
