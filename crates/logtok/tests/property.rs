//! Randomized property tests for the preprocessing substrate.
//!
//! The original proptest-based versions are preserved as seeded randomized loops (the
//! offline build environment has no proptest): each test draws a few hundred cases
//! from a fixed-seed [`StdRng`], so failures are deterministic and reproducible.

use logtok::{hash_token, Deduplicator, Masker, Preprocessor, Tokenizer};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random printable-ASCII string of length `0..max_len`.
fn printable(rng: &mut StdRng, max_len: usize) -> String {
    let len = rng.gen_range(0..max_len + 1);
    (0..len)
        .map(|_| rng.gen_range(0x20u8..0x7F) as char)
        .collect()
}

/// A random string over an explicit alphabet.
fn over_alphabet(rng: &mut StdRng, alphabet: &[char], min_len: usize, max_len: usize) -> String {
    let len = rng.gen_range(min_len..max_len + 1);
    (0..len)
        .map(|_| alphabet[rng.gen_range(0..alphabet.len())])
        .collect()
}

/// Tokenization never produces empty tokens and never produces tokens containing the
/// default delimiters.
#[test]
fn tokens_are_nonempty_and_delimiter_free() {
    let mut rng = StdRng::seed_from_u64(0x70C1);
    let tokenizer = Tokenizer::default_rules();
    for _ in 0..300 {
        let record = printable(&mut rng, 200);
        for token in tokenizer.tokenize(&record) {
            assert!(!token.is_empty());
            if token == "<*>" {
                continue;
            }
            for forbidden in [' ', '\t', ';', ',', '(', ')', '[', ']', '{', '}', '"'] {
                assert!(
                    !token.contains(forbidden),
                    "token {token:?} contains delimiter {forbidden:?} (record {record:?})"
                );
            }
        }
    }
}

/// Every non-delimiter character of the input survives tokenization (tokens partition
/// the non-delimiter content).
#[test]
fn tokenization_preserves_alphanumeric_content() {
    let mut rng = StdRng::seed_from_u64(0x70C2);
    let alphabet: Vec<char> = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 =,:"
        .chars()
        .collect();
    let tokenizer = Tokenizer::default_rules();
    for _ in 0..300 {
        let record = over_alphabet(&mut rng, &alphabet, 0, 200);
        let tokens = tokenizer.tokenize(&record);
        let mut joined: String = tokens.concat();
        joined.retain(|c| c.is_ascii_alphanumeric());
        let mut original = record.clone();
        original.retain(|c| c.is_ascii_alphanumeric());
        assert_eq!(joined, original, "content lost tokenizing {record:?}");
    }
}

/// Spans-based tokenization (the zero-copy fast path) agrees with the allocating API
/// on arbitrary printable input.
#[test]
fn span_tokenization_agrees_with_slice_tokenization() {
    let mut rng = StdRng::seed_from_u64(0x70C5);
    let tokenizer = Tokenizer::default_rules();
    let mut spans = Vec::new();
    for _ in 0..300 {
        let record = printable(&mut rng, 200);
        let slices = tokenizer.tokenize(&record);
        tokenizer.tokenize_spans(&record, &mut spans);
        let from_spans: Vec<&str> = spans.iter().map(|&(s, e)| &record[s..e]).collect();
        assert_eq!(slices, from_spans, "span mismatch on {record:?}");
    }
}

/// Hashing is deterministic and (practically) injective on small random token sets.
#[test]
fn hashing_is_deterministic_and_collision_free_on_samples() {
    let mut rng = StdRng::seed_from_u64(0x70C3);
    let alphabet: Vec<char> = "abcdefghijklmnopqrstuvwxyz0123456789_".chars().collect();
    for _ in 0..100 {
        let tokens: std::collections::HashSet<String> = (0..rng.gen_range(1..50usize))
            .map(|_| over_alphabet(&mut rng, &alphabet, 1, 12))
            .collect();
        let mut hashes = std::collections::HashSet::new();
        for token in &tokens {
            assert_eq!(hash_token(token), hash_token(token));
            hashes.insert(hash_token(token));
        }
        assert_eq!(hashes.len(), tokens.len());
    }
}

/// Deduplication conserves record counts: the per-unique counts always sum to the
/// number of pushed records, regardless of input distribution.
#[test]
fn dedup_conserves_counts() {
    let mut rng = StdRng::seed_from_u64(0x70C4);
    let alphabet: Vec<char> = "abc".chars().collect();
    for _ in 0..200 {
        let records: Vec<Vec<String>> = (0..rng.gen_range(1..60usize))
            .map(|_| {
                (0..rng.gen_range(1..5usize))
                    .map(|_| over_alphabet(&mut rng, &alphabet, 1, 3))
                    .collect()
            })
            .collect();
        let mut dedup = Deduplicator::new();
        for (i, tokens) in records.iter().enumerate() {
            dedup.push(i, tokens);
        }
        let stats = dedup.stats();
        assert_eq!(stats.total_records, records.len() as u64);
        let sum: u64 = dedup.unique().iter().map(|u| u.encoded.count).sum();
        assert_eq!(sum, records.len() as u64);
        assert!(stats.unique_records <= stats.total_records);
    }
}

/// Masking never panics and never grows the number of maskable spans (applying the
/// default rules twice is the same as applying them once).
#[test]
fn masking_is_idempotent() {
    let mut rng = StdRng::seed_from_u64(0x70C6);
    let masker = Masker::default_rules();
    for _ in 0..300 {
        let record = printable(&mut rng, 160);
        let once = masker.mask(&record);
        let twice = masker.mask(&once);
        assert_eq!(once, twice, "masking not idempotent on {record:?}");
    }
}

/// The buffer-reusing masking fast path agrees with the allocating one.
#[test]
fn mask_into_agrees_with_mask() {
    let mut rng = StdRng::seed_from_u64(0x70C7);
    let masker = Masker::default_rules();
    let mut out = String::new();
    let mut swap = String::new();
    for _ in 0..300 {
        let record = printable(&mut rng, 160);
        masker.mask_into(&record, &mut out, &mut swap);
        assert_eq!(
            out,
            masker.mask(&record),
            "mask_into mismatch on {record:?}"
        );
    }
}

/// The full preprocessing pipeline maps every record to exactly one unique log.
#[test]
fn pipeline_assigns_every_record() {
    let mut rng = StdRng::seed_from_u64(0x70C8);
    let alphabet: Vec<char> = "abcdefghijklmnopqrstuvwxyz0123456789 .:=".chars().collect();
    let pre = Preprocessor::default_pipeline();
    for _ in 0..150 {
        let records: Vec<String> = (0..rng.gen_range(1..40usize))
            .map(|_| over_alphabet(&mut rng, &alphabet, 1, 40))
            .collect();
        let batch = pre.preprocess(&records);
        assert_eq!(batch.record_to_unique.len(), records.len());
        for &slot in &batch.record_to_unique {
            assert!(slot < batch.unique_logs.len());
        }
    }
}

/// The zero-copy `token_view` fast path produces exactly the tokens of `tokens_of`.
#[test]
fn token_view_agrees_with_tokens_of() {
    let mut rng = StdRng::seed_from_u64(0x70C9);
    let pre = Preprocessor::default_pipeline();
    let mut scratch = logtok::TokenScratch::new();
    for _ in 0..300 {
        let record = printable(&mut rng, 160);
        let owned = pre.tokens_of(&record);
        let view = pre.token_view(&record, &mut scratch);
        assert_eq!(
            view.len(),
            owned.len(),
            "token count mismatch on {record:?}"
        );
        let viewed: Vec<String> = view.iter().map(str::to_string).collect();
        assert_eq!(viewed, owned, "token mismatch on {record:?}");
    }
}
