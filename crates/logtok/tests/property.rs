//! Property-based tests for the preprocessing substrate.

use logtok::{hash_token, Deduplicator, Masker, Preprocessor, Tokenizer};
use proptest::prelude::*;

proptest! {
    /// Tokenization never produces empty tokens and never produces tokens containing the
    /// default delimiters.
    #[test]
    fn tokens_are_nonempty_and_delimiter_free(record in "[ -~]{0,200}") {
        let tokenizer = Tokenizer::default_rules();
        for token in tokenizer.tokenize(&record) {
            prop_assert!(!token.is_empty());
            if token == "<*>" {
                continue;
            }
            for forbidden in [' ', '\t', ';', ',', '(', ')', '[', ']', '{', '}', '"'] {
                prop_assert!(
                    !token.contains(forbidden),
                    "token {token:?} contains delimiter {forbidden:?}"
                );
            }
        }
    }

    /// Every non-delimiter character of the input survives tokenization (tokens partition
    /// the non-delimiter content).
    #[test]
    fn tokenization_preserves_alphanumeric_content(record in "[a-zA-Z0-9 =,:]{0,200}") {
        let tokenizer = Tokenizer::default_rules();
        let tokens = tokenizer.tokenize(&record);
        let mut joined: String = tokens.concat();
        joined.retain(|c| c.is_ascii_alphanumeric());
        let mut original = record.clone();
        original.retain(|c| c.is_ascii_alphanumeric());
        prop_assert_eq!(joined, original);
    }

    /// Hashing is deterministic and (practically) injective on small random token sets.
    #[test]
    fn hashing_is_deterministic_and_collision_free_on_samples(tokens in prop::collection::hash_set("[a-z0-9_]{1,12}", 1..50)) {
        let mut hashes = std::collections::HashSet::new();
        for token in &tokens {
            prop_assert_eq!(hash_token(token), hash_token(token));
            hashes.insert(hash_token(token));
        }
        prop_assert_eq!(hashes.len(), tokens.len());
    }

    /// Deduplication conserves record counts: the per-unique counts always sum to the
    /// number of pushed records, regardless of input distribution.
    #[test]
    fn dedup_conserves_counts(records in prop::collection::vec(prop::collection::vec("[a-c]{1,3}", 1..5), 1..60)) {
        let mut dedup = Deduplicator::new();
        for (i, tokens) in records.iter().enumerate() {
            dedup.push(i, tokens);
        }
        let stats = dedup.stats();
        prop_assert_eq!(stats.total_records, records.len() as u64);
        let sum: u64 = dedup.unique().iter().map(|u| u.encoded.count).sum();
        prop_assert_eq!(sum, records.len() as u64);
        prop_assert!(stats.unique_records <= stats.total_records);
    }

    /// Masking never panics and never grows the number of maskable spans (applying the
    /// default rules twice is the same as applying them once).
    #[test]
    fn masking_is_idempotent(record in "[ -~]{0,160}") {
        let masker = Masker::default_rules();
        let once = masker.mask(&record);
        let twice = masker.mask(&once);
        prop_assert_eq!(once, twice);
    }

    /// The full preprocessing pipeline maps every record to exactly one unique log.
    #[test]
    fn pipeline_assigns_every_record(records in prop::collection::vec("[a-z0-9 .:=]{1,40}", 1..40)) {
        let pre = Preprocessor::default_pipeline();
        let owned: Vec<String> = records.clone();
        let batch = pre.preprocess(&owned);
        prop_assert_eq!(batch.record_to_unique.len(), records.len());
        for &slot in &batch.record_to_unique {
            prop_assert!(slot < batch.unique_logs.len());
        }
    }
}
