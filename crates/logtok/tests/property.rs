//! Randomized property tests for the preprocessing substrate.
//!
//! The original proptest-based versions are preserved as seeded randomized loops (the
//! offline build environment has no proptest): each test draws a few hundred cases
//! from a fixed-seed [`StdRng`], so failures are deterministic and reproducible.

use logtok::{hash_token, Deduplicator, Masker, Preprocessor, Tokenizer};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random printable-ASCII string of length `0..max_len`.
fn printable(rng: &mut StdRng, max_len: usize) -> String {
    let len = rng.gen_range(0..max_len + 1);
    (0..len)
        .map(|_| rng.gen_range(0x20u8..0x7F) as char)
        .collect()
}

/// A random string over an explicit alphabet.
fn over_alphabet(rng: &mut StdRng, alphabet: &[char], min_len: usize, max_len: usize) -> String {
    let len = rng.gen_range(min_len..max_len + 1);
    (0..len)
        .map(|_| alphabet[rng.gen_range(0..alphabet.len())])
        .collect()
}

/// Tokenization never produces empty tokens and never produces tokens containing the
/// default delimiters.
#[test]
fn tokens_are_nonempty_and_delimiter_free() {
    let mut rng = StdRng::seed_from_u64(0x70C1);
    let tokenizer = Tokenizer::default_rules();
    for _ in 0..300 {
        let record = printable(&mut rng, 200);
        for token in tokenizer.tokenize(&record) {
            assert!(!token.is_empty());
            if token == "<*>" {
                continue;
            }
            for forbidden in [' ', '\t', ';', ',', '(', ')', '[', ']', '{', '}', '"'] {
                assert!(
                    !token.contains(forbidden),
                    "token {token:?} contains delimiter {forbidden:?} (record {record:?})"
                );
            }
        }
    }
}

/// Every non-delimiter character of the input survives tokenization (tokens partition
/// the non-delimiter content).
#[test]
fn tokenization_preserves_alphanumeric_content() {
    let mut rng = StdRng::seed_from_u64(0x70C2);
    let alphabet: Vec<char> = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 =,:"
        .chars()
        .collect();
    let tokenizer = Tokenizer::default_rules();
    for _ in 0..300 {
        let record = over_alphabet(&mut rng, &alphabet, 0, 200);
        let tokens = tokenizer.tokenize(&record);
        let mut joined: String = tokens.concat();
        joined.retain(|c| c.is_ascii_alphanumeric());
        let mut original = record.clone();
        original.retain(|c| c.is_ascii_alphanumeric());
        assert_eq!(joined, original, "content lost tokenizing {record:?}");
    }
}

/// Spans-based tokenization (the zero-copy fast path) agrees with the allocating API
/// on arbitrary printable input.
#[test]
fn span_tokenization_agrees_with_slice_tokenization() {
    let mut rng = StdRng::seed_from_u64(0x70C5);
    let tokenizer = Tokenizer::default_rules();
    let mut spans = Vec::new();
    for _ in 0..300 {
        let record = printable(&mut rng, 200);
        let slices = tokenizer.tokenize(&record);
        tokenizer.tokenize_spans(&record, &mut spans);
        let from_spans: Vec<&str> = spans.iter().map(|&(s, e)| &record[s..e]).collect();
        assert_eq!(slices, from_spans, "span mismatch on {record:?}");
    }
}

/// Hashing is deterministic and (practically) injective on small random token sets.
#[test]
fn hashing_is_deterministic_and_collision_free_on_samples() {
    let mut rng = StdRng::seed_from_u64(0x70C3);
    let alphabet: Vec<char> = "abcdefghijklmnopqrstuvwxyz0123456789_".chars().collect();
    for _ in 0..100 {
        let tokens: std::collections::HashSet<String> = (0..rng.gen_range(1..50usize))
            .map(|_| over_alphabet(&mut rng, &alphabet, 1, 12))
            .collect();
        let mut hashes = std::collections::HashSet::new();
        for token in &tokens {
            assert_eq!(hash_token(token), hash_token(token));
            hashes.insert(hash_token(token));
        }
        assert_eq!(hashes.len(), tokens.len());
    }
}

/// Deduplication conserves record counts: the per-unique counts always sum to the
/// number of pushed records, regardless of input distribution.
#[test]
fn dedup_conserves_counts() {
    let mut rng = StdRng::seed_from_u64(0x70C4);
    let alphabet: Vec<char> = "abc".chars().collect();
    for _ in 0..200 {
        let records: Vec<Vec<String>> = (0..rng.gen_range(1..60usize))
            .map(|_| {
                (0..rng.gen_range(1..5usize))
                    .map(|_| over_alphabet(&mut rng, &alphabet, 1, 3))
                    .collect()
            })
            .collect();
        let mut dedup = Deduplicator::new();
        for (i, tokens) in records.iter().enumerate() {
            dedup.push(i, tokens);
        }
        let stats = dedup.stats();
        assert_eq!(stats.total_records, records.len() as u64);
        let sum: u64 = dedup.unique().iter().map(|u| u.encoded.count).sum();
        assert_eq!(sum, records.len() as u64);
        assert!(stats.unique_records <= stats.total_records);
    }
}

/// Masking never panics and never grows the number of maskable spans (applying the
/// default rules twice is the same as applying them once).
#[test]
fn masking_is_idempotent() {
    let mut rng = StdRng::seed_from_u64(0x70C6);
    let masker = Masker::default_rules();
    for _ in 0..300 {
        let record = printable(&mut rng, 160);
        let once = masker.mask(&record);
        let twice = masker.mask(&once);
        assert_eq!(once, twice, "masking not idempotent on {record:?}");
    }
}

/// The buffer-reusing masking fast path agrees with the allocating one.
#[test]
fn mask_into_agrees_with_mask() {
    let mut rng = StdRng::seed_from_u64(0x70C7);
    let masker = Masker::default_rules();
    let mut out = String::new();
    let mut swap = String::new();
    for _ in 0..300 {
        let record = printable(&mut rng, 160);
        masker.mask_into(&record, &mut out, &mut swap);
        assert_eq!(
            out,
            masker.mask(&record),
            "mask_into mismatch on {record:?}"
        );
    }
}

/// The full preprocessing pipeline maps every record to exactly one unique log.
#[test]
fn pipeline_assigns_every_record() {
    let mut rng = StdRng::seed_from_u64(0x70C8);
    let alphabet: Vec<char> = "abcdefghijklmnopqrstuvwxyz0123456789 .:=".chars().collect();
    let pre = Preprocessor::default_pipeline();
    for _ in 0..150 {
        let records: Vec<String> = (0..rng.gen_range(1..40usize))
            .map(|_| over_alphabet(&mut rng, &alphabet, 1, 40))
            .collect();
        let batch = pre.preprocess(&records);
        assert_eq!(batch.record_to_unique.len(), records.len());
        for &slot in &batch.record_to_unique {
            assert!(slot < batch.unique_logs.len());
        }
    }
}

/// The zero-copy `token_view` fast path produces exactly the tokens of `tokens_of`.
#[test]
fn token_view_agrees_with_tokens_of() {
    let mut rng = StdRng::seed_from_u64(0x70C9);
    let pre = Preprocessor::default_pipeline();
    let mut scratch = logtok::TokenScratch::new();
    for _ in 0..300 {
        let record = printable(&mut rng, 160);
        let owned = pre.tokens_of(&record);
        let view = pre.token_view(&record, &mut scratch);
        assert_eq!(
            view.len(),
            owned.len(),
            "token count mismatch on {record:?}"
        );
        let viewed: Vec<String> = view.iter().map(str::to_string).collect();
        assert_eq!(viewed, owned, "token mismatch on {record:?}");
    }
}

// ---------------------------------------------------------------------------
// Adversarial zero-copy equivalence (seeded; CI varies BYTEBRAIN_TEST_SEED)
// ---------------------------------------------------------------------------

/// Base seed for the adversarial cases; CI runs a small matrix of values.
fn adversarial_seed() -> u64 {
    std::env::var("BYTEBRAIN_TEST_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

/// An adversarial record: unicode runs, empty lines, very long tokens, delimiter
/// bursts, embedded wildcards, maskable variables and control characters — the
/// inputs most likely to expose divergence between the owned-allocation
/// preprocessing path and the zero-copy scratch path.
fn adversarial_record(rng: &mut StdRng) -> String {
    const UNICODE: &[&str] = &[
        "用户",
        "登录",
        "ßß",
        "émoji🦀",
        "Ωmega",
        "\u{200b}",
        "naïve",
    ];
    const MASKABLE: &[&str] = &[
        "2025-04-12 08:00:01",
        "10.0.0.5:8080",
        "123e4567-e89b-12d3-a456-426614174000",
        "0xDEADBEEF",
        "512MB",
        "35ms",
        "d41d8cd98f00b204e9800998ecf8427e",
    ];
    const DELIMS: &[&str] = &[
        "  ", "\t", "::", ",,", "=[]{}", "(?)", "<>", "\"''\"", "\\\"", ". ",
    ];
    match rng.gen_range(0..10u32) {
        // Empty and whitespace-only lines.
        0 => String::new(),
        1 => " \t ".repeat(rng.gen_range(1..10usize)),
        // One very long token (far beyond any scratch warm-up size).
        2 => "x".repeat(rng.gen_range(1_000..20_000usize)),
        // A very long token glued to maskable fragments.
        3 => format!(
            "{} {} {}",
            "payload".repeat(rng.gen_range(200..2_000usize)),
            MASKABLE[rng.gen_range(0..MASKABLE.len())],
            "y".repeat(rng.gen_range(0..50usize)),
        ),
        // Pure unicode runs.
        4 => (0..rng.gen_range(1..30usize))
            .map(|_| UNICODE[rng.gen_range(0..UNICODE.len())])
            .collect::<Vec<_>>()
            .join(" "),
        // The wildcard token itself, glued into odd positions.
        5 => format!("<*>{}<*><*>{}", "a".repeat(rng.gen_range(0..5)), "<*"),
        _ => {
            // Mixed soup of everything, including control chars.
            let mut out = String::new();
            for _ in 0..rng.gen_range(1..40usize) {
                match rng.gen_range(0..5u32) {
                    0 => out.push_str(UNICODE[rng.gen_range(0..UNICODE.len())]),
                    1 => out.push_str(MASKABLE[rng.gen_range(0..MASKABLE.len())]),
                    2 => out.push_str(DELIMS[rng.gen_range(0..DELIMS.len())]),
                    3 => out.push(rng.gen_range(0x20u8..0x7F) as char),
                    _ => out.push_str(&"tok".repeat(rng.gen_range(1..80usize))),
                }
            }
            out
        }
    }
}

/// `Masker::mask_into` agrees with `Masker::mask` on adversarial inputs, including
/// repeated reuse of the same (already warm and dirty) scratch buffers.
#[test]
fn mask_into_agrees_with_mask_on_adversarial_inputs() {
    let mut rng = StdRng::seed_from_u64(adversarial_seed() ^ 0xAD7E_0001);
    let masker = Masker::default_rules();
    let mut out = String::new();
    let mut swap = String::new();
    for _ in 0..400 {
        let record = adversarial_record(&mut rng);
        masker.mask_into(&record, &mut out, &mut swap);
        assert_eq!(
            out,
            masker.mask(&record),
            "mask_into mismatch on {record:?}"
        );
    }
}

/// `Tokenizer::tokenize_spans` emits spans that slice back to exactly the tokens of
/// `Tokenizer::tokenize`, with in-bounds, ordered, non-overlapping offsets — on
/// adversarial inputs.
#[test]
fn tokenize_spans_agree_with_tokenize_on_adversarial_inputs() {
    let mut rng = StdRng::seed_from_u64(adversarial_seed() ^ 0xAD7E_0002);
    let tokenizer = Tokenizer::default_rules();
    let mut spans = Vec::new();
    for _ in 0..400 {
        let record = adversarial_record(&mut rng);
        let owned = tokenizer.tokenize(&record);
        tokenizer.tokenize_spans(&record, &mut spans);
        let sliced: Vec<&str> = spans.iter().map(|&(s, e)| &record[s..e]).collect();
        assert_eq!(sliced, owned, "span mismatch on {record:?}");
        let mut last_end = 0usize;
        for &(start, end) in &spans {
            assert!(
                start <= end && end <= record.len(),
                "bad span in {record:?}"
            );
            assert!(start >= last_end, "overlapping spans in {record:?}");
            last_end = end;
        }
    }
}

/// The full zero-copy pipeline (`token_view` over a long-lived scratch) agrees with
/// the owned path (`tokens_of`) on adversarial inputs — the property the streaming
/// ingestion hot path depends on.
#[test]
fn token_view_agrees_with_tokens_of_on_adversarial_inputs() {
    let mut rng = StdRng::seed_from_u64(adversarial_seed() ^ 0xAD7E_0003);
    let pre = Preprocessor::default_pipeline();
    let mut scratch = logtok::TokenScratch::new();
    for _ in 0..400 {
        let record = adversarial_record(&mut rng);
        let owned = pre.tokens_of(&record);
        let view = pre.token_view(&record, &mut scratch);
        assert_eq!(
            view.len(),
            owned.len(),
            "token count mismatch on {record:?}"
        );
        assert_eq!(view.is_empty(), owned.is_empty());
        let viewed: Vec<String> = view.to_owned_tokens();
        assert_eq!(viewed, owned, "token mismatch on {record:?}");
    }
}
