//! MoLFI (Messaoudi et al., ICPC 2018): multi-objective search over candidate template
//! sets. The original uses NSGA-II to trade off template frequency against specificity.
//! This implementation keeps the search-based flavour at a fraction of the cost: candidate
//! templates are generated per length group by wildcarding random position subsets, scored
//! by the same two objectives (coverage and specificity), and a greedy pass keeps the
//! non-dominated candidates that together cover the group.

use crate::traits::{tokenize_simple, LogParser};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// The MoLFI parser (simplified search).
#[derive(Debug)]
pub struct Molfi {
    /// Number of random candidates generated per length group.
    pub candidates_per_group: usize,
    /// RNG seed (the search is randomised, as in the original).
    pub seed: u64,
    templates: Vec<String>,
}

impl Default for Molfi {
    fn default() -> Self {
        Molfi {
            candidates_per_group: 24,
            seed: 0x401F1,
            templates: Vec::new(),
        }
    }
}

#[derive(Debug, Clone)]
struct Candidate {
    template: Vec<String>,
    coverage: usize,
    specificity: usize,
}

fn matches(template: &[String], tokens: &[String]) -> bool {
    template.len() == tokens.len()
        && template
            .iter()
            .zip(tokens)
            .all(|(t, token)| t == "<*>" || t == token)
}

impl LogParser for Molfi {
    fn name(&self) -> &str {
        "MoLFI"
    }

    fn parse(&mut self, records: &[String]) -> Vec<usize> {
        let tokenized: Vec<Vec<String>> = records.iter().map(|r| tokenize_simple(r)).collect();
        let mut by_length: HashMap<usize, Vec<usize>> = HashMap::new();
        for (idx, tokens) in tokenized.iter().enumerate() {
            by_length.entry(tokens.len()).or_default().push(idx);
        }
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut assignment = vec![usize::MAX; records.len()];
        let mut next_group = 0usize;
        let mut all_templates = Vec::new();
        let mut lengths: Vec<_> = by_length.into_iter().collect();
        lengths.sort_by_key(|(l, _)| *l);
        for (length, members) in lengths {
            if length == 0 {
                for &m in &members {
                    assignment[m] = next_group;
                }
                next_group += 1;
                continue;
            }
            // Generate candidates: pick a member log and wildcard a random subset of
            // positions (the original's mutation operator).
            let mut candidates: Vec<Candidate> = Vec::new();
            for _ in 0..self.candidates_per_group {
                let base = &tokenized[members[rng.gen_range(0..members.len())]];
                let template: Vec<String> = base
                    .iter()
                    .map(|t| {
                        if rng.gen_bool(0.4) || t == "<*>" {
                            "<*>".to_string()
                        } else {
                            t.clone()
                        }
                    })
                    .collect();
                let coverage = members
                    .iter()
                    .filter(|&&m| matches(&template, &tokenized[m]))
                    .count();
                let specificity = template.iter().filter(|t| *t != "<*>").count();
                if coverage > 0 && specificity > 0 {
                    candidates.push(Candidate {
                        template,
                        coverage,
                        specificity,
                    });
                }
            }
            // Greedy selection of non-dominated candidates by (coverage, specificity).
            candidates.sort_by(|a, b| {
                (b.coverage * b.specificity)
                    .cmp(&(a.coverage * a.specificity))
                    .then(b.specificity.cmp(&a.specificity))
            });
            for candidate in candidates {
                let unassigned: Vec<usize> = members
                    .iter()
                    .copied()
                    .filter(|&m| {
                        assignment[m] == usize::MAX && matches(&candidate.template, &tokenized[m])
                    })
                    .collect();
                if unassigned.len() > 1 {
                    for m in unassigned {
                        assignment[m] = next_group;
                    }
                    all_templates.push(candidate.template.join(" "));
                    next_group += 1;
                }
            }
            // Whatever the search failed to cover falls back to exact-text groups.
            let mut fallback: HashMap<&[String], usize> = HashMap::new();
            for &m in &members {
                if assignment[m] == usize::MAX {
                    let group = *fallback.entry(tokenized[m].as_slice()).or_insert_with(|| {
                        let g = next_group;
                        next_group += 1;
                        g
                    });
                    assignment[m] = group;
                }
            }
        }
        self.templates = all_templates;
        assignment
    }

    fn templates(&self) -> Vec<String> {
        self.templates.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_record_is_assigned() {
        let mut molfi = Molfi::default();
        let records: Vec<String> = (0..50)
            .map(|i| format!("thread {} acquired mutex m{}", i, i % 5))
            .collect();
        let groups = molfi.parse(&records);
        assert_eq!(groups.len(), 50);
        assert!(groups.iter().all(|&g| g != usize::MAX));
    }

    #[test]
    fn search_is_deterministic_for_a_seed() {
        let records: Vec<String> = (0..30)
            .map(|i| format!("thread {} acquired mutex m{}", i, i % 5))
            .collect();
        let a = Molfi::default().parse(&records);
        let b = Molfi::default().parse(&records);
        assert_eq!(a, b);
    }

    #[test]
    fn different_lengths_are_never_merged() {
        let mut molfi = Molfi::default();
        let groups = molfi.parse(&["x y z".into(), "x y".into()]);
        assert_ne!(groups[0], groups[1]);
    }
}
