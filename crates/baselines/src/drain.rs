//! Drain (He et al., ICWS 2017): online log parsing with a fixed-depth parse tree.
//!
//! Incoming logs descend a tree keyed first by token count, then by the first
//! `depth` tokens (tokens containing digits are replaced by a wildcard key), reaching a
//! leaf holding a list of log groups. The log joins the group whose template has the
//! highest token-wise similarity above `similarity_threshold`; otherwise a new group is
//! created. The matched group's template is updated by wildcarding disagreeing positions.

use crate::traits::{tokenize_simple, LogParser};
use std::collections::HashMap;

/// One log group at a Drain leaf.
#[derive(Debug, Clone)]
struct LogGroup {
    template: Vec<String>,
    group_id: usize,
}

/// The Drain parser.
#[derive(Debug)]
pub struct Drain {
    /// Number of prefix tokens used as internal tree levels.
    pub depth: usize,
    /// Minimum similarity for joining an existing group.
    pub similarity_threshold: f64,
    /// Maximum children per internal node before falling back to a wildcard branch.
    pub max_children: usize,
    // prefix-key path → groups at that leaf.
    leaves: HashMap<(usize, Vec<String>), Vec<LogGroup>>,
    next_group: usize,
    templates: Vec<String>,
}

impl Default for Drain {
    fn default() -> Self {
        Drain {
            depth: 4,
            similarity_threshold: 0.5,
            max_children: 100,
            leaves: HashMap::new(),
            next_group: 0,
            templates: Vec::new(),
        }
    }
}

impl Drain {
    fn prefix_key(&self, tokens: &[String]) -> Vec<String> {
        tokens
            .iter()
            .take(self.depth)
            .map(|t| {
                if t.chars().any(|c| c.is_ascii_digit()) {
                    "<*>".to_string()
                } else {
                    t.clone()
                }
            })
            .collect()
    }

    fn similarity(template: &[String], tokens: &[String]) -> f64 {
        if template.len() != tokens.len() || template.is_empty() {
            return 0.0;
        }
        let same = template
            .iter()
            .zip(tokens)
            .filter(|(a, b)| *a == *b && *a != "<*>")
            .count();
        same as f64 / template.len() as f64
    }

    fn parse_one(&mut self, record: &str) -> usize {
        let tokens = tokenize_simple(record);
        let key = (tokens.len(), self.prefix_key(&tokens));
        let threshold = self.similarity_threshold;
        let groups = self.leaves.entry(key).or_default();
        let mut best: Option<(usize, f64)> = None;
        for (idx, group) in groups.iter().enumerate() {
            let sim = Self::similarity(&group.template, &tokens);
            if best.map(|(_, s)| sim > s).unwrap_or(true) {
                best = Some((idx, sim));
            }
        }
        match best {
            Some((idx, sim)) if sim >= threshold => {
                // Update the template: disagreeing positions become wildcards.
                let group = &mut groups[idx];
                for (t, token) in group.template.iter_mut().zip(&tokens) {
                    if t != token {
                        *t = "<*>".to_string();
                    }
                }
                group.group_id
            }
            _ => {
                let group_id = self.next_group;
                self.next_group += 1;
                groups.push(LogGroup {
                    template: tokens,
                    group_id,
                });
                group_id
            }
        }
    }
}

impl LogParser for Drain {
    fn name(&self) -> &str {
        "Drain"
    }

    fn parse(&mut self, records: &[String]) -> Vec<usize> {
        let ids: Vec<usize> = records.iter().map(|r| self.parse_one(r)).collect();
        self.templates = self
            .leaves
            .values()
            .flatten()
            .map(|g| g.template.join(" "))
            .collect();
        ids
    }

    fn templates(&self) -> Vec<String> {
        self.templates.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_structure_groups_together() {
        let mut drain = Drain::default();
        let records: Vec<String> = vec![
            "Receiving block blk_1 src 10.0.0.1 dest 10.0.0.2".into(),
            "Receiving block blk_2 src 10.0.0.3 dest 10.0.0.4".into(),
            "Deleting block blk_3 file /data/1".into(),
        ];
        let groups = drain.parse(&records);
        assert_eq!(groups[0], groups[1]);
        assert_ne!(groups[0], groups[2]);
    }

    #[test]
    fn different_lengths_never_group() {
        let mut drain = Drain::default();
        let groups = drain.parse(&["a b c".into(), "a b".into()]);
        assert_ne!(groups[0], groups[1]);
    }

    #[test]
    fn template_positions_become_wildcards() {
        let mut drain = Drain::default();
        drain.parse(&[
            "session opened for user alice".into(),
            "session opened for user bob".into(),
        ]);
        let templates = drain.templates();
        assert!(templates.iter().any(|t| t == "session opened for user <*>"));
    }

    #[test]
    fn streaming_is_consistent_across_batches() {
        let mut drain = Drain::default();
        let first = drain.parse(&["job 1 finished ok".into()]);
        let second = drain.parse(&["job 2 finished ok".into()]);
        assert_eq!(first[0], second[0]);
    }
}
