//! SLCT — Simple Logfile Clustering Tool (Vaarandi, IPOM 2003): frequent (position, word)
//! pairs form cluster candidates. A log's template keeps the words whose (position, word)
//! pair is frequent and wildcards everything else; logs sharing a template form a cluster.

use crate::traits::{tokenize_simple, GroupInterner, LogParser};
use std::collections::HashMap;

/// The SLCT parser.
#[derive(Debug)]
pub struct Slct {
    /// Minimum absolute support of a (position, word) pair to be considered frequent.
    pub min_support: u64,
    templates: Vec<String>,
}

impl Default for Slct {
    fn default() -> Self {
        Slct {
            min_support: 3,
            templates: Vec::new(),
        }
    }
}

impl LogParser for Slct {
    fn name(&self) -> &str {
        "SLCT"
    }

    fn parse(&mut self, records: &[String]) -> Vec<usize> {
        let tokenized: Vec<Vec<String>> = records.iter().map(|r| tokenize_simple(r)).collect();
        // Pass 1: support of every (position, word) pair.
        let mut support: HashMap<(usize, &str), u64> = HashMap::new();
        for tokens in &tokenized {
            for (i, t) in tokens.iter().enumerate() {
                *support.entry((i, t.as_str())).or_insert(0) += 1;
            }
        }
        // Pass 2: build each log's cluster candidate from its frequent pairs.
        let mut interner = GroupInterner::new();
        let mut templates: HashMap<String, ()> = HashMap::new();
        let assignment = tokenized
            .iter()
            .map(|tokens| {
                let template: Vec<&str> = tokens
                    .iter()
                    .enumerate()
                    .map(|(i, t)| {
                        if support[&(i, t.as_str())] >= self.min_support {
                            t.as_str()
                        } else {
                            "<*>"
                        }
                    })
                    .collect();
                let rendered = template.join(" ");
                let key = format!("{}|{}", tokens.len(), rendered);
                templates.insert(rendered, ());
                interner.intern(&key)
            })
            .collect();
        self.templates = templates.into_keys().collect();
        assignment
    }

    fn templates(&self) -> Vec<String> {
        self.templates.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frequent_positions_form_the_template() {
        let mut slct = Slct::default();
        let records: Vec<String> = (0..20)
            .map(|i| format!("interface eth{} link became ready", i))
            .collect();
        let groups = slct.parse(&records);
        assert!(groups.iter().all(|&g| g == groups[0]));
        assert!(slct
            .templates()
            .iter()
            .any(|t| t.contains("interface <*> link became ready")));
    }

    #[test]
    fn low_support_logs_are_not_merged_with_frequent_clusters() {
        let mut slct = Slct::default();
        let mut records: Vec<String> = (0..20)
            .map(|i| format!("interface eth{i} link became ready"))
            .collect();
        records.push("kernel watchdog barked loudly today".into());
        let groups = slct.parse(&records);
        assert_ne!(groups[0], groups[20]);
    }

    #[test]
    fn support_threshold_is_respected() {
        let mut slct = Slct {
            min_support: 100,
            templates: Vec::new(),
        };
        // Nothing reaches support 100, so every position is a wildcard and grouping falls
        // back to token count.
        let groups = slct.parse(&["a b c".into(), "d e f".into(), "g h".into()]);
        assert_eq!(groups[0], groups[1]);
        assert_ne!(groups[0], groups[2]);
    }
}
