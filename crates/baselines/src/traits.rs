//! The `LogParser` trait shared by every baseline, plus the simple whitespace tokenizer
//! the original baseline implementations use (they split on whitespace after a light
//! preprocessing pass, unlike ByteBrain's richer delimiter set).

use std::collections::HashMap;

/// A log parser evaluated by grouping accuracy: `parse` assigns every record an opaque
/// group id; records with equal ids are considered to share a template.
pub trait LogParser: Send {
    /// Parser name as used in the paper's tables.
    fn name(&self) -> &str;

    /// Parse a batch of records and return one group id per record.
    fn parse(&mut self, records: &[String]) -> Vec<usize>;

    /// The templates the parser produced for the last `parse` call, if it materialises
    /// them (used for qualitative output; group ids are what accuracy uses).
    fn templates(&self) -> Vec<String> {
        Vec::new()
    }
}

/// Whitespace tokenization with light masking of obvious numerals, shared by the baseline
/// implementations (mirrors the Logparser toolkit's preprocessing, which masks numbers,
/// IP addresses and similar purely-numeric tokens before running each parser).
pub fn tokenize_simple(record: &str) -> Vec<String> {
    record
        .split_whitespace()
        .map(|t| {
            let has_digit = t.chars().any(|c| c.is_ascii_digit());
            let numericish = has_digit
                && t.chars()
                    .all(|c| c.is_ascii_digit() || matches!(c, '.' | ':' | '-' | '/' | ','));
            if numericish {
                "<*>".to_string()
            } else {
                t.to_string()
            }
        })
        .collect()
}

/// Intern helper: map template strings to stable group ids.
#[derive(Debug, Default)]
pub struct GroupInterner {
    ids: HashMap<String, usize>,
}

impl GroupInterner {
    /// Create an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get the id for `key`, allocating a new one if needed.
    pub fn intern(&mut self, key: &str) -> usize {
        let next = self.ids.len();
        *self.ids.entry(key.to_string()).or_insert(next)
    }

    /// Number of distinct keys seen.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when no key has been interned.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_tokenizer_masks_pure_numbers() {
        let tokens = tokenize_simple("request 42 served in 7 ms");
        assert_eq!(tokens, vec!["request", "<*>", "served", "in", "<*>", "ms"]);
    }

    #[test]
    fn simple_tokenizer_masks_ips_and_times() {
        let tokens = tokenize_simple("from 10.0.0.5 at 12:30:45 code -1");
        assert_eq!(tokens, vec!["from", "<*>", "at", "<*>", "code", "<*>"]);
    }

    #[test]
    fn simple_tokenizer_keeps_mixed_tokens() {
        let tokens = tokenize_simple("block blk_123 on node-7 level warn");
        assert_eq!(
            tokens,
            vec!["block", "blk_123", "on", "node-7", "level", "warn"]
        );
    }

    #[test]
    fn interner_assigns_stable_ids() {
        let mut interner = GroupInterner::new();
        assert!(interner.is_empty());
        let a = interner.intern("template a");
        let b = interner.intern("template b");
        let a2 = interner.intern("template a");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(interner.len(), 2);
    }
}
