//! AEL — Abstracting Execution Logs (Jiang et al., QSIC 2008).
//!
//! Logs are first *categorised* by (token count, number of masked variable tokens), then
//! within each category *bins* are formed by exact equality of the constant tokens, and
//! finally bins whose constant parts differ in at most a small number of positions are
//! *merged* (the reconcile step).

use crate::traits::{tokenize_simple, LogParser};
use std::collections::HashMap;

/// The AEL parser.
#[derive(Debug)]
pub struct Ael {
    /// Maximum number of differing constant positions for two bins to be merged.
    pub merge_tolerance: usize,
    templates: Vec<String>,
}

impl Default for Ael {
    fn default() -> Self {
        Ael {
            merge_tolerance: 1,
            templates: Vec::new(),
        }
    }
}

impl LogParser for Ael {
    fn name(&self) -> &str {
        "AEL"
    }

    fn parse(&mut self, records: &[String]) -> Vec<usize> {
        let tokenized: Vec<Vec<String>> = records.iter().map(|r| tokenize_simple(r)).collect();
        // Categorize step: (#tokens, #variable tokens).
        let mut categories: HashMap<(usize, usize), Vec<usize>> = HashMap::new();
        for (idx, tokens) in tokenized.iter().enumerate() {
            let vars = tokens.iter().filter(|t| *t == "<*>").count();
            categories
                .entry((tokens.len(), vars))
                .or_default()
                .push(idx);
        }
        let mut assignment = vec![0usize; records.len()];
        let mut next_group = 0usize;
        let mut all_templates = Vec::new();
        let mut sorted_categories: Vec<_> = categories.into_iter().collect();
        sorted_categories.sort_by_key(|(k, _)| *k);
        for (_, members) in sorted_categories {
            // Bin step: exact equality of token sequences.
            let mut bins: Vec<(Vec<String>, Vec<usize>)> = Vec::new();
            for &idx in &members {
                let tokens = &tokenized[idx];
                match bins.iter_mut().find(|(key, _)| key == tokens) {
                    Some((_, bin_members)) => bin_members.push(idx),
                    None => bins.push((tokens.clone(), vec![idx])),
                }
            }
            // Reconcile step: merge bins whose templates differ in few positions.
            let mut bin_group: Vec<usize> = (0..bins.len()).collect();
            for i in 0..bins.len() {
                for j in (i + 1)..bins.len() {
                    let differing = bins[i]
                        .0
                        .iter()
                        .zip(&bins[j].0)
                        .filter(|(a, b)| a != b)
                        .count();
                    if differing <= self.merge_tolerance {
                        let target = bin_group[i];
                        let source = bin_group[j];
                        for g in bin_group.iter_mut() {
                            if *g == source {
                                *g = target;
                            }
                        }
                    }
                }
            }
            // Assign group ids per merged bin cluster.
            let mut cluster_to_group: HashMap<usize, usize> = HashMap::new();
            for (bin_idx, (template, bin_members)) in bins.iter().enumerate() {
                let cluster = bin_group[bin_idx];
                let group = *cluster_to_group.entry(cluster).or_insert_with(|| {
                    let g = next_group;
                    next_group += 1;
                    all_templates.push(template.join(" "));
                    g
                });
                for &idx in bin_members {
                    assignment[idx] = group;
                }
            }
        }
        self.templates = all_templates;
        assignment
    }

    fn templates(&self) -> Vec<String> {
        self.templates.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_variables_are_abstracted_into_one_group() {
        let mut ael = Ael::default();
        let groups = ael.parse(&[
            "request 1 served in 10 ms".into(),
            "request 2 served in 20 ms".into(),
            "cache flush completed without errors now".into(),
        ]);
        assert_eq!(groups[0], groups[1]);
        assert_ne!(groups[0], groups[2]);
    }

    #[test]
    fn reconcile_merges_nearly_identical_bins() {
        let mut ael = Ael::default();
        let groups = ael.parse(&[
            "session opened for alice".into(),
            "session opened for bob".into(),
        ]);
        assert_eq!(groups[0], groups[1]);
    }

    #[test]
    fn different_categories_stay_apart() {
        let mut ael = Ael::default();
        let groups = ael.parse(&["one two three".into(), "one two three four".into()]);
        assert_ne!(groups[0], groups[1]);
    }
}
