//! IPLoM — Iterative Partitioning Log Mining (Makanju et al., KDD 2009).
//!
//! Three partitioning steps are applied in sequence:
//! 1. partition by token count,
//! 2. partition by the value at the position with the fewest distinct tokens,
//! 3. partition by the bijection/mapping relation between the two most informative
//!    positions (simplified here to the pair of positions with the lowest distinct counts).
//!
//! Partitions whose size falls below a support threshold stay as they are (they become
//! their own groups), mirroring the original algorithm's partition-support check.

use crate::traits::{tokenize_simple, LogParser};
use std::collections::HashMap;

/// The IPLoM parser.
#[derive(Debug)]
pub struct Iplom {
    /// Partitions smaller than this fraction of their parent are not split further.
    pub partition_support: f64,
    /// Positions whose distinct-value ratio exceeds this are treated as variable columns
    /// and never used for partitioning.
    pub upper_bound: f64,
    templates: Vec<String>,
}

impl Default for Iplom {
    fn default() -> Self {
        Iplom {
            partition_support: 0.0,
            upper_bound: 0.9,
            templates: Vec::new(),
        }
    }
}

impl Iplom {
    /// Choose the split position: fewest distinct values among positions that are not
    /// (nearly) all-distinct. Returns `None` when no usable position exists.
    fn split_position(&self, members: &[usize], tokenized: &[Vec<String>]) -> Option<usize> {
        let n = members.len();
        let mut best: Option<(usize, usize)> = None;
        for (position, _) in tokenized[members[0]].iter().enumerate() {
            let mut distinct: HashMap<&str, ()> = HashMap::new();
            for &m in members {
                distinct.insert(tokenized[m][position].as_str(), ());
            }
            let count = distinct.len();
            if count <= 1 {
                continue; // constant column: no information.
            }
            if count as f64 / n as f64 > self.upper_bound {
                continue; // variable column.
            }
            if best.map(|(_, c)| count < c).unwrap_or(true) {
                best = Some((position, count));
            }
        }
        best.map(|(p, _)| p)
    }
}

impl LogParser for Iplom {
    fn name(&self) -> &str {
        "IPLoM"
    }

    fn parse(&mut self, records: &[String]) -> Vec<usize> {
        let tokenized: Vec<Vec<String>> = records.iter().map(|r| tokenize_simple(r)).collect();
        // Step 1: partition by token count.
        let mut by_length: HashMap<usize, Vec<usize>> = HashMap::new();
        for (idx, tokens) in tokenized.iter().enumerate() {
            by_length.entry(tokens.len()).or_default().push(idx);
        }
        let mut assignment = vec![0usize; records.len()];
        let mut next_group = 0usize;
        let mut templates = Vec::new();
        let mut lengths: Vec<_> = by_length.into_iter().collect();
        lengths.sort_by_key(|(l, _)| *l);
        for (_, members) in lengths {
            if members.is_empty() {
                continue;
            }
            // Step 2: partition by the value at the most constant non-trivial position.
            let second_level: Vec<Vec<usize>> = match self.split_position(&members, &tokenized) {
                Some(position) => {
                    let mut parts: HashMap<&str, Vec<usize>> = HashMap::new();
                    for &m in &members {
                        parts
                            .entry(tokenized[m][position].as_str())
                            .or_default()
                            .push(m);
                    }
                    let mut values: Vec<_> = parts.into_iter().collect();
                    values.sort_by_key(|(v, _)| v.to_string());
                    values.into_iter().map(|(_, p)| p).collect()
                }
                None => vec![members.clone()],
            };
            for part in second_level {
                // Step 3: one more partitioning pass inside each part (the simplified
                // search-for-mapping step); parts below the support threshold stay whole.
                let support_ok = part.len() as f64 >= self.partition_support * members.len() as f64;
                let third_level: Vec<Vec<usize>> = if support_ok && part.len() > 1 {
                    match self.split_position(&part, &tokenized) {
                        Some(position) => {
                            let mut parts: HashMap<&str, Vec<usize>> = HashMap::new();
                            for &m in &part {
                                parts
                                    .entry(tokenized[m][position].as_str())
                                    .or_default()
                                    .push(m);
                            }
                            let mut values: Vec<_> = parts.into_iter().collect();
                            values.sort_by_key(|(v, _)| v.to_string());
                            values.into_iter().map(|(_, p)| p).collect()
                        }
                        None => vec![part],
                    }
                } else {
                    vec![part]
                };
                for group_members in third_level {
                    let group = next_group;
                    next_group += 1;
                    // Render the group's template for the qualitative output.
                    let first = &tokenized[group_members[0]];
                    let template: Vec<String> = (0..first.len())
                        .map(|i| {
                            let all_same =
                                group_members.iter().all(|&m| tokenized[m][i] == first[i]);
                            if all_same {
                                first[i].clone()
                            } else {
                                "<*>".to_string()
                            }
                        })
                        .collect();
                    templates.push(template.join(" "));
                    for &m in &group_members {
                        assignment[m] = group;
                    }
                }
            }
        }
        self.templates = templates;
        assignment
    }

    fn templates(&self) -> Vec<String> {
        self.templates.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partitions_by_structure() {
        let mut iplom = Iplom::default();
        let groups = iplom.parse(&[
            "state changed from active to idle".into(),
            "state changed from idle to active".into(),
            "disk sda1 is now offline today ok".into(),
        ]);
        assert_eq!(groups[0], groups[1]);
        assert_ne!(groups[0], groups[2]);
    }

    #[test]
    fn numeric_variables_do_not_split_groups() {
        let mut iplom = Iplom::default();
        let groups = iplom.parse(&[
            "worker 12 finished task 9".into(),
            "worker 99 finished task 3".into(),
        ]);
        assert_eq!(groups[0], groups[1]);
    }

    #[test]
    fn templates_wildcard_varying_positions() {
        let mut iplom = Iplom::default();
        iplom.parse(&[
            "user alice deleted file report.pdf".into(),
            "user bob deleted file budget.xls".into(),
        ]);
        assert!(iplom
            .templates()
            .iter()
            .any(|t| t.starts_with("user") && t.contains("deleted file")));
    }
}
