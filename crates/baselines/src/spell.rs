//! Spell (Du & Li, ICDM 2016): streaming parsing based on the longest common subsequence
//! (LCS). Each incoming log is compared against existing LCS objects; if the LCS with some
//! object covers at least half of the log's tokens, the log joins it and the object's
//! template is refined to the LCS; otherwise a new object is created.

use crate::traits::{tokenize_simple, LogParser};

#[derive(Debug, Clone)]
struct LcsObject {
    template: Vec<String>,
    group_id: usize,
}

/// The Spell parser.
#[derive(Debug)]
pub struct Spell {
    /// Minimum fraction of the log's tokens the LCS must cover to join an object.
    pub tau: f64,
    objects: Vec<LcsObject>,
    next_group: usize,
}

impl Default for Spell {
    fn default() -> Self {
        Spell {
            tau: 0.5,
            objects: Vec::new(),
            next_group: 0,
        }
    }
}

/// Longest common subsequence of two token slices.
fn lcs(a: &[String], b: &[String]) -> Vec<String> {
    let n = a.len();
    let m = b.len();
    let mut dp = vec![vec![0usize; m + 1]; n + 1];
    for i in (0..n).rev() {
        for j in (0..m).rev() {
            dp[i][j] = if a[i] == b[j] {
                dp[i + 1][j + 1] + 1
            } else {
                dp[i + 1][j].max(dp[i][j + 1])
            };
        }
    }
    let mut out = Vec::with_capacity(dp[0][0]);
    let (mut i, mut j) = (0usize, 0usize);
    while i < n && j < m {
        if a[i] == b[j] {
            out.push(a[i].clone());
            i += 1;
            j += 1;
        } else if dp[i + 1][j] >= dp[i][j + 1] {
            i += 1;
        } else {
            j += 1;
        }
    }
    out
}

impl Spell {
    fn parse_one(&mut self, record: &str) -> usize {
        let tokens = tokenize_simple(record);
        let meaningful: Vec<&String> = tokens.iter().filter(|t| *t != "<*>").collect();
        let mut best: Option<(usize, usize)> = None; // (object index, lcs length)
        for (idx, object) in self.objects.iter().enumerate() {
            // Cheap pre-filter: templates whose length differs wildly cannot have a
            // sufficiently long LCS.
            if object.template.len() * 2 < meaningful.len()
                || meaningful.len() * 2 < object.template.len()
            {
                continue;
            }
            let owned: Vec<String> = meaningful.iter().map(|s| (*s).clone()).collect();
            let common = lcs(&object.template, &owned);
            if common.len() * 2 >= tokens.len()
                && best.map(|(_, len)| common.len() > len).unwrap_or(true)
            {
                best = Some((idx, common.len()));
            }
        }
        match best {
            Some((idx, _))
                if (self.objects[idx].template.len() as f64) >= self.tau * tokens.len() as f64 =>
            {
                let owned: Vec<String> = meaningful.iter().map(|s| (*s).clone()).collect();
                let refined = lcs(&self.objects[idx].template, &owned);
                if !refined.is_empty() {
                    self.objects[idx].template = refined;
                }
                self.objects[idx].group_id
            }
            _ => {
                let group_id = self.next_group;
                self.next_group += 1;
                self.objects.push(LcsObject {
                    template: meaningful.iter().map(|s| (*s).clone()).collect(),
                    group_id,
                });
                group_id
            }
        }
    }
}

impl LogParser for Spell {
    fn name(&self) -> &str {
        "Spell"
    }

    fn parse(&mut self, records: &[String]) -> Vec<usize> {
        records.iter().map(|r| self.parse_one(r)).collect()
    }

    fn templates(&self) -> Vec<String> {
        self.objects.iter().map(|o| o.template.join(" ")).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lcs_basics() {
        let a: Vec<String> = ["x", "y", "z"].iter().map(|s| s.to_string()).collect();
        let b: Vec<String> = ["x", "q", "z"].iter().map(|s| s.to_string()).collect();
        assert_eq!(lcs(&a, &b), vec!["x".to_string(), "z".to_string()]);
        assert!(lcs(&a, &[]).is_empty());
    }

    #[test]
    fn same_statement_different_variables_groups_together() {
        let mut spell = Spell::default();
        let groups = spell.parse(&[
            "Verification succeeded for blk_1".into(),
            "Verification succeeded for blk_2".into(),
            "Deleting block blk_3 file /x".into(),
        ]);
        assert_eq!(groups[0], groups[1]);
        assert_ne!(groups[0], groups[2]);
    }

    #[test]
    fn templates_shrink_to_the_common_subsequence() {
        let mut spell = Spell::default();
        spell.parse(&[
            "session opened for user root by uid 0".into(),
            "session opened for user guest by uid 1000".into(),
        ]);
        let templates = spell.templates();
        assert!(templates
            .iter()
            .any(|t| t.contains("session opened for user") && !t.contains("root")));
    }

    #[test]
    fn unrelated_logs_get_new_groups() {
        let mut spell = Spell::default();
        let groups = spell.parse(&[
            "alpha beta gamma delta".into(),
            "completely different content here".into(),
        ]);
        assert_ne!(groups[0], groups[1]);
    }
}
