//! LFA — Log File Abstraction (Nagappan & Vouk, MSR 2010): token-frequency analysis
//! within each log line. Tokens whose corpus frequency is low relative to the most
//! frequent token of their line are treated as variables; the remaining constant skeleton
//! is the template.

use crate::traits::{tokenize_simple, GroupInterner, LogParser};
use std::collections::HashMap;

/// The LFA parser.
#[derive(Debug, Default)]
pub struct Lfa {
    templates: Vec<String>,
}

impl LogParser for Lfa {
    fn name(&self) -> &str {
        "LFA"
    }

    fn parse(&mut self, records: &[String]) -> Vec<usize> {
        let tokenized: Vec<Vec<String>> = records.iter().map(|r| tokenize_simple(r)).collect();
        // Global token frequencies.
        let mut frequency: HashMap<&str, u64> = HashMap::new();
        for tokens in &tokenized {
            for t in tokens {
                *frequency.entry(t.as_str()).or_insert(0) += 1;
            }
        }
        let mut interner = GroupInterner::new();
        let mut seen_templates: HashMap<String, ()> = HashMap::new();
        let assignment: Vec<usize> = tokenized
            .iter()
            .map(|tokens| {
                if tokens.is_empty() {
                    return interner.intern("<empty>");
                }
                let max_freq = tokens
                    .iter()
                    .map(|t| frequency[t.as_str()])
                    .max()
                    .unwrap_or(1);
                // A token is constant when its frequency is at least half the line's
                // maximum (the line-level frequency-jump heuristic of the paper).
                let template: Vec<&str> = tokens
                    .iter()
                    .map(|t| {
                        if frequency[t.as_str()] * 2 >= max_freq {
                            t.as_str()
                        } else {
                            "<*>"
                        }
                    })
                    .collect();
                let key = format!("{}|{}", tokens.len(), template.join(" "));
                seen_templates.insert(template.join(" "), ());
                interner.intern(&key)
            })
            .collect();
        self.templates = seen_templates.into_keys().collect();
        assignment
    }

    fn templates(&self) -> Vec<String> {
        self.templates.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frequent_skeleton_with_rare_values_groups_together() {
        let mut lfa = Lfa::default();
        let mut records: Vec<String> = (0..20)
            .map(|i| format!("connection from host-{i:04} established"))
            .collect();
        records.push("completely unrelated single log".into());
        let groups = lfa.parse(&records);
        assert_eq!(groups[0], groups[1]);
        assert_eq!(groups[0], groups[19]);
        assert_ne!(groups[0], groups[20]);
    }

    #[test]
    fn assignment_length_matches_input() {
        let mut lfa = Lfa::default();
        let records: Vec<String> = vec!["a b".into(), "".into(), "c d e".into()];
        assert_eq!(lfa.parse(&records).len(), 3);
    }

    #[test]
    fn templates_are_collected() {
        let mut lfa = Lfa::default();
        lfa.parse(&["job started on node1".into(), "job started on node2".into()]);
        assert!(!lfa.templates().is_empty());
    }
}
