//! LenMa (Shima, 2016): clustering by word-length vectors. Each log is represented by the
//! vector of its token lengths; a log joins the cluster (of the same token count) whose
//! length vector has the highest cosine similarity, provided it exceeds a threshold.

use crate::traits::{tokenize_simple, LogParser};

#[derive(Debug, Clone)]
struct LenCluster {
    lengths: Vec<f64>,
    template: Vec<String>,
    group_id: usize,
}

/// The LenMa parser.
#[derive(Debug)]
pub struct LenMa {
    /// Minimum cosine similarity between length vectors to join a cluster.
    pub threshold: f64,
    clusters: Vec<LenCluster>,
    next_group: usize,
}

impl Default for LenMa {
    fn default() -> Self {
        LenMa {
            threshold: 0.8,
            clusters: Vec::new(),
            next_group: 0,
        }
    }
}

fn cosine(a: &[f64], b: &[f64]) -> f64 {
    let dot: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f64 = a.iter().map(|x| x * x).sum::<f64>().sqrt();
    let nb: f64 = b.iter().map(|x| x * x).sum::<f64>().sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

impl LenMa {
    fn parse_one(&mut self, record: &str) -> usize {
        let tokens = tokenize_simple(record);
        let lengths: Vec<f64> = tokens.iter().map(|t| t.len() as f64).collect();
        let mut best: Option<(usize, f64)> = None;
        for (idx, cluster) in self.clusters.iter().enumerate() {
            if cluster.lengths.len() != lengths.len() {
                continue;
            }
            // Positions where the constant token matches exactly boost confidence; the
            // original method combines cosine similarity of length vectors with the count
            // of exactly-matching words.
            let sim = cosine(&cluster.lengths, &lengths);
            let exact = cluster
                .template
                .iter()
                .zip(&tokens)
                .filter(|(a, b)| *a == *b)
                .count() as f64
                / lengths.len() as f64;
            let score = (sim + exact) / 2.0;
            if best.map(|(_, s)| score > s).unwrap_or(true) {
                best = Some((idx, score));
            }
        }
        match best {
            Some((idx, score)) if score >= self.threshold => {
                let cluster = &mut self.clusters[idx];
                // Update the representative length vector (running average) and template.
                for (l, new) in cluster.lengths.iter_mut().zip(&lengths) {
                    *l = (*l + *new) / 2.0;
                }
                for (t, token) in cluster.template.iter_mut().zip(&tokens) {
                    if t != token {
                        *t = "<*>".to_string();
                    }
                }
                cluster.group_id
            }
            _ => {
                let group_id = self.next_group;
                self.next_group += 1;
                self.clusters.push(LenCluster {
                    lengths,
                    template: tokens,
                    group_id,
                });
                group_id
            }
        }
    }
}

impl LogParser for LenMa {
    fn name(&self) -> &str {
        "LenMa"
    }

    fn parse(&mut self, records: &[String]) -> Vec<usize> {
        records.iter().map(|r| self.parse_one(r)).collect()
    }

    fn templates(&self) -> Vec<String> {
        self.clusters.iter().map(|c| c.template.join(" ")).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cosine_of_identical_vectors_is_one() {
        assert!((cosine(&[1.0, 2.0], &[1.0, 2.0]) - 1.0).abs() < 1e-9);
        assert_eq!(cosine(&[0.0], &[0.0]), 0.0);
    }

    #[test]
    fn similar_word_lengths_cluster_together() {
        let mut lenma = LenMa::default();
        let groups = lenma.parse(&[
            "Accepted password for alice from 10.0.0.1".into(),
            "Accepted password for carol from 10.0.0.9".into(),
            "kernel panic not syncing now stop".into(),
        ]);
        assert_eq!(groups[0], groups[1]);
        assert_ne!(groups[0], groups[2]);
    }

    #[test]
    fn different_token_counts_never_cluster() {
        let mut lenma = LenMa::default();
        let groups = lenma.parse(&["a bb ccc".into(), "a bb".into()]);
        assert_ne!(groups[0], groups[1]);
    }
}
