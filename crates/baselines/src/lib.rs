//! `baselines` — from-scratch implementations of the log parsers ByteBrain is compared
//! against in the paper's evaluation (§5.1.2).
//!
//! Syntax-based baselines (all implemented from their published descriptions):
//!
//! | Parser | Family | Module |
//! |---|---|---|
//! | Drain | fixed-depth parse tree | [`drain`] |
//! | Spell | longest-common-subsequence streaming | [`spell`] |
//! | AEL | abstraction of execution logs (bins + merge) | [`ael`] |
//! | IPLoM | iterative partitioning | [`iplom`] |
//! | LenMa | word-length vectors | [`lenma`] |
//! | LFA | token frequency within a line | [`lfa`] |
//! | LogCluster | frequent-word clustering | [`logcluster`] |
//! | SLCT | frequent (position, word) pairs | [`slct`] |
//! | LogMine | max-distance agglomerative clustering | [`logmine`] |
//! | LogSig | signature search with fixed group count | [`logsig`] |
//! | SHISO | incremental similarity tree | [`shiso`] |
//! | Logram | n-gram dictionaries | [`logram`] |
//! | MoLFI | search over template candidates | [`molfi`] |
//!
//! Semantic / LLM baselines (UniParser, LogPPT, LILAC) are **simulated** ([`semantic_sim`])
//! because shipping a neural network or an LLM is outside the scope of this reproduction:
//! the simulation parses with access to ground-truth templates (high accuracy) while
//! charging a configurable per-inference cost (low throughput), and LILAC additionally
//! caches templates so repeated patterns skip the cost — exactly the role these baselines
//! play in the paper's comparison. See `DESIGN.md` §3.
//!
//! All parsers implement the [`LogParser`] trait: `parse` maps every record to an opaque
//! group id, which is what the Grouping Accuracy metric consumes.

pub mod ael;
pub mod drain;
pub mod iplom;
pub mod lenma;
pub mod lfa;
pub mod logcluster;
pub mod logmine;
pub mod logram;
pub mod logsig;
pub mod molfi;
pub mod semantic_sim;
pub mod shiso;
pub mod slct;
pub mod spell;
pub mod traits;

pub use semantic_sim::{SemanticKind, SimulatedSemanticParser};
pub use traits::{tokenize_simple, LogParser};

/// Construct every syntax-based baseline with its default parameters, keyed by the name
/// used in the paper's tables.
pub fn all_syntax_baselines() -> Vec<Box<dyn LogParser>> {
    vec![
        Box::new(drain::Drain::default()),
        Box::new(spell::Spell::default()),
        Box::new(ael::Ael::default()),
        Box::new(iplom::Iplom::default()),
        Box::new(lenma::LenMa::default()),
        Box::new(lfa::Lfa::default()),
        Box::new(logcluster::LogCluster::default()),
        Box::new(slct::Slct::default()),
        Box::new(logmine::LogMine::default()),
        Box::new(logsig::LogSig::default()),
        Box::new(shiso::Shiso::default()),
        Box::new(logram::Logram::default()),
        Box::new(molfi::Molfi::default()),
    ]
}

#[cfg(test)]
mod conformance {
    use super::*;

    fn workload() -> (Vec<String>, Vec<usize>) {
        // A small workload with unambiguous structure: three templates.
        let mut records = Vec::new();
        let mut labels = Vec::new();
        for i in 0..40 {
            records.push(format!(
                "Accepted password for user{} from 10.0.0.{} port 22",
                i % 5,
                i
            ));
            labels.push(0);
            records.push(format!("Connection closed by 10.0.0.{}", i));
            labels.push(1);
            if i % 2 == 0 {
                records.push(format!(
                    "Failed none for invalid user test{} from 10.0.0.{} port 22",
                    i, i
                ));
                labels.push(2);
            }
        }
        (records, labels)
    }

    #[test]
    fn every_baseline_assigns_every_record_to_a_group() {
        let (records, _) = workload();
        for mut parser in all_syntax_baselines() {
            let groups = parser.parse(&records);
            assert_eq!(
                groups.len(),
                records.len(),
                "{} returned the wrong number of assignments",
                parser.name()
            );
        }
    }

    #[test]
    fn every_baseline_separates_logs_of_different_lengths() {
        let records = vec![
            "alpha beta gamma".to_string(),
            "alpha beta".to_string(),
            "alpha beta gamma".to_string(),
        ];
        for mut parser in all_syntax_baselines() {
            let groups = parser.parse(&records);
            assert_eq!(groups[0], groups[2], "{}", parser.name());
        }
    }

    #[test]
    fn reasonable_baselines_reach_decent_accuracy_on_the_easy_workload() {
        let (records, labels) = workload();
        // Only the well-behaved parsers are held to an accuracy bar here; weaker ones
        // (LogSig with a wrong k, LFA, …) legitimately score lower, as in the paper.
        // (parser, minimum GA): IPLoM's positional partitioning legitimately over-splits
        // on low-cardinality variable columns, so its bar is lower (as in the paper).
        let cases: Vec<(Box<dyn LogParser>, f64)> = vec![
            (Box::new(drain::Drain::default()), 0.6),
            (Box::new(spell::Spell::default()), 0.6),
            (Box::new(ael::Ael::default()), 0.6),
            (Box::new(iplom::Iplom::default()), 0.45),
        ];
        for (mut parser, minimum) in cases {
            let groups = parser.parse(&records);
            let ga = grouping_accuracy_local(&groups, &labels);
            assert!(
                ga >= minimum,
                "{} grouping accuracy too low: {ga}",
                parser.name()
            );
        }
    }

    /// Minimal GA implementation to avoid a circular dev-dependency on the eval crate.
    fn grouping_accuracy_local(predicted: &[usize], truth: &[usize]) -> f64 {
        use std::collections::HashMap;
        let mut predicted_groups: HashMap<usize, Vec<usize>> = HashMap::new();
        let mut truth_groups: HashMap<usize, Vec<usize>> = HashMap::new();
        for i in 0..predicted.len() {
            predicted_groups.entry(predicted[i]).or_default().push(i);
            truth_groups.entry(truth[i]).or_default().push(i);
        }
        let mut correct = 0usize;
        for members in truth_groups.values() {
            let p = predicted[members[0]];
            if members.iter().all(|&i| predicted[i] == p)
                && predicted_groups[&p].len() == members.len()
            {
                correct += members.len();
            }
        }
        correct as f64 / predicted.len() as f64
    }
}
