//! LogSig (Tang et al., CIKM 2011): message-signature-based clustering with a fixed number
//! of groups `k`. Each log is represented by its set of ordered token pairs; a local
//! search moves logs between the `k` groups to maximise the in-group pair overlap. The
//! requirement to know `k` in advance is the weakness the paper calls out — with a wrong
//! `k` the accuracy collapses, which the evaluation reproduces.

use crate::traits::{tokenize_simple, LogParser};
use std::collections::{HashMap, HashSet};

/// The LogSig parser.
#[derive(Debug)]
pub struct LogSig {
    /// Number of groups to form (the original algorithm requires this as input).
    pub k: usize,
    /// Number of local-search passes.
    pub iterations: usize,
    templates: Vec<String>,
}

impl Default for LogSig {
    fn default() -> Self {
        LogSig {
            k: 16,
            iterations: 3,
            templates: Vec::new(),
        }
    }
}

/// The ordered token-pair signature of a log.
fn pair_signature(tokens: &[String]) -> HashSet<(String, String)> {
    let mut pairs = HashSet::new();
    for i in 0..tokens.len() {
        for j in (i + 1)..tokens.len().min(i + 6) {
            pairs.insert((tokens[i].clone(), tokens[j].clone()));
        }
    }
    pairs
}

impl LogParser for LogSig {
    fn name(&self) -> &str {
        "LogSig"
    }

    fn parse(&mut self, records: &[String]) -> Vec<usize> {
        if records.is_empty() {
            return Vec::new();
        }
        let tokenized: Vec<Vec<String>> = records.iter().map(|r| tokenize_simple(r)).collect();
        let signatures: Vec<HashSet<(String, String)>> =
            tokenized.iter().map(|t| pair_signature(t)).collect();
        let k = self.k.max(1).min(records.len());
        // Deterministic initial assignment: hash of the log's coarse shape (token count
        // and first token), so that structurally different logs start in different groups
        // and the local search does not collapse everything into one group.
        let mut assignment: Vec<usize> = tokenized
            .iter()
            .map(|tokens| {
                let mut h: u64 = tokens.len() as u64;
                if let Some(first) = tokens.first() {
                    for b in first.bytes() {
                        h = h.wrapping_mul(131).wrapping_add(b as u64);
                    }
                }
                (h % k as u64) as usize
            })
            .collect();
        for _ in 0..self.iterations {
            // Count pair frequencies per group.
            let mut group_pairs: Vec<HashMap<&(String, String), u64>> = vec![HashMap::new(); k];
            for (idx, sig) in signatures.iter().enumerate() {
                for pair in sig {
                    *group_pairs[assignment[idx]].entry(pair).or_insert(0) += 1;
                }
            }
            // Move every log to the group whose frequent pairs it overlaps most.
            let mut changed = false;
            for (idx, sig) in signatures.iter().enumerate() {
                let current = assignment[idx];
                let score_of = |pairs: &HashMap<&(String, String), u64>| -> f64 {
                    sig.iter()
                        .map(|p| pairs.get(p).copied().unwrap_or(0) as f64)
                        .sum()
                };
                let mut best_group = current;
                // Ties keep the current group so the search cannot collapse symmetric
                // configurations into a single cluster.
                let mut best_score = score_of(&group_pairs[current]);
                for (g, pairs) in group_pairs.iter().enumerate() {
                    let score = score_of(pairs);
                    if score > best_score {
                        best_score = score;
                        best_group = g;
                    }
                }
                if best_group != assignment[idx] {
                    assignment[idx] = best_group;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        // Render one template per non-empty group (positional alignment over the group's
        // most common token count).
        let mut templates = Vec::new();
        for g in 0..k {
            let members: Vec<usize> = (0..records.len()).filter(|&i| assignment[i] == g).collect();
            if members.is_empty() {
                continue;
            }
            let len = tokenized[members[0]].len();
            let aligned: Vec<&Vec<String>> = members
                .iter()
                .map(|&i| &tokenized[i])
                .filter(|t| t.len() == len)
                .collect();
            if aligned.is_empty() {
                continue;
            }
            let template: Vec<String> = (0..len)
                .map(|i| {
                    let first = &aligned[0][i];
                    if aligned.iter().all(|t| &t[i] == first) {
                        first.clone()
                    } else {
                        "<*>".to_string()
                    }
                })
                .collect();
            templates.push(template.join(" "));
        }
        self.templates = templates;
        assignment
    }

    fn templates(&self) -> Vec<String> {
        self.templates.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn correct_k_separates_two_obvious_groups() {
        let mut logsig = LogSig {
            k: 2,
            iterations: 5,
            templates: Vec::new(),
        };
        let mut records: Vec<String> = (0..20)
            .map(|i| format!("query {} returned {} rows", i, i * 3))
            .collect();
        records.extend((0..20).map(|i| format!("commit of txn {} took {} ms", i, i)));
        let groups = logsig.parse(&records);
        assert_eq!(groups[0], groups[5]);
        assert_eq!(groups[25], groups[30]);
        assert_ne!(groups[0], groups[25]);
    }

    #[test]
    fn k_larger_than_record_count_is_clamped() {
        let mut logsig = LogSig::default();
        let groups = logsig.parse(&["a b".into(), "a c".into()]);
        assert_eq!(groups.len(), 2);
    }

    #[test]
    fn empty_input_is_fine() {
        let mut logsig = LogSig::default();
        assert!(logsig.parse(&[]).is_empty());
    }
}
