//! LogCluster (Vaarandi & Pihelgas / Lin et al. variants): clustering driven by frequent
//! words. Words whose corpus support reaches a threshold are "frequent"; each log is
//! reduced to its ordered sequence of frequent words, and logs with the same sequence form
//! a cluster.

use crate::traits::{tokenize_simple, GroupInterner, LogParser};
use std::collections::HashMap;

/// The LogCluster parser.
#[derive(Debug)]
pub struct LogCluster {
    /// A word is frequent when it appears in at least this fraction of the logs.
    pub support: f64,
    templates: Vec<String>,
}

impl Default for LogCluster {
    fn default() -> Self {
        LogCluster {
            support: 0.05,
            templates: Vec::new(),
        }
    }
}

impl LogParser for LogCluster {
    fn name(&self) -> &str {
        "LogCluster"
    }

    fn parse(&mut self, records: &[String]) -> Vec<usize> {
        let tokenized: Vec<Vec<String>> = records.iter().map(|r| tokenize_simple(r)).collect();
        // Document frequency of every word (counted once per log).
        let mut document_frequency: HashMap<&str, u64> = HashMap::new();
        for tokens in &tokenized {
            let mut seen: HashMap<&str, ()> = HashMap::new();
            for t in tokens {
                if seen.insert(t.as_str(), ()).is_none() {
                    *document_frequency.entry(t.as_str()).or_insert(0) += 1;
                }
            }
        }
        let min_support = (self.support * records.len() as f64).ceil().max(3.0) as u64;
        let mut interner = GroupInterner::new();
        let mut templates: HashMap<String, ()> = HashMap::new();
        let assignment = tokenized
            .iter()
            .map(|tokens| {
                let frequent: Vec<&str> = tokens
                    .iter()
                    .filter(|t| document_frequency[t.as_str()] >= min_support)
                    .map(|t| t.as_str())
                    .collect();
                let key = if frequent.is_empty() {
                    // No frequent word at all: fall back to the raw token sequence so the
                    // log forms its own (probably singleton) cluster.
                    format!("raw|{}", tokens.join(" "))
                } else {
                    format!("{}|{}", tokens.len(), frequent.join(" "))
                };
                templates.insert(frequent.join(" "), ());
                interner.intern(&key)
            })
            .collect();
        self.templates = templates.into_keys().filter(|t| !t.is_empty()).collect();
        assignment
    }

    fn templates(&self) -> Vec<String> {
        self.templates.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frequent_word_skeleton_clusters_variants_together() {
        let mut lc = LogCluster::default();
        let mut records: Vec<String> = (0..50)
            .map(|i| format!("fetch of key k{i} completed"))
            .collect();
        records.extend((0..50).map(|i| format!("fetch of key k{i} failed")));
        let groups = lc.parse(&records);
        assert_eq!(groups[0], groups[10]);
        assert_ne!(groups[0], groups[60]);
    }

    #[test]
    fn word_frequency_cannot_distinguish_reordered_messages_of_same_vocabulary() {
        // The known weakness the paper cites: messages sharing word distributions but
        // differing semantically are merged once the differing words are infrequent.
        let mut lc = LogCluster::default();
        let mut records: Vec<String> = (0..30)
            .map(|i| format!("node n{i} joined cluster"))
            .collect();
        records.extend((0..30).map(|i| format!("node n{i} left cluster")));
        let groups = lc.parse(&records);
        // "joined"/"left" are both frequent here, so the groups do separate…
        assert_ne!(groups[0], groups[30]);
        // …but rare differing words are lost: the two distinct singleton statements below
        // reduce to the same frequent-word skeleton and merge.
        let mut tricky: Vec<String> = (0..40).map(|i| format!("op on item {i} done")).collect();
        tricky.push("op read item 5 done".into());
        tricky.push("op write item 6 done".into());
        let tricky_groups = LogCluster::default().parse(&tricky);
        assert_eq!(tricky_groups[40], tricky_groups[41]);
    }

    #[test]
    fn logs_without_frequent_words_fall_back_to_exact_text() {
        let mut lc = LogCluster::default();
        let groups = lc.parse(&[
            "zzz solo alpha".into(),
            "qqq lone beta".into(),
            "zzz solo alpha".into(),
        ]);
        assert_eq!(groups[0], groups[2]);
        assert_ne!(groups[0], groups[1]);
    }
}
