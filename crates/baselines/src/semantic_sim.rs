//! Simulated semantic / LLM baselines (UniParser, LogPPT, LILAC).
//!
//! The paper uses these methods as accuracy-upper-bound / throughput-lower-bound
//! comparators: they reach near-perfect grouping accuracy but are 10²–10³× slower because
//! every log (or at least every novel template) requires a model inference. Shipping an
//! actual neural network or LLM is outside the scope of this reproduction, so the
//! simulation reproduces exactly that role (see `DESIGN.md` §3):
//!
//! * **Accuracy**: the simulated parser groups logs using a supplied ground-truth oracle
//!   (template labels produced by the dataset generator), optionally corrupted with a
//!   small error rate so the scores resemble the published numbers rather than being a
//!   perfect 1.0.
//! * **Cost**: each "inference" spends a configurable busy-wait budget. UniParser/LogPPT
//!   pay it for *every* log; LILAC maintains an adaptive parsing cache and only pays for
//!   logs whose template key is not yet cached, which is why it is markedly faster than
//!   the other two while keeping the same accuracy.

use crate::traits::{tokenize_simple, LogParser};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Which published method the simulation stands in for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SemanticKind {
    /// UniParser (custom deep-learning model, per-log inference).
    UniParser,
    /// LogPPT (prompt-tuned RoBERTa, per-log inference, slower).
    LogPpt,
    /// LILAC (LLM with adaptive parsing cache, per-new-template inference).
    Lilac,
}

impl SemanticKind {
    /// Display name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            SemanticKind::UniParser => "UniParser",
            SemanticKind::LogPpt => "LogPPT",
            SemanticKind::Lilac => "LILAC",
        }
    }

    /// Default per-inference cost used by the throughput experiments. The absolute values
    /// are not meaningful (they depend on the machine); the *ratios* to ByteBrain are what
    /// the figures need, and these defaults land each method 2–3 orders of magnitude
    /// below ByteBrain, as in Fig. 6.
    pub fn default_inference_cost(&self) -> Duration {
        match self {
            SemanticKind::UniParser => Duration::from_micros(400),
            SemanticKind::LogPpt => Duration::from_micros(800),
            SemanticKind::Lilac => Duration::from_micros(2_000),
        }
    }

    /// Error rate applied to the oracle so accuracy resembles the published numbers.
    pub fn default_error_rate(&self) -> f64 {
        match self {
            SemanticKind::UniParser => 0.01,
            SemanticKind::LogPpt => 0.05,
            SemanticKind::Lilac => 0.02,
        }
    }
}

/// A simulated semantic parser.
#[derive(Debug)]
pub struct SimulatedSemanticParser {
    kind: SemanticKind,
    /// Ground-truth labels for the records that will be parsed (the "oracle").
    oracle: Vec<usize>,
    /// Per-inference busy-wait cost.
    pub inference_cost: Duration,
    /// Fraction of logs whose label is deliberately corrupted.
    pub error_rate: f64,
    cache: HashMap<String, usize>,
    inferences: u64,
}

impl SimulatedSemanticParser {
    /// Create a simulation of `kind` with the ground-truth labels of the corpus it will
    /// parse.
    pub fn new(kind: SemanticKind, oracle: Vec<usize>) -> Self {
        SimulatedSemanticParser {
            kind,
            oracle,
            inference_cost: kind.default_inference_cost(),
            error_rate: kind.default_error_rate(),
            cache: HashMap::new(),
            inferences: 0,
        }
    }

    /// Number of simulated model inferences performed so far.
    pub fn inferences(&self) -> u64 {
        self.inferences
    }

    /// Override the per-inference cost (used to shorten test run times).
    pub fn with_inference_cost(mut self, cost: Duration) -> Self {
        self.inference_cost = cost;
        self
    }

    fn spend_inference(&mut self) {
        self.inferences += 1;
        if self.inference_cost.is_zero() {
            return;
        }
        // Busy-wait: sleeping would under-represent CPU cost at microsecond scales.
        let start = Instant::now();
        while start.elapsed() < self.inference_cost {
            std::hint::spin_loop();
        }
    }

    /// Cache key: the masked token skeleton of the log (what LILAC's adaptive parsing
    /// cache keys on).
    fn cache_key(record: &str) -> String {
        tokenize_simple(record).join(" ")
    }
}

impl LogParser for SimulatedSemanticParser {
    fn name(&self) -> &str {
        self.kind.name()
    }

    fn parse(&mut self, records: &[String]) -> Vec<usize> {
        assert_eq!(
            records.len(),
            self.oracle.len(),
            "the oracle must describe exactly the records being parsed"
        );
        // Error model: semantic parsers typically fail on a few *templates* (usually rare,
        // oddly-structured ones), not on random individual logs. Corrupt the smallest
        // ground-truth groups until roughly `error_rate` of the logs are affected; the
        // affected groups are split in two, which strict GA counts as fully wrong.
        let mut group_sizes: HashMap<usize, usize> = HashMap::new();
        for &label in &self.oracle {
            *group_sizes.entry(label).or_insert(0) += 1;
        }
        let mut by_size: Vec<(usize, usize)> = group_sizes.into_iter().collect();
        by_size.sort_by_key(|&(label, size)| (size, label));
        let budget = (self.error_rate * records.len() as f64).floor() as usize;
        let mut corrupted_groups: HashMap<usize, ()> = HashMap::new();
        let mut affected = 0usize;
        for (label, size) in by_size {
            if affected + size > budget {
                break;
            }
            affected += size;
            corrupted_groups.insert(label, ());
        }

        let mut out = Vec::with_capacity(records.len());
        for (idx, record) in records.iter().enumerate() {
            let truth = self.oracle[idx];
            let label = match self.kind {
                SemanticKind::Lilac => {
                    let key = Self::cache_key(record);
                    if let Some(&cached) = self.cache.get(&key) {
                        cached
                    } else {
                        self.spend_inference();
                        self.cache.insert(key, truth);
                        truth
                    }
                }
                _ => {
                    self.spend_inference();
                    truth
                }
            };
            let label = if corrupted_groups.contains_key(&truth) && idx % 2 == 0 {
                // Split the corrupted group: half of its logs land in a spurious group.
                usize::MAX - truth
            } else {
                label
            };
            out.push(label);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> (Vec<String>, Vec<usize>) {
        let mut records = Vec::new();
        let mut labels = Vec::new();
        for i in 0..50 {
            records.push(format!("alloc page {} for proc {}", i, i % 7));
            labels.push(0);
            records.push(format!("free page {} of proc {}", i, i % 7));
            labels.push(1);
        }
        (records, labels)
    }

    #[test]
    fn oracle_accuracy_is_near_perfect() {
        let (records, labels) = corpus();
        let mut parser = SimulatedSemanticParser::new(SemanticKind::UniParser, labels.clone())
            .with_inference_cost(Duration::ZERO);
        let predicted = parser.parse(&records);
        let agree = predicted
            .iter()
            .zip(&labels)
            .filter(|(p, t)| p == t)
            .count();
        assert!(agree as f64 / labels.len() as f64 > 0.95);
    }

    #[test]
    fn lilac_cache_limits_inference_count() {
        let (records, labels) = corpus();
        let mut lilac = SimulatedSemanticParser::new(SemanticKind::Lilac, labels.clone())
            .with_inference_cost(Duration::ZERO);
        lilac.parse(&records);
        // Two templates → far fewer inferences than logs (cache keyed on the masked
        // skeleton, which collapses the numeric variables).
        assert!(
            lilac.inferences() < 20,
            "inferences: {}",
            lilac.inferences()
        );

        let mut uniparser = SimulatedSemanticParser::new(SemanticKind::UniParser, labels)
            .with_inference_cost(Duration::ZERO);
        uniparser.parse(&records);
        assert_eq!(uniparser.inferences(), records.len() as u64);
    }

    #[test]
    fn inference_cost_slows_parsing_down() {
        let (records, labels) = corpus();
        let mut slow = SimulatedSemanticParser::new(SemanticKind::LogPpt, labels)
            .with_inference_cost(Duration::from_micros(50));
        let start = Instant::now();
        slow.parse(&records);
        assert!(start.elapsed() >= Duration::from_micros(50 * records.len() as u64 / 2));
    }

    #[test]
    #[should_panic(expected = "oracle")]
    fn mismatched_oracle_length_panics() {
        let mut parser = SimulatedSemanticParser::new(SemanticKind::UniParser, vec![0]);
        parser.parse(&["a".into(), "b".into()]);
    }

    #[test]
    fn names_match_the_paper() {
        assert_eq!(SemanticKind::UniParser.name(), "UniParser");
        assert_eq!(SemanticKind::LogPpt.name(), "LogPPT");
        assert_eq!(SemanticKind::Lilac.name(), "LILAC");
    }
}
