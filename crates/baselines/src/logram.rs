//! Logram (Dai et al., TSE 2020): n-gram dictionaries for variable identification. The
//! corpus's 2-gram and 3-gram frequencies are collected; a token is considered part of the
//! constant template when the n-grams it participates in are frequent, and a variable
//! otherwise. Logs sharing the resulting constant skeleton form a group.

use crate::traits::{tokenize_simple, GroupInterner, LogParser};
use std::collections::HashMap;

/// The Logram parser.
#[derive(Debug)]
pub struct Logram {
    /// Minimum frequency of a 2-gram for its tokens to be considered constant.
    pub bigram_threshold: u64,
    /// Minimum frequency of a 3-gram for its middle token to be considered constant.
    pub trigram_threshold: u64,
    templates: Vec<String>,
}

impl Default for Logram {
    fn default() -> Self {
        Logram {
            bigram_threshold: 4,
            trigram_threshold: 3,
            templates: Vec::new(),
        }
    }
}

impl LogParser for Logram {
    fn name(&self) -> &str {
        "Logram"
    }

    fn parse(&mut self, records: &[String]) -> Vec<usize> {
        let tokenized: Vec<Vec<String>> = records.iter().map(|r| tokenize_simple(r)).collect();
        // Build the n-gram dictionaries.
        let mut bigrams: HashMap<(&str, &str), u64> = HashMap::new();
        let mut trigrams: HashMap<(&str, &str, &str), u64> = HashMap::new();
        for tokens in &tokenized {
            for w in tokens.windows(2) {
                *bigrams.entry((w[0].as_str(), w[1].as_str())).or_insert(0) += 1;
            }
            for w in tokens.windows(3) {
                *trigrams
                    .entry((w[0].as_str(), w[1].as_str(), w[2].as_str()))
                    .or_insert(0) += 1;
            }
        }
        let mut interner = GroupInterner::new();
        let mut templates: HashMap<String, ()> = HashMap::new();
        let assignment = tokenized
            .iter()
            .map(|tokens| {
                let n = tokens.len();
                let template: Vec<&str> = (0..n)
                    .map(|i| {
                        let token = tokens[i].as_str();
                        if token == "<*>" {
                            return "<*>";
                        }
                        // Check the trigram centred on i when it exists, otherwise fall
                        // back to the bigrams the token participates in.
                        let constant = if i >= 1 && i + 1 < n {
                            trigrams
                                .get(&(tokens[i - 1].as_str(), token, tokens[i + 1].as_str()))
                                .copied()
                                .unwrap_or(0)
                                >= self.trigram_threshold
                        } else {
                            let left = if i >= 1 {
                                bigrams
                                    .get(&(tokens[i - 1].as_str(), token))
                                    .copied()
                                    .unwrap_or(0)
                            } else {
                                0
                            };
                            let right = if i + 1 < n {
                                bigrams
                                    .get(&(token, tokens[i + 1].as_str()))
                                    .copied()
                                    .unwrap_or(0)
                            } else {
                                0
                            };
                            left.max(right) >= self.bigram_threshold
                        };
                        if constant {
                            token
                        } else {
                            "<*>"
                        }
                    })
                    .collect();
                let rendered = template.join(" ");
                let key = format!("{n}|{rendered}");
                templates.insert(rendered, ());
                interner.intern(&key)
            })
            .collect();
        self.templates = templates.into_keys().collect();
        assignment
    }

    fn templates(&self) -> Vec<String> {
        self.templates.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frequent_ngrams_define_constants() {
        let mut logram = Logram::default();
        let records: Vec<String> = (0..30)
            .map(|i| format!("allocating buffer of size {} for stream s{}", 1024 + i, i))
            .collect();
        let groups = logram.parse(&records);
        assert!(groups.iter().all(|&g| g == groups[0]));
    }

    #[test]
    fn infrequent_statements_do_not_merge_with_frequent_ones() {
        let mut logram = Logram::default();
        let mut records: Vec<String> = (0..30)
            .map(|i| format!("allocating buffer of size {} for stream s{}", 1024 + i, i))
            .collect();
        records.push("unexpected checksum mismatch detected during scrub pass".into());
        let groups = logram.parse(&records);
        assert_ne!(groups[0], groups[30]);
    }

    #[test]
    fn assignment_covers_every_record() {
        let mut logram = Logram::default();
        let records: Vec<String> = vec!["a b c".into(), "d".into(), "".into()];
        assert_eq!(logram.parse(&records).len(), 3);
    }
}
