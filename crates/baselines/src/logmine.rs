//! LogMine (Hamooni et al., CIKM 2016): hierarchical clustering with a max-distance
//! threshold followed by pattern generation. This implementation performs the paper's
//! one-pass "friends-of-friends" clustering: a log joins the first cluster whose
//! representative is within the distance threshold, otherwise it starts a new cluster;
//! the per-cluster pattern is then produced by positional alignment (same-length logs)
//! with disagreeing positions wildcarded.

use crate::traits::{tokenize_simple, LogParser};

#[derive(Debug, Clone)]
struct MineCluster {
    representative: Vec<String>,
    template: Vec<String>,
    group_id: usize,
}

/// The LogMine parser.
#[derive(Debug)]
pub struct LogMine {
    /// Maximum normalized distance for joining a cluster (0 = identical, 1 = disjoint).
    pub max_distance: f64,
    clusters: Vec<MineCluster>,
    next_group: usize,
}

impl Default for LogMine {
    fn default() -> Self {
        LogMine {
            max_distance: 0.5,
            clusters: Vec::new(),
            next_group: 0,
        }
    }
}

/// Normalized token distance between two equal-length logs (fraction of differing
/// positions); logs of different lengths are at distance 1.
fn distance(a: &[String], b: &[String]) -> f64 {
    if a.len() != b.len() || a.is_empty() {
        return 1.0;
    }
    let differing = a.iter().zip(b).filter(|(x, y)| x != y).count();
    differing as f64 / a.len() as f64
}

impl LogMine {
    fn parse_one(&mut self, record: &str) -> usize {
        let tokens = tokenize_simple(record);
        for cluster in &mut self.clusters {
            if distance(&cluster.representative, &tokens) <= self.max_distance {
                for (t, token) in cluster.template.iter_mut().zip(&tokens) {
                    if t != token {
                        *t = "<*>".to_string();
                    }
                }
                return cluster.group_id;
            }
        }
        let group_id = self.next_group;
        self.next_group += 1;
        self.clusters.push(MineCluster {
            representative: tokens.clone(),
            template: tokens,
            group_id,
        });
        group_id
    }
}

impl LogParser for LogMine {
    fn name(&self) -> &str {
        "LogMine"
    }

    fn parse(&mut self, records: &[String]) -> Vec<usize> {
        records.iter().map(|r| self.parse_one(r)).collect()
    }

    fn templates(&self) -> Vec<String> {
        self.clusters.iter().map(|c| c.template.join(" ")).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_properties() {
        let a: Vec<String> = ["x", "y"].iter().map(|s| s.to_string()).collect();
        let b: Vec<String> = ["x", "z"].iter().map(|s| s.to_string()).collect();
        assert_eq!(distance(&a, &a), 0.0);
        assert_eq!(distance(&a, &b), 0.5);
        assert_eq!(distance(&a, &[]), 1.0);
    }

    #[test]
    fn close_logs_share_a_cluster() {
        let mut lm = LogMine::default();
        let groups = lm.parse(&[
            "volume vol1 mounted at /data read-write".into(),
            "volume vol2 mounted at /backup read-write".into(),
            "scheduler tick took 14 microseconds total".into(),
        ]);
        assert_eq!(groups[0], groups[1]);
        assert_ne!(groups[0], groups[2]);
    }

    #[test]
    fn templates_wildcard_differences() {
        let mut lm = LogMine::default();
        lm.parse(&[
            "volume vol1 mounted at /data read-write".into(),
            "volume vol2 mounted at /backup read-write".into(),
        ]);
        let templates = lm.templates();
        assert!(templates[0].starts_with("volume <*> mounted at"));
    }

    #[test]
    fn stricter_threshold_creates_more_clusters() {
        let records: Vec<String> = vec![
            "op read on table users ok".into(),
            "op write on table orders ok".into(),
            "op read on table events ok".into(),
        ];
        let loose = LogMine::default().parse(&records);
        let strict = LogMine {
            max_distance: 0.1,
            ..LogMine::default()
        }
        .parse(&records);
        let count = |v: &[usize]| v.iter().collect::<std::collections::HashSet<_>>().len();
        assert!(count(&strict) >= count(&loose));
    }
}
