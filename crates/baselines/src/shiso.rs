//! SHISO (Mizutani, SCC 2013): incremental mining of log formats with a similarity tree.
//! Each new log is compared against the format nodes of a growing tree; if the character-
//! class similarity with some node exceeds a threshold the log joins it (refining the
//! format), otherwise a new child node is created under the closest node.

use crate::traits::{tokenize_simple, LogParser};

#[derive(Debug, Clone)]
struct FormatNode {
    format: Vec<String>,
    group_id: usize,
    children: Vec<usize>,
}

/// The SHISO parser.
#[derive(Debug)]
pub struct Shiso {
    /// Similarity threshold for joining an existing format node.
    pub threshold: f64,
    /// Maximum children per node before new formats are attached to the best child.
    pub max_children: usize,
    nodes: Vec<FormatNode>,
    roots: Vec<usize>,
    next_group: usize,
}

impl Default for Shiso {
    fn default() -> Self {
        Shiso {
            threshold: 0.6,
            max_children: 4,
            nodes: Vec::new(),
            roots: Vec::new(),
            next_group: 0,
        }
    }
}

/// Character-class vector of a token: counts of (lowercase, uppercase, digit, other).
fn char_classes(token: &str) -> [f64; 4] {
    let mut v = [0.0f64; 4];
    for c in token.chars() {
        if c.is_ascii_lowercase() {
            v[0] += 1.0;
        } else if c.is_ascii_uppercase() {
            v[1] += 1.0;
        } else if c.is_ascii_digit() {
            v[2] += 1.0;
        } else {
            v[3] += 1.0;
        }
    }
    v
}

/// SHISO's token similarity: 1 − normalized Euclidean distance between class vectors,
/// with an exact-match bonus.
fn token_similarity(a: &str, b: &str) -> f64 {
    if a == b {
        return 1.0;
    }
    let ca = char_classes(a);
    let cb = char_classes(b);
    let dist: f64 = ca
        .iter()
        .zip(&cb)
        .map(|(x, y)| (x - y).powi(2))
        .sum::<f64>()
        .sqrt();
    let scale = (a.len() + b.len()) as f64;
    (1.0 - dist / scale.max(1.0)).max(0.0) * 0.5
}

fn format_similarity(format: &[String], tokens: &[String]) -> f64 {
    if format.len() != tokens.len() || format.is_empty() {
        return 0.0;
    }
    let total: f64 = format
        .iter()
        .zip(tokens)
        .map(|(f, t)| {
            if f == "<*>" {
                0.5
            } else {
                token_similarity(f, t)
            }
        })
        .sum();
    total / format.len() as f64
}

impl Shiso {
    fn parse_one(&mut self, record: &str) -> usize {
        let tokens = tokenize_simple(record);
        // Search the whole tree (breadth-first over roots then children) for the most
        // similar node; the tree mostly bounds the search in the original algorithm.
        let mut best: Option<(usize, f64)> = None;
        let mut stack: Vec<usize> = self.roots.clone();
        while let Some(idx) = stack.pop() {
            let sim = format_similarity(&self.nodes[idx].format, &tokens);
            if best.map(|(_, s)| sim > s).unwrap_or(true) {
                best = Some((idx, sim));
            }
            stack.extend(&self.nodes[idx].children);
        }
        match best {
            Some((idx, sim)) if sim >= self.threshold => {
                let node = &mut self.nodes[idx];
                for (f, t) in node.format.iter_mut().zip(&tokens) {
                    if f != t {
                        *f = "<*>".to_string();
                    }
                }
                node.group_id
            }
            best => {
                let group_id = self.next_group;
                self.next_group += 1;
                let new_idx = self.nodes.len();
                self.nodes.push(FormatNode {
                    format: tokens,
                    group_id,
                    children: Vec::new(),
                });
                match best {
                    Some((parent, _)) if self.nodes[parent].children.len() < self.max_children => {
                        self.nodes[parent].children.push(new_idx);
                    }
                    _ => self.roots.push(new_idx),
                }
                group_id
            }
        }
    }
}

impl LogParser for Shiso {
    fn name(&self) -> &str {
        "SHISO"
    }

    fn parse(&mut self, records: &[String]) -> Vec<usize> {
        records.iter().map(|r| self.parse_one(r)).collect()
    }

    fn templates(&self) -> Vec<String> {
        self.nodes.iter().map(|n| n.format.join(" ")).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_tokens_have_similarity_one() {
        assert_eq!(token_similarity("abc", "abc"), 1.0);
        assert!(token_similarity("abc", "abd") < 1.0);
    }

    #[test]
    fn same_shape_logs_group_together() {
        let mut shiso = Shiso::default();
        let groups = shiso.parse(&[
            "started process 4521 on core 2".into(),
            "started process 9987 on core 1".into(),
            "filesystem check completed cleanly today ok".into(),
        ]);
        assert_eq!(groups[0], groups[1]);
        assert_ne!(groups[0], groups[2]);
    }

    #[test]
    fn incremental_parsing_is_stateful() {
        let mut shiso = Shiso::default();
        let a = shiso.parse(&["mount /dev/sda1 on /data succeeded".into()]);
        let b = shiso.parse(&["mount /dev/sdb2 on /backup succeeded".into()]);
        assert_eq!(a[0], b[0]);
    }

    #[test]
    fn different_lengths_never_group() {
        let mut shiso = Shiso::default();
        let groups = shiso.parse(&["a b c".into(), "a b".into()]);
        assert_ne!(groups[0], groups[1]);
    }
}
