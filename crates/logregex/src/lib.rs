//! `logregex` — a small, dependency-free regular-expression engine used by the
//! ByteBrain-LogParser reproduction.
//!
//! The paper (§4.1.1) tokenizes logs with regular expressions and explicitly forbids
//! non-linear features such as look-around so that matching stays `O(n)`. This crate
//! implements exactly that subset as a Thompson-NFA / Pike-VM engine:
//!
//! * literals, `.`, escapes (`\d`, `\w`, `\s`, `\D`, `\W`, `\S`, `\n`, `\t`, `\r`, `\\`, …)
//! * character classes `[...]` with ranges and negation
//! * grouping `( ... )` and non-capturing groups `(?: ... )`
//! * alternation `|`
//! * quantifiers `*`, `+`, `?`, `{m}`, `{m,}`, `{m,n}`
//! * anchors `^` and `$`
//!
//! Look-around, back-references and other exponential-worst-case features are rejected at
//! parse time, mirroring the restriction the paper places on user-supplied patterns.
//!
//! # Example
//!
//! ```
//! use logregex::Regex;
//!
//! let re = Regex::new(r"\d+\.\d+\.\d+\.\d+").unwrap();
//! assert!(re.is_match("connect from 10.2.3.4 ok"));
//! let masked = re.replace_all("connect from 10.2.3.4 ok", "<ip>");
//! assert_eq!(masked, "connect from <ip> ok");
//! ```

mod ast;
mod compile;
mod error;
mod matcher;
mod parser;

pub use compile::{BytePresence, ByteSet, Program, StartBytes};
pub use error::RegexError;

/// A compiled regular expression.
///
/// Construction parses and compiles the pattern once; matching is then linear in the
/// input length (Pike-VM simulation), with no pathological backtracking.
#[derive(Debug, Clone)]
pub struct Regex {
    pattern: String,
    program: Program,
}

/// A single match: byte offsets `[start, end)` into the haystack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Match {
    /// Byte offset of the first byte of the match.
    pub start: usize,
    /// Byte offset one past the last byte of the match.
    pub end: usize,
}

impl Match {
    /// Length of the match in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the match is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// The matched slice of `haystack`.
    pub fn as_str<'h>(&self, haystack: &'h str) -> &'h str {
        &haystack[self.start..self.end]
    }
}

impl Regex {
    /// Parse and compile `pattern`.
    ///
    /// Returns [`RegexError`] for syntax errors or for constructs outside the supported
    /// linear-time subset.
    pub fn new(pattern: &str) -> Result<Self, RegexError> {
        let ast = parser::parse(pattern)?;
        let program = compile::compile(&ast);
        Ok(Regex {
            pattern: pattern.to_string(),
            program,
        })
    }

    /// The original pattern string.
    pub fn as_str(&self) -> &str {
        &self.pattern
    }

    /// True when the pattern matches anywhere in `haystack`.
    pub fn is_match(&self, haystack: &str) -> bool {
        self.find(haystack).is_some()
    }

    /// True when the pattern matches the *entire* haystack.
    pub fn is_full_match(&self, haystack: &str) -> bool {
        match self.find_at(haystack, 0) {
            Some(m) => m.start == 0 && m.end == haystack.len(),
            None => false,
        }
    }

    /// Leftmost-longest match in `haystack`, if any.
    pub fn find(&self, haystack: &str) -> Option<Match> {
        self.find_at(haystack, 0)
    }

    /// Leftmost-longest match starting at or after byte offset `start`.
    pub fn find_at(&self, haystack: &str, start: usize) -> Option<Match> {
        matcher::find_at(&self.program, haystack.as_bytes(), start, haystack.len())
    }

    /// Iterator over all non-overlapping matches, left to right.
    pub fn find_iter<'r, 'h>(&'r self, haystack: &'h str) -> Matches<'r, 'h> {
        self.find_iter_at(haystack, 0)
    }

    /// Like [`Regex::find_iter`], but starting from byte offset `start`. Hot
    /// paths that already located the first match use this to resume scanning
    /// without re-walking the prefix.
    pub fn find_iter_at<'r, 'h>(&'r self, haystack: &'h str, start: usize) -> Matches<'r, 'h> {
        Matches {
            regex: self,
            haystack,
            pos: start,
        }
    }

    /// True when `presence` (a one-pass byte bitmap of some haystack, see
    /// [`BytePresence::scan`]) does not rule out a match of this pattern.
    /// `false` is definitive — the pattern cannot match that haystack; `true`
    /// means the full VM must decide. Lets callers probing many patterns
    /// against the same line (the masking pipeline) skip most of them in O(1).
    #[inline]
    pub fn may_match(&self, presence: &BytePresence) -> bool {
        self.program.may_match(presence)
    }

    /// Replace every non-overlapping match with `replacement` (a literal string).
    pub fn replace_all(&self, haystack: &str, replacement: &str) -> String {
        let mut out = String::with_capacity(haystack.len());
        self.replace_all_into(haystack, replacement, &mut out);
        out
    }

    /// Like [`Regex::replace_all`], but appends into a caller-provided buffer so hot
    /// paths (the streaming ingestion fast path) can reuse allocations across records.
    /// The buffer is *not* cleared first.
    pub fn replace_all_into(&self, haystack: &str, replacement: &str, out: &mut String) {
        let mut last = 0usize;
        for m in self.find_iter(haystack) {
            out.push_str(&haystack[last..m.start]);
            out.push_str(replacement);
            last = m.end;
        }
        out.push_str(&haystack[last..]);
    }

    /// Split `haystack` on every match, returning the (possibly empty) fragments between
    /// matches. Mirrors the behaviour the preprocessing pipeline needs for tokenization.
    pub fn split<'h>(&self, haystack: &'h str) -> Vec<&'h str> {
        let mut out = Vec::new();
        let mut last = 0usize;
        for m in self.find_iter(haystack) {
            out.push(&haystack[last..m.start]);
            last = m.end;
        }
        out.push(&haystack[last..]);
        out
    }

    /// Number of NFA instructions in the compiled program (useful for testing and for
    /// enforcing complexity budgets on user-supplied patterns).
    pub fn program_len(&self) -> usize {
        self.program.insts.len()
    }

    /// The compiled NFA program, exposing the first-byte prefilter for
    /// introspection (diagnostics and tests).
    pub fn program(&self) -> &Program {
        &self.program
    }
}

/// Parse `pattern` and render it back in canonical syntax.
///
/// The canonical form is stable — `canonicalize(canonicalize(p)?) == canonicalize(p)` —
/// and behaviour-preserving: the canonical pattern compiles to a program that matches
/// exactly what `pattern` matches. Character classes come back normalized (sorted,
/// merged ranges), groups come back non-capturing, and quantifiers come back in brace
/// form; the seeded fuzz suite exercises the round-trip on arbitrary inputs.
pub fn canonicalize(pattern: &str) -> Result<String, RegexError> {
    Ok(parser::parse(pattern)?.to_pattern())
}

/// Iterator returned by [`Regex::find_iter`].
pub struct Matches<'r, 'h> {
    regex: &'r Regex,
    haystack: &'h str,
    pos: usize,
}

impl<'r, 'h> Iterator for Matches<'r, 'h> {
    type Item = Match;

    fn next(&mut self) -> Option<Match> {
        if self.pos > self.haystack.len() {
            return None;
        }
        let m = self.regex.find_at(self.haystack, self.pos)?;
        // Advance past the match; for empty matches step one byte forward so the
        // iterator always terminates.
        self.pos = if m.end == m.start { m.end + 1 } else { m.end };
        Some(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_match() {
        let re = Regex::new("error").unwrap();
        assert!(re.is_match("an error occurred"));
        assert!(!re.is_match("all good"));
        let m = re.find("an error occurred").unwrap();
        assert_eq!(m.as_str("an error occurred"), "error");
    }

    #[test]
    fn digits_and_plus() {
        let re = Regex::new(r"\d+").unwrap();
        let m = re.find("abc 12345 def").unwrap();
        assert_eq!(m.as_str("abc 12345 def"), "12345");
    }

    #[test]
    fn ip_address_pattern() {
        let re = Regex::new(r"\d{1,3}\.\d{1,3}\.\d{1,3}\.\d{1,3}").unwrap();
        assert!(re.is_match("src=192.168.0.1 dst=10.0.0.2"));
        assert_eq!(
            re.replace_all("src=192.168.0.1 dst=10.0.0.2", "<ip>"),
            "src=<ip> dst=<ip>"
        );
    }

    #[test]
    fn alternation_and_groups() {
        let re = Regex::new("(cat|dog)s?").unwrap();
        assert!(re.is_match("three dogs"));
        assert!(re.is_match("one cat"));
        assert!(!re.is_match("a bird"));
    }

    #[test]
    fn char_class() {
        let re = Regex::new("[a-f0-9]+").unwrap();
        let m = re.find("zz=deadbeef42;").unwrap();
        assert_eq!(m.as_str("zz=deadbeef42;"), "deadbeef42");
        assert_eq!(m.start, 3);
        // Leftmost semantics: the earliest position in the class wins even if a longer
        // match exists later in the haystack.
        let m2 = re.find("id=deadbeef42;").unwrap();
        assert_eq!(m2.as_str("id=deadbeef42;"), "d");
    }

    #[test]
    fn negated_char_class() {
        let re = Regex::new("[^0-9]+").unwrap();
        let m = re.find("abc123").unwrap();
        assert_eq!(m.as_str("abc123"), "abc");
    }

    #[test]
    fn anchors() {
        let re = Regex::new("^error$").unwrap();
        assert!(re.is_match("error"));
        assert!(!re.is_match("an error"));
        assert!(!re.is_match("error!"));
    }

    #[test]
    fn bounded_repetition() {
        let re = Regex::new("a{2,3}").unwrap();
        assert!(!re.is_match("a"));
        assert!(re.is_match("aa"));
        let m = re.find("aaaa").unwrap();
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn exact_repetition() {
        let re = Regex::new("[0-9]{4}").unwrap();
        assert!(re.is_match("year 2025"));
        assert!(!re.is_match("day 12"));
    }

    #[test]
    fn optional() {
        let re = Regex::new("colou?r").unwrap();
        assert!(re.is_match("color"));
        assert!(re.is_match("colour"));
    }

    #[test]
    fn dot_matches_any_but_newline() {
        let re = Regex::new("a.c").unwrap();
        assert!(re.is_match("abc"));
        assert!(re.is_match("axc"));
        assert!(!re.is_match("a\nc"));
    }

    #[test]
    fn split_on_delimiters() {
        let re = Regex::new(r"[\s,;]+").unwrap();
        let parts = re.split("a, b;  c");
        assert_eq!(parts, vec!["a", "b", "c"]);
    }

    #[test]
    fn replace_all_non_overlapping() {
        let re = Regex::new(r"\d+").unwrap();
        assert_eq!(re.replace_all("a1b22c333", "*"), "a*b*c*");
    }

    #[test]
    fn full_match() {
        let re =
            Regex::new(r"[0-9a-f]{8}-[0-9a-f]{4}-[0-9a-f]{4}-[0-9a-f]{4}-[0-9a-f]{12}").unwrap();
        assert!(re.is_full_match("123e4567-e89b-12d3-a456-426614174000"));
        assert!(!re.is_full_match("x123e4567-e89b-12d3-a456-426614174000"));
    }

    #[test]
    fn empty_pattern_matches_empty() {
        let re = Regex::new("").unwrap();
        assert!(re.is_match("anything"));
        let m = re.find("abc").unwrap();
        assert!(m.is_empty());
    }

    #[test]
    fn escaped_metacharacters() {
        let re = Regex::new(r"\[\d+\]").unwrap();
        assert!(re.is_match("pid[1234] started"));
        assert_eq!(
            re.replace_all("pid[1234] started", "<pid>"),
            "pid<pid> started"
        );
    }

    #[test]
    fn lookaround_is_rejected() {
        assert!(Regex::new(r"(?=abc)").is_err());
        assert!(Regex::new(r"(?!abc)").is_err());
        assert!(Regex::new(r"(?<=a)b").is_err());
    }

    #[test]
    fn backreference_is_rejected() {
        assert!(Regex::new(r"(a)\1").is_err());
    }

    #[test]
    fn unbalanced_parens_rejected() {
        assert!(Regex::new("(abc").is_err());
        assert!(Regex::new("abc)").is_err());
        assert!(Regex::new("[abc").is_err());
    }

    #[test]
    fn find_iter_positions() {
        let re = Regex::new("ab").unwrap();
        let ms: Vec<Match> = re.find_iter("abxabxab").collect();
        assert_eq!(ms.len(), 3);
        assert_eq!(ms[0].start, 0);
        assert_eq!(ms[1].start, 3);
        assert_eq!(ms[2].start, 6);
    }

    #[test]
    fn word_class() {
        let re = Regex::new(r"\w+").unwrap();
        let parts: Vec<_> = re
            .find_iter("hello, world_2!")
            .map(|m| m.as_str("hello, world_2!"))
            .collect();
        assert_eq!(parts, vec!["hello", "world_2"]);
    }

    #[test]
    fn timestamp_pattern() {
        let re = Regex::new(r"\d{4}-\d{2}-\d{2} \d{2}:\d{2}:\d{2}").unwrap();
        let s = "2025-01-02 13:14:15 INFO started";
        assert_eq!(re.replace_all(s, "<ts>"), "<ts> INFO started");
    }

    #[test]
    fn leftmost_longest_alternation() {
        // Leftmost-longest semantics: at the same start, the longer alternative wins.
        let re = Regex::new("(foo|foobar)").unwrap();
        let m = re.find("xfoobar").unwrap();
        assert_eq!(m.as_str("xfoobar"), "foobar");
    }

    #[test]
    fn unicode_passthrough_bytes() {
        // Non-ASCII input: matching operates on bytes; literal ASCII still matches.
        let re = Regex::new("lock").unwrap();
        assert!(re.is_match("获取 lock 成功"));
    }
}
