//! Error type for pattern parsing.

use std::fmt;

/// Error produced when a pattern cannot be parsed or uses an unsupported construct.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegexError {
    message: String,
    /// Byte offset in the pattern where the error was detected, when known.
    position: Option<usize>,
}

impl RegexError {
    pub(crate) fn new(message: impl Into<String>, position: Option<usize>) -> Self {
        RegexError {
            message: message.into(),
            position,
        }
    }

    /// Human-readable description of the problem.
    pub fn message(&self) -> &str {
        &self.message
    }

    /// Byte offset in the pattern where the error was detected, when known.
    pub fn position(&self) -> Option<usize> {
        self.position
    }
}

impl fmt::Display for RegexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.position {
            Some(pos) => write!(f, "regex parse error at byte {}: {}", pos, self.message),
            None => write!(f, "regex parse error: {}", self.message),
        }
    }
}

impl std::error::Error for RegexError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_with_position() {
        let e = RegexError::new("unexpected ')'", Some(3));
        assert!(e.to_string().contains("byte 3"));
        assert!(e.to_string().contains("unexpected ')'"));
    }

    #[test]
    fn display_without_position() {
        let e = RegexError::new("empty repetition", None);
        assert_eq!(e.position(), None);
        assert!(e.to_string().contains("empty repetition"));
    }
}
