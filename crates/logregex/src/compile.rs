//! Compilation of the parsed [`Ast`](crate::ast::Ast) into a Thompson-NFA program.

use crate::ast::{Ast, ByteClass};

/// One NFA instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Inst {
    /// Consume one byte if it is a member of the class, then go to the next instruction.
    Byte(ByteClass),
    /// Split execution into two threads (preference order: `prefer` first).
    Split { prefer: usize, other: usize },
    /// Unconditional jump.
    Jump(usize),
    /// Succeed only at the start of the haystack.
    AssertStart,
    /// Succeed only at the end of the haystack.
    AssertEnd,
    /// Accept the match.
    Match,
}

/// A compiled NFA program: a flat instruction list executed by the Pike VM.
#[derive(Debug, Clone)]
pub struct Program {
    pub insts: Vec<Inst>,
    /// First-byte prefilter: the set of bytes that can begin a match. `None`
    /// when the pattern can match the empty string (a match can then start at
    /// *any* position, including end-of-haystack), which disables the filter.
    /// The Pike VM uses this to skip seeding start threads at positions that
    /// provably cannot begin a match — on log-masking workloads (short digit
    /// or hex-anchored patterns over mostly-alphabetic lines) this removes the
    /// large majority of per-byte thread-seeding work.
    pub start_bytes: Option<StartBytes>,
    /// Required-byte filter: every match must contain at least one byte from
    /// *each* of these sets. Derived from the mandatory (non-optional) classes
    /// of the pattern; empty for empty-matchable patterns. Callers that scan a
    /// haystack once into a [`BytePresence`] bitmap can reject whole patterns
    /// in O(1) via [`Program::may_match`] — e.g. a line with no `-` can never
    /// match a UUID or ISO-timestamp rule, so the VM never runs at all.
    pub required_bytes: Vec<ByteSet>,
}

impl Program {
    /// True when `presence` (the set of bytes occurring in a haystack) does not
    /// rule out a match. `false` means the pattern provably cannot match any
    /// haystack with exactly those bytes; `true` means "maybe" — the VM decides.
    #[inline]
    pub fn may_match(&self, presence: &BytePresence) -> bool {
        self.required_bytes
            .iter()
            .all(|set| set.intersects(presence))
    }
}

/// A set of byte values stored as a 256-bit bitmap.
#[derive(Clone, PartialEq, Eq)]
pub struct ByteSet([u64; 4]);

impl ByteSet {
    fn empty() -> Self {
        ByteSet([0; 4])
    }

    fn insert(&mut self, byte: u8) {
        self.0[(byte >> 6) as usize] |= 1u64 << (byte & 63);
    }

    fn union_with(&mut self, other: &ByteSet) {
        for (a, b) in self.0.iter_mut().zip(other.0.iter()) {
            *a |= b;
        }
    }

    fn from_class(class: &ByteClass) -> Self {
        let mut set = ByteSet::empty();
        for byte in 0..=255u8 {
            if class.contains(byte) {
                set.insert(byte);
            }
        }
        set
    }

    /// True when a byte from this set occurs in the scanned haystack.
    #[inline]
    pub fn intersects(&self, presence: &BytePresence) -> bool {
        self.0
            .iter()
            .zip(presence.0.iter())
            .any(|(a, b)| a & b != 0)
    }

    /// Number of member bytes.
    pub fn len(&self) -> usize {
        self.0.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True when no byte is a member.
    pub fn is_empty(&self) -> bool {
        self.0.iter().all(|&w| w == 0)
    }
}

impl std::fmt::Debug for ByteSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ByteSet({} bytes)", self.len())
    }
}

/// The set of distinct byte values occurring in a haystack, scanned once and
/// then shared across every pattern probed against that haystack.
#[derive(Clone)]
pub struct BytePresence([u64; 4]);

impl BytePresence {
    /// Scan `bytes` into a presence bitmap (one pass, no allocation).
    pub fn scan(bytes: &[u8]) -> Self {
        let mut words = [0u64; 4];
        for &b in bytes {
            words[(b >> 6) as usize] |= 1u64 << (b & 63);
        }
        BytePresence(words)
    }
}

/// 256-entry membership table of the bytes a match can start with.
#[derive(Clone)]
pub struct StartBytes([bool; 256]);

impl StartBytes {
    /// True when a match may begin with `byte`.
    #[inline]
    pub fn contains(&self, byte: u8) -> bool {
        self.0[byte as usize]
    }

    /// Number of member bytes (diagnostics/tests).
    pub fn len(&self) -> usize {
        self.0.iter().filter(|&&b| b).count()
    }

    /// True when no byte can start a match (the pattern is unmatchable on any
    /// non-empty position set — e.g. an alternation of empty-class patterns).
    pub fn is_empty(&self) -> bool {
        !self.0.iter().any(|&b| b)
    }
}

impl std::fmt::Debug for StartBytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "StartBytes({} bytes)", self.len())
    }
}

/// Compile `ast` into a [`Program`] ending in [`Inst::Match`].
pub fn compile(ast: &Ast) -> Program {
    let mut c = Compiler { insts: Vec::new() };
    c.emit_ast(ast);
    c.insts.push(Inst::Match);
    let start_bytes = compute_start_bytes(&c.insts);
    let required_bytes = compute_required_bytes(ast);
    Program {
        insts: c.insts,
        start_bytes,
        required_bytes,
    }
}

/// Collect byte sets such that every match of `ast` must contain at least one
/// byte from each set, deduplicated and ordered smallest-first (the cheapest
/// filters reject earliest). Capped at four sets — beyond that the incremental
/// rejection power is not worth the per-probe intersection cost.
fn compute_required_bytes(ast: &Ast) -> Vec<ByteSet> {
    let mut sets = Vec::new();
    collect_required(ast, &mut sets);
    sets.sort_by_key(ByteSet::len);
    sets.dedup();
    sets.truncate(4);
    sets
}

fn collect_required(ast: &Ast, out: &mut Vec<ByteSet>) {
    match ast {
        Ast::Empty | Ast::StartAnchor | Ast::EndAnchor => {}
        Ast::Class(class) => {
            let set = ByteSet::from_class(class);
            // An empty class makes the node unmatchable; recording the empty
            // set would mark the whole pattern as never-matching, which is
            // correct but surprising — leave rejection to the VM instead.
            if !set.is_empty() {
                out.push(set);
            }
        }
        Ast::Concat(items) => {
            for item in items {
                collect_required(item, out);
            }
        }
        Ast::Alternate(branches) => {
            // A match takes exactly one branch. If every branch has at least
            // one required set, the union of one set per branch is required
            // for the alternation as a whole.
            let mut union = ByteSet::empty();
            let mut every_branch_requires = true;
            for branch in branches {
                let mut branch_sets = Vec::new();
                collect_required(branch, &mut branch_sets);
                match branch_sets.iter().min_by_key(|s| s.len()) {
                    Some(smallest) => union.union_with(smallest),
                    None => {
                        // A branch with no requirement (e.g. empty-matchable)
                        // means the alternation as a whole requires nothing.
                        every_branch_requires = false;
                        break;
                    }
                }
            }
            if every_branch_requires {
                out.push(union);
            }
        }
        Ast::Repeat { node, min, .. } => {
            if *min >= 1 {
                collect_required(node, out);
            }
        }
    }
}

/// Epsilon-closure walk from pc 0 collecting every byte class a match attempt
/// can consume first. Returns `None` when [`Inst::Match`] is reachable without
/// consuming a byte (the pattern matches the empty string, so no position can
/// be skipped). Anchors are traversed conservatively: an `AssertStart` only
/// *restricts* where its successors apply, so including their first bytes keeps
/// the filter sound; an `AssertEnd` reaching `Match` means an empty match at
/// end-of-haystack, which also disables the filter.
fn compute_start_bytes(insts: &[Inst]) -> Option<StartBytes> {
    let mut set = [false; 256];
    let mut seen = vec![false; insts.len()];
    let mut stack = vec![0usize];
    while let Some(pc) = stack.pop() {
        if seen[pc] {
            continue;
        }
        seen[pc] = true;
        match &insts[pc] {
            Inst::Jump(target) => stack.push(*target),
            Inst::Split { prefer, other } => {
                stack.push(*prefer);
                stack.push(*other);
            }
            Inst::AssertStart | Inst::AssertEnd => stack.push(pc + 1),
            Inst::Byte(class) => {
                for byte in 0..=255u8 {
                    if class.contains(byte) {
                        set[byte as usize] = true;
                    }
                }
            }
            Inst::Match => return None,
        }
    }
    Some(StartBytes(set))
}

struct Compiler {
    insts: Vec<Inst>,
}

impl Compiler {
    fn next_pc(&self) -> usize {
        self.insts.len()
    }

    fn emit_ast(&mut self, ast: &Ast) {
        match ast {
            Ast::Empty => {}
            Ast::Class(class) => {
                self.insts.push(Inst::Byte(class.clone()));
            }
            Ast::Concat(items) => {
                for item in items {
                    self.emit_ast(item);
                }
            }
            Ast::Alternate(branches) => self.emit_alternation(branches),
            Ast::Repeat { node, min, max } => self.emit_repeat(node, *min, *max),
            Ast::StartAnchor => self.insts.push(Inst::AssertStart),
            Ast::EndAnchor => self.insts.push(Inst::AssertEnd),
        }
    }

    fn emit_alternation(&mut self, branches: &[Ast]) {
        debug_assert!(branches.len() >= 2);
        // Chain of splits: each split prefers the earlier branch, giving leftmost-biased
        // thread priority (final match selection is longest-at-leftmost, see matcher).
        let mut jump_patches = Vec::new();
        for (i, branch) in branches.iter().enumerate() {
            if i + 1 < branches.len() {
                let split_pc = self.next_pc();
                self.insts.push(Inst::Split {
                    prefer: 0,
                    other: 0,
                });
                let branch_start = self.next_pc();
                self.emit_ast(branch);
                let jump_pc = self.next_pc();
                self.insts.push(Inst::Jump(0));
                jump_patches.push(jump_pc);
                let next_branch = self.next_pc();
                self.insts[split_pc] = Inst::Split {
                    prefer: branch_start,
                    other: next_branch,
                };
            } else {
                self.emit_ast(branch);
            }
        }
        let end = self.next_pc();
        for pc in jump_patches {
            self.insts[pc] = Inst::Jump(end);
        }
    }

    fn emit_repeat(&mut self, node: &Ast, min: u32, max: Option<u32>) {
        // Mandatory prefix: `min` copies.
        for _ in 0..min {
            self.emit_ast(node);
        }
        match max {
            None => {
                // Kleene star over the remaining repetitions: loop with greedy preference.
                let split_pc = self.next_pc();
                self.insts.push(Inst::Split {
                    prefer: 0,
                    other: 0,
                });
                let body_start = self.next_pc();
                self.emit_ast(node);
                self.insts.push(Inst::Jump(split_pc));
                let after = self.next_pc();
                self.insts[split_pc] = Inst::Split {
                    prefer: body_start,
                    other: after,
                };
            }
            Some(max) => {
                // `max - min` optional copies, each guarded by a greedy split.
                let optional = max.saturating_sub(min);
                let mut split_pcs = Vec::with_capacity(optional as usize);
                for _ in 0..optional {
                    let split_pc = self.next_pc();
                    self.insts.push(Inst::Split {
                        prefer: 0,
                        other: 0,
                    });
                    split_pcs.push(split_pc);
                    let body_start = self.next_pc();
                    self.emit_ast(node);
                    let body_start_copy = body_start;
                    let _ = body_start_copy;
                    self.insts[split_pc] = Inst::Split {
                        prefer: body_start,
                        other: 0, // patched below to point past the whole optional chain
                    };
                }
                let after = self.next_pc();
                for pc in split_pcs {
                    if let Inst::Split { prefer, .. } = self.insts[pc] {
                        self.insts[pc] = Inst::Split {
                            prefer,
                            other: after,
                        };
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn program(pattern: &str) -> Program {
        compile(&parse(pattern).expect("parse"))
    }

    #[test]
    fn literal_compiles_to_bytes_plus_match() {
        let p = program("abc");
        assert_eq!(p.insts.len(), 4);
        assert!(matches!(p.insts[3], Inst::Match));
    }

    #[test]
    fn star_has_split_and_jump() {
        let p = program("a*");
        assert!(p.insts.iter().any(|i| matches!(i, Inst::Split { .. })));
        assert!(p.insts.iter().any(|i| matches!(i, Inst::Jump(_))));
    }

    #[test]
    fn bounded_repeat_expands() {
        let p3 = program("a{3}");
        let p1 = program("a");
        assert!(p3.insts.len() > p1.insts.len());
    }

    #[test]
    fn alternation_split_targets_are_in_bounds() {
        let p = program("(foo|bar|baz)+");
        for inst in &p.insts {
            match inst {
                Inst::Split { prefer, other } => {
                    assert!(*prefer < p.insts.len());
                    assert!(*other < p.insts.len());
                }
                Inst::Jump(t) => assert!(*t < p.insts.len()),
                _ => {}
            }
        }
    }

    #[test]
    fn anchors_compile_to_asserts() {
        let p = program("^a$");
        assert!(matches!(p.insts[0], Inst::AssertStart));
        assert!(matches!(p.insts[2], Inst::AssertEnd));
    }
}
