//! Compilation of the parsed [`Ast`](crate::ast::Ast) into a Thompson-NFA program.

use crate::ast::{Ast, ByteClass};

/// One NFA instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Inst {
    /// Consume one byte if it is a member of the class, then go to the next instruction.
    Byte(ByteClass),
    /// Split execution into two threads (preference order: `prefer` first).
    Split { prefer: usize, other: usize },
    /// Unconditional jump.
    Jump(usize),
    /// Succeed only at the start of the haystack.
    AssertStart,
    /// Succeed only at the end of the haystack.
    AssertEnd,
    /// Accept the match.
    Match,
}

/// A compiled NFA program: a flat instruction list executed by the Pike VM.
#[derive(Debug, Clone)]
pub struct Program {
    pub insts: Vec<Inst>,
}

/// Compile `ast` into a [`Program`] ending in [`Inst::Match`].
pub fn compile(ast: &Ast) -> Program {
    let mut c = Compiler { insts: Vec::new() };
    c.emit_ast(ast);
    c.insts.push(Inst::Match);
    Program { insts: c.insts }
}

struct Compiler {
    insts: Vec<Inst>,
}

impl Compiler {
    fn next_pc(&self) -> usize {
        self.insts.len()
    }

    fn emit_ast(&mut self, ast: &Ast) {
        match ast {
            Ast::Empty => {}
            Ast::Class(class) => {
                self.insts.push(Inst::Byte(class.clone()));
            }
            Ast::Concat(items) => {
                for item in items {
                    self.emit_ast(item);
                }
            }
            Ast::Alternate(branches) => self.emit_alternation(branches),
            Ast::Repeat { node, min, max } => self.emit_repeat(node, *min, *max),
            Ast::StartAnchor => self.insts.push(Inst::AssertStart),
            Ast::EndAnchor => self.insts.push(Inst::AssertEnd),
        }
    }

    fn emit_alternation(&mut self, branches: &[Ast]) {
        debug_assert!(branches.len() >= 2);
        // Chain of splits: each split prefers the earlier branch, giving leftmost-biased
        // thread priority (final match selection is longest-at-leftmost, see matcher).
        let mut jump_patches = Vec::new();
        for (i, branch) in branches.iter().enumerate() {
            if i + 1 < branches.len() {
                let split_pc = self.next_pc();
                self.insts.push(Inst::Split {
                    prefer: 0,
                    other: 0,
                });
                let branch_start = self.next_pc();
                self.emit_ast(branch);
                let jump_pc = self.next_pc();
                self.insts.push(Inst::Jump(0));
                jump_patches.push(jump_pc);
                let next_branch = self.next_pc();
                self.insts[split_pc] = Inst::Split {
                    prefer: branch_start,
                    other: next_branch,
                };
            } else {
                self.emit_ast(branch);
            }
        }
        let end = self.next_pc();
        for pc in jump_patches {
            self.insts[pc] = Inst::Jump(end);
        }
    }

    fn emit_repeat(&mut self, node: &Ast, min: u32, max: Option<u32>) {
        // Mandatory prefix: `min` copies.
        for _ in 0..min {
            self.emit_ast(node);
        }
        match max {
            None => {
                // Kleene star over the remaining repetitions: loop with greedy preference.
                let split_pc = self.next_pc();
                self.insts.push(Inst::Split {
                    prefer: 0,
                    other: 0,
                });
                let body_start = self.next_pc();
                self.emit_ast(node);
                self.insts.push(Inst::Jump(split_pc));
                let after = self.next_pc();
                self.insts[split_pc] = Inst::Split {
                    prefer: body_start,
                    other: after,
                };
            }
            Some(max) => {
                // `max - min` optional copies, each guarded by a greedy split.
                let optional = max.saturating_sub(min);
                let mut split_pcs = Vec::with_capacity(optional as usize);
                for _ in 0..optional {
                    let split_pc = self.next_pc();
                    self.insts.push(Inst::Split {
                        prefer: 0,
                        other: 0,
                    });
                    split_pcs.push(split_pc);
                    let body_start = self.next_pc();
                    self.emit_ast(node);
                    let body_start_copy = body_start;
                    let _ = body_start_copy;
                    self.insts[split_pc] = Inst::Split {
                        prefer: body_start,
                        other: 0, // patched below to point past the whole optional chain
                    };
                }
                let after = self.next_pc();
                for pc in split_pcs {
                    if let Inst::Split { prefer, .. } = self.insts[pc] {
                        self.insts[pc] = Inst::Split {
                            prefer,
                            other: after,
                        };
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn program(pattern: &str) -> Program {
        compile(&parse(pattern).expect("parse"))
    }

    #[test]
    fn literal_compiles_to_bytes_plus_match() {
        let p = program("abc");
        assert_eq!(p.insts.len(), 4);
        assert!(matches!(p.insts[3], Inst::Match));
    }

    #[test]
    fn star_has_split_and_jump() {
        let p = program("a*");
        assert!(p.insts.iter().any(|i| matches!(i, Inst::Split { .. })));
        assert!(p.insts.iter().any(|i| matches!(i, Inst::Jump(_))));
    }

    #[test]
    fn bounded_repeat_expands() {
        let p3 = program("a{3}");
        let p1 = program("a");
        assert!(p3.insts.len() > p1.insts.len());
    }

    #[test]
    fn alternation_split_targets_are_in_bounds() {
        let p = program("(foo|bar|baz)+");
        for inst in &p.insts {
            match inst {
                Inst::Split { prefer, other } => {
                    assert!(*prefer < p.insts.len());
                    assert!(*other < p.insts.len());
                }
                Inst::Jump(t) => assert!(*t < p.insts.len()),
                _ => {}
            }
        }
    }

    #[test]
    fn anchors_compile_to_asserts() {
        let p = program("^a$");
        assert!(matches!(p.insts[0], Inst::AssertStart));
        assert!(matches!(p.insts[2], Inst::AssertEnd));
    }
}
