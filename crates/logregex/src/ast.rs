//! Abstract syntax tree for the supported regex subset.

/// A set of byte ranges, used for character classes, `.` and the `\d`/`\w`/`\s` escapes.
///
/// Ranges are inclusive on both ends and kept sorted and non-overlapping by
/// [`ByteClass::normalize`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ByteClass {
    pub ranges: Vec<(u8, u8)>,
}

impl ByteClass {
    /// The empty class (matches nothing).
    pub fn empty() -> Self {
        ByteClass { ranges: Vec::new() }
    }

    /// A class containing the single byte `b`.
    pub fn single(b: u8) -> Self {
        ByteClass {
            ranges: vec![(b, b)],
        }
    }

    /// Add an inclusive range.
    pub fn push(&mut self, lo: u8, hi: u8) {
        debug_assert!(lo <= hi);
        self.ranges.push((lo, hi));
    }

    /// Sort and merge overlapping or adjacent ranges.
    pub fn normalize(&mut self) {
        if self.ranges.is_empty() {
            return;
        }
        self.ranges.sort_unstable();
        let mut merged: Vec<(u8, u8)> = Vec::with_capacity(self.ranges.len());
        for &(lo, hi) in &self.ranges {
            match merged.last_mut() {
                Some(&mut (_, ref mut prev_hi)) if lo <= prev_hi.saturating_add(1) => {
                    if hi > *prev_hi {
                        *prev_hi = hi;
                    }
                }
                _ => merged.push((lo, hi)),
            }
        }
        self.ranges = merged;
    }

    /// Complement with respect to all byte values `0..=255`.
    pub fn negate(&self) -> ByteClass {
        let mut out = ByteClass::empty();
        let mut next = 0u16;
        for &(lo, hi) in &self.ranges {
            if (lo as u16) > next {
                out.push(next as u8, lo - 1);
            }
            next = hi as u16 + 1;
        }
        if next <= 255 {
            out.push(next as u8, 255);
        }
        out
    }

    /// True when `b` is a member of the class.
    pub fn contains(&self, b: u8) -> bool {
        // Classes are tiny (a handful of ranges); linear scan beats binary search here.
        self.ranges.iter().any(|&(lo, hi)| lo <= b && b <= hi)
    }

    /// Digits `0-9`.
    pub fn digit() -> Self {
        ByteClass {
            ranges: vec![(b'0', b'9')],
        }
    }

    /// Word characters `[A-Za-z0-9_]`.
    pub fn word() -> Self {
        let mut c = ByteClass::empty();
        c.push(b'0', b'9');
        c.push(b'A', b'Z');
        c.push(b'_', b'_');
        c.push(b'a', b'z');
        c.normalize();
        c
    }

    /// Whitespace `[ \t\n\r\x0b\x0c]`.
    pub fn space() -> Self {
        let mut c = ByteClass::empty();
        c.push(b'\t', b'\r'); // \t \n \x0b \x0c \r
        c.push(b' ', b' ');
        c.normalize();
        c
    }

    /// `.` — any byte except `\n`.
    pub fn dot() -> Self {
        ByteClass::single(b'\n').negate()
    }
}

/// A parsed regular expression node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Ast {
    /// Matches the empty string.
    Empty,
    /// A single byte drawn from a class.
    Class(ByteClass),
    /// Concatenation of sub-expressions.
    Concat(Vec<Ast>),
    /// Alternation between sub-expressions.
    Alternate(Vec<Ast>),
    /// Repetition of a sub-expression between `min` and `max` times (`max == None` means
    /// unbounded).
    Repeat {
        node: Box<Ast>,
        min: u32,
        max: Option<u32>,
    },
    /// `^` — start-of-input anchor.
    StartAnchor,
    /// `$` — end-of-input anchor.
    EndAnchor,
}

impl Ast {
    /// Render the AST back into pattern syntax such that re-parsing the output yields a
    /// structurally identical AST (`parse(ast.to_pattern()) == *ast`, verified by the
    /// seeded fuzz suite). Because the printer is deterministic, `parse → print` is a
    /// *canonical form*: printing is idempotent over its own output, which is what makes
    /// pattern round-trips stable.
    pub fn to_pattern(&self) -> String {
        let mut out = String::new();
        self.render(&mut out, false);
        out
    }

    /// Append this node's pattern syntax to `out`. `atomic` forces grouping so the
    /// rendered fragment can safely take a quantifier or sit inside a concatenation.
    fn render(&self, out: &mut String, atomic: bool) {
        match self {
            Ast::Empty => {
                if atomic {
                    out.push_str("(?:)");
                }
                // At top level the empty pattern renders as the empty string.
            }
            Ast::Class(class) => render_class(class, out),
            Ast::StartAnchor => out.push('^'),
            Ast::EndAnchor => out.push('$'),
            Ast::Concat(items) => {
                if atomic {
                    out.push_str("(?:");
                }
                for item in items {
                    item.render(out, true);
                }
                if atomic {
                    out.push(')');
                }
            }
            Ast::Alternate(branches) => {
                out.push_str("(?:");
                for (i, branch) in branches.iter().enumerate() {
                    if i > 0 {
                        out.push('|');
                    }
                    // Branches are concatenation-level: no extra grouping needed, and
                    // an empty branch renders as the empty string (`(?:a|)`).
                    match branch {
                        Ast::Concat(items) => {
                            for item in items {
                                item.render(out, true);
                            }
                        }
                        Ast::Empty => {}
                        other => other.render(out, true),
                    }
                }
                out.push(')');
            }
            Ast::Repeat { node, min, max } => {
                // In atomic position (inside a concatenation or under another
                // quantifier) the whole repetition must be grouped, or the printed
                // braces would stack onto the preceding fragment's quantifier.
                if atomic {
                    out.push_str("(?:");
                }
                node.render(out, true);
                match max {
                    Some(max) => out.push_str(&format!("{{{min},{max}}}")),
                    None => out.push_str(&format!("{{{min},}}")),
                }
                if atomic {
                    out.push(')');
                }
            }
        }
    }
}

/// Render a byte class in `[...]` syntax (or the never-matching complement form for the
/// empty class, which has no direct syntax).
fn render_class(class: &ByteClass, out: &mut String) {
    if class.ranges.is_empty() {
        // A class that matches nothing: print the negation of the full byte range.
        out.push_str(r"[^\x00-\xff]");
        return;
    }
    out.push('[');
    for &(lo, hi) in &class.ranges {
        render_class_byte(lo, out);
        if hi > lo {
            out.push('-');
            render_class_byte(hi, out);
        }
    }
    out.push(']');
}

/// Render one byte inside a character class, escaping everything the class parser
/// treats specially (and all non-printable bytes as `\xHH`).
fn render_class_byte(b: u8, out: &mut String) {
    match b {
        b'\\' | b']' | b'^' | b'-' | b'[' => {
            out.push('\\');
            out.push(b as char);
        }
        0x20..=0x7E => out.push(b as char),
        _ => out.push_str(&format!("\\x{b:02x}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_merges_overlaps() {
        let mut c = ByteClass::empty();
        c.push(b'a', b'f');
        c.push(b'd', b'k');
        c.push(b'z', b'z');
        c.normalize();
        assert_eq!(c.ranges, vec![(b'a', b'k'), (b'z', b'z')]);
    }

    #[test]
    fn normalize_merges_adjacent() {
        let mut c = ByteClass::empty();
        c.push(b'a', b'c');
        c.push(b'd', b'f');
        c.normalize();
        assert_eq!(c.ranges, vec![(b'a', b'f')]);
    }

    #[test]
    fn negate_roundtrip() {
        let c = ByteClass::digit();
        let n = c.negate();
        assert!(!n.contains(b'5'));
        assert!(n.contains(b'a'));
        assert!(n.contains(0));
        assert!(n.contains(255));
        let back = n.negate();
        assert_eq!(back.ranges, c.ranges);
    }

    #[test]
    fn word_class_membership() {
        let w = ByteClass::word();
        for b in [b'a', b'Z', b'0', b'_'] {
            assert!(w.contains(b));
        }
        for b in [b' ', b'-', b'.', b'\n'] {
            assert!(!w.contains(b));
        }
    }

    #[test]
    fn dot_excludes_newline() {
        let d = ByteClass::dot();
        assert!(d.contains(b'a'));
        assert!(d.contains(b' '));
        assert!(!d.contains(b'\n'));
    }

    #[test]
    fn space_class_membership() {
        let s = ByteClass::space();
        for b in [b' ', b'\t', b'\n', b'\r'] {
            assert!(s.contains(b));
        }
        assert!(!s.contains(b'x'));
    }
}
