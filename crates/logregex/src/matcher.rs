//! Pike-VM simulation of the compiled NFA program.
//!
//! The simulation runs in `O(haystack_len * program_len)` time and constant extra space
//! per program instruction — no backtracking, matching the paper's requirement that user
//! patterns stay linear-time (§4.1.1).

use crate::compile::{Inst, Program};
use crate::Match;

/// A live NFA thread: the instruction it sits on and the haystack offset where its match
/// attempt started (needed for leftmost-longest selection).
#[derive(Debug, Clone, Copy)]
struct Thread {
    pc: usize,
    start: usize,
}

/// Thread list with O(1) membership test per instruction.
struct ThreadList {
    threads: Vec<Thread>,
    /// `seen[pc]` holds (generation, start) of the best thread already queued at `pc`.
    seen: Vec<(u64, usize)>,
    generation: u64,
}

impl ThreadList {
    fn new(prog_len: usize) -> Self {
        ThreadList {
            threads: Vec::with_capacity(prog_len),
            seen: vec![(0, usize::MAX); prog_len],
            generation: 0,
        }
    }

    fn clear(&mut self) {
        self.threads.clear();
        self.generation += 1;
    }

    /// Returns true when the thread should be added (either unseen this generation, or
    /// seen with a worse — later — start offset).
    fn admit(&mut self, pc: usize, start: usize) -> bool {
        let (generation, existing_start) = self.seen[pc];
        if generation == self.generation && existing_start <= start {
            return false;
        }
        self.seen[pc] = (self.generation, start);
        true
    }
}

/// Find the leftmost-longest match whose start offset is `>= from`.
pub fn find_at(program: &Program, haystack: &[u8], from: usize, len: usize) -> Option<Match> {
    if from > len {
        return None;
    }
    let prog_len = program.insts.len();
    let mut current = ThreadList::new(prog_len);
    let mut next = ThreadList::new(prog_len);
    let mut best: Option<Match> = None;

    current.clear();
    let mut pos = from;
    loop {
        // Seed a new start thread at `pos` unless a leftmost match already exists.
        // With a first-byte prefilter (pattern cannot match the empty string), a
        // match starting at `pos` must consume `haystack[pos]` as its first byte,
        // so positions outside the start-byte set never need a seed — and when no
        // threads are live we can skip straight to the next candidate position.
        if best.is_none() {
            match &program.start_bytes {
                Some(start_bytes) => {
                    if current.threads.is_empty() {
                        while pos < len && !start_bytes.contains(haystack[pos]) {
                            pos += 1;
                        }
                    }
                    if pos < len && start_bytes.contains(haystack[pos]) {
                        add_thread(program, &mut current, 0, pos, pos, len, &mut best);
                    }
                }
                None => add_thread(program, &mut current, 0, pos, pos, len, &mut best),
            }
        }
        if current.threads.is_empty() && best.is_some() {
            break;
        }
        if pos >= len {
            break;
        }
        let byte = haystack[pos];
        next.clear();
        // Iterate by index: add_thread only appends to `next`, never `current`.
        for i in 0..current.threads.len() {
            let th = current.threads[i];
            if let Some(m) = best {
                if th.start > m.start {
                    continue; // cannot improve a leftmost match
                }
            }
            if let Inst::Byte(class) = &program.insts[th.pc] {
                if class.contains(byte) {
                    add_thread(
                        program,
                        &mut next,
                        th.pc + 1,
                        th.start,
                        pos + 1,
                        len,
                        &mut best,
                    );
                }
            }
        }
        std::mem::swap(&mut current, &mut next);
        pos += 1;
        if current.threads.is_empty() && best.is_some() {
            break;
        }
        if current.threads.is_empty() && best.is_none() && pos > len {
            break;
        }
    }
    best
}

/// Follow epsilon transitions (splits, jumps, anchors) from `pc`, queuing byte-consuming
/// threads into `list` and recording matches into `best`.
fn add_thread(
    program: &Program,
    list: &mut ThreadList,
    pc: usize,
    start: usize,
    pos: usize,
    len: usize,
    best: &mut Option<Match>,
) {
    if !list.admit(pc, start) {
        return;
    }
    match &program.insts[pc] {
        Inst::Jump(target) => add_thread(program, list, *target, start, pos, len, best),
        Inst::Split { prefer, other } => {
            add_thread(program, list, *prefer, start, pos, len, best);
            add_thread(program, list, *other, start, pos, len, best);
        }
        Inst::AssertStart => {
            if pos == 0 {
                add_thread(program, list, pc + 1, start, pos, len, best);
            }
        }
        Inst::AssertEnd => {
            if pos == len {
                add_thread(program, list, pc + 1, start, pos, len, best);
            }
        }
        Inst::Byte(_) => {
            list.threads.push(Thread { pc, start });
        }
        Inst::Match => {
            let candidate = Match { start, end: pos };
            let better = match best {
                None => true,
                Some(existing) => {
                    candidate.start < existing.start
                        || (candidate.start == existing.start && candidate.end > existing.end)
                }
            };
            if better {
                *best = Some(candidate);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::Regex;

    #[test]
    fn longest_match_at_same_start() {
        let re = Regex::new("ab|abc|abcd").unwrap();
        let m = re.find("xxabcdyy").unwrap();
        assert_eq!(m.as_str("xxabcdyy"), "abcd");
    }

    #[test]
    fn leftmost_wins_over_longer_later() {
        let re = Regex::new("a+|b+").unwrap();
        let m = re.find("aabbbb").unwrap();
        assert_eq!(m.as_str("aabbbb"), "aa");
    }

    #[test]
    fn greedy_star() {
        let re = Regex::new("a*").unwrap();
        let m = re.find("aaab").unwrap();
        assert_eq!(m.len(), 3);
        assert_eq!(m.start, 0);
    }

    #[test]
    fn match_at_end_of_haystack() {
        let re = Regex::new("end$").unwrap();
        let m = re.find("the end").unwrap();
        assert_eq!(m.start, 4);
        assert_eq!(m.end, 7);
    }

    #[test]
    fn no_match_returns_none() {
        let re = Regex::new("zzz").unwrap();
        assert!(re.find("abcabc").is_none());
    }

    #[test]
    fn find_at_respects_offset() {
        let re = Regex::new("ab").unwrap();
        let m = re.find_at("abxab", 1).unwrap();
        assert_eq!(m.start, 3);
    }

    #[test]
    fn prefilter_computed_for_nonempty_patterns_only() {
        let re = Regex::new("[0-9]+ms").unwrap();
        let lut = re.program().start_bytes.as_ref().expect("prefilter");
        assert_eq!(lut.len(), 10);
        assert!(lut.contains(b'7'));
        assert!(!lut.contains(b'm'));
        // Empty-matchable patterns must disable the filter entirely.
        assert!(Regex::new("a*").unwrap().program().start_bytes.is_none());
        assert!(Regex::new("^").unwrap().program().start_bytes.is_none());
        assert!(Regex::new("x?").unwrap().program().start_bytes.is_none());
    }

    #[test]
    fn prefilter_includes_all_alternation_branches() {
        let re = Regex::new("(foo|[0-9]ar|^zap)").unwrap();
        let lut = re.program().start_bytes.as_ref().expect("prefilter");
        assert!(lut.contains(b'f'));
        assert!(lut.contains(b'5'));
        assert!(lut.contains(b'z'));
        assert!(!lut.contains(b'a'));
    }

    #[test]
    fn prefilter_agrees_with_unfiltered_vm_on_mixed_haystacks() {
        use crate::compile::compile;
        use crate::matcher::find_at;
        use crate::parser::parse;

        let patterns = [
            "[0-9]+",
            "ab+c",
            "x$",
            "^st",
            "(GET|POST) /",
            "a{2,4}b",
            "a*",
            "z?7",
        ];
        let haystacks = [
            "",
            "no digits here at all",
            "tail 42",
            "42 head",
            "middle 0 x",
            "stxst",
            "GET /api POST /other",
            "aaaab aab ab b",
            "xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx7",
        ];
        for pattern in patterns {
            let filtered = compile(&parse(pattern).unwrap());
            let mut unfiltered = filtered.clone();
            unfiltered.start_bytes = None;
            for hay in haystacks {
                for from in 0..=hay.len() {
                    let got = find_at(&filtered, hay.as_bytes(), from, hay.len());
                    let expected = find_at(&unfiltered, hay.as_bytes(), from, hay.len());
                    assert_eq!(got, expected, "pattern={pattern:?} hay={hay:?} from={from}");
                }
            }
        }
    }

    #[test]
    fn linearity_smoke_test_pathological_pattern() {
        // `(a+)+b`-style patterns are exponential under backtracking engines; the Pike VM
        // must finish quickly even on a non-matching input.
        let re = Regex::new("(a+)+b").unwrap();
        let haystack = "a".repeat(2000);
        let started = std::time::Instant::now();
        assert!(!re.is_match(&haystack));
        assert!(started.elapsed() < std::time::Duration::from_secs(2));
    }
}
