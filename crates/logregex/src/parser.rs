//! Recursive-descent parser for the supported regex subset.

use crate::ast::{Ast, ByteClass};
use crate::error::RegexError;

/// Maximum allowed bounded-repetition count. Prevents `a{100000}` from exploding the
/// compiled program size (the paper caps user-pattern complexity for the same reason).
const MAX_BOUNDED_REPEAT: u32 = 256;

struct Parser<'p> {
    pattern: &'p [u8],
    pos: usize,
}

/// Parse `pattern` into an [`Ast`].
pub fn parse(pattern: &str) -> Result<Ast, RegexError> {
    let mut p = Parser {
        pattern: pattern.as_bytes(),
        pos: 0,
    };
    let ast = p.parse_alternation()?;
    if p.pos != p.pattern.len() {
        return Err(p.err("unexpected ')'"));
    }
    Ok(ast)
}

impl<'p> Parser<'p> {
    fn err(&self, msg: &str) -> RegexError {
        RegexError::new(msg, Some(self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.pattern.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// alternation := concat ('|' concat)*
    fn parse_alternation(&mut self) -> Result<Ast, RegexError> {
        let mut branches = vec![self.parse_concat()?];
        while self.eat(b'|') {
            branches.push(self.parse_concat()?);
        }
        if branches.len() == 1 {
            Ok(branches.pop().expect("one branch"))
        } else {
            Ok(Ast::Alternate(branches))
        }
    }

    /// concat := repeated*
    fn parse_concat(&mut self) -> Result<Ast, RegexError> {
        let mut items = Vec::new();
        while let Some(b) = self.peek() {
            if b == b'|' || b == b')' {
                break;
            }
            items.push(self.parse_repeated()?);
        }
        match items.len() {
            0 => Ok(Ast::Empty),
            1 => Ok(items.pop().expect("one item")),
            _ => Ok(Ast::Concat(items)),
        }
    }

    /// repeated := atom quantifier?
    fn parse_repeated(&mut self) -> Result<Ast, RegexError> {
        let atom = self.parse_atom()?;
        let (min, max) = match self.peek() {
            Some(b'*') => {
                self.bump();
                (0, None)
            }
            Some(b'+') => {
                self.bump();
                (1, None)
            }
            Some(b'?') => {
                self.bump();
                (0, Some(1))
            }
            Some(b'{') => {
                let save = self.pos;
                match self.parse_brace_quantifier() {
                    Some(q) => q,
                    None => {
                        // Not a quantifier (e.g. a literal '{' as in format strings);
                        // treat the atom as-is and leave '{' to be consumed as a literal.
                        self.pos = save;
                        return Ok(atom);
                    }
                }
            }
            _ => return Ok(atom),
        };
        if matches!(atom, Ast::StartAnchor | Ast::EndAnchor) {
            return Err(self.err("quantifier cannot apply to an anchor"));
        }
        if let Some(mx) = max {
            if mx < min {
                return Err(self.err("repetition max is smaller than min"));
            }
            if mx > MAX_BOUNDED_REPEAT {
                return Err(self.err("bounded repetition too large"));
            }
        }
        if min > MAX_BOUNDED_REPEAT {
            return Err(self.err("bounded repetition too large"));
        }
        // Reject stacked quantifiers such as `a**` which are almost always a typo.
        if matches!(self.peek(), Some(b'*') | Some(b'+') | Some(b'?')) {
            return Err(self.err("nested quantifier"));
        }
        Ok(Ast::Repeat {
            node: Box::new(atom),
            min,
            max,
        })
    }

    /// Attempt to parse `{m}`, `{m,}` or `{m,n}`. Returns `None` (without error) when the
    /// brace expression is not a valid quantifier, so callers can fall back to a literal.
    fn parse_brace_quantifier(&mut self) -> Option<(u32, Option<u32>)> {
        debug_assert_eq!(self.peek(), Some(b'{'));
        self.bump();
        let min = self.parse_number()?;
        match self.peek() {
            Some(b'}') => {
                self.bump();
                Some((min, Some(min)))
            }
            Some(b',') => {
                self.bump();
                if self.eat(b'}') {
                    return Some((min, None));
                }
                let max = self.parse_number()?;
                if self.eat(b'}') {
                    Some((min, Some(max)))
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    fn parse_number(&mut self) -> Option<u32> {
        let start = self.pos;
        let mut value: u32 = 0;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() {
                value = value.checked_mul(10)?.checked_add((b - b'0') as u32)?;
                self.bump();
            } else {
                break;
            }
        }
        if self.pos == start {
            None
        } else {
            Some(value)
        }
    }

    /// atom := group | class | anchor | escape | literal
    fn parse_atom(&mut self) -> Result<Ast, RegexError> {
        match self.peek() {
            Some(b'(') => self.parse_group(),
            Some(b'[') => {
                let class = self.parse_class()?;
                Ok(Ast::Class(class))
            }
            Some(b'^') => {
                self.bump();
                Ok(Ast::StartAnchor)
            }
            Some(b'$') => {
                self.bump();
                Ok(Ast::EndAnchor)
            }
            Some(b'.') => {
                self.bump();
                Ok(Ast::Class(ByteClass::dot()))
            }
            Some(b'\\') => {
                self.bump();
                let class = self.parse_escape(false)?;
                Ok(Ast::Class(class))
            }
            Some(b'*') | Some(b'+') | Some(b'?') => Err(self.err("quantifier without target")),
            Some(b) => {
                self.bump();
                Ok(Ast::Class(ByteClass::single(b)))
            }
            None => Ok(Ast::Empty),
        }
    }

    fn parse_group(&mut self) -> Result<Ast, RegexError> {
        debug_assert_eq!(self.peek(), Some(b'('));
        self.bump();
        if self.peek() == Some(b'?') {
            // Only the non-capturing group `(?:...)` is supported; look-around and other
            // `(?...)` constructs are rejected because they break the linear-time bound.
            let next = self.pattern.get(self.pos + 1).copied();
            match next {
                Some(b':') => {
                    self.bump();
                    self.bump();
                }
                Some(b'=') | Some(b'!') | Some(b'<') => {
                    return Err(self.err("look-around is not supported (linear-time subset only)"));
                }
                _ => return Err(self.err("unsupported group syntax")),
            }
        }
        let inner = self.parse_alternation()?;
        if !self.eat(b')') {
            return Err(self.err("unclosed group"));
        }
        Ok(inner)
    }

    /// Parse a `[...]` character class.
    fn parse_class(&mut self) -> Result<ByteClass, RegexError> {
        debug_assert_eq!(self.peek(), Some(b'['));
        self.bump();
        let negated = self.eat(b'^');
        let mut class = ByteClass::empty();
        let mut first = true;
        loop {
            let b = match self.peek() {
                Some(b) => b,
                None => return Err(self.err("unclosed character class")),
            };
            if b == b']' && !first {
                self.bump();
                break;
            }
            first = false;
            let lo = self.parse_class_member()?;
            // A literal '-' at the end of the class is allowed; a range otherwise.
            if self.peek() == Some(b'-') && self.pattern.get(self.pos + 1) != Some(&b']') {
                self.bump();
                let hi = self.parse_class_member()?;
                let (lo, hi) = match (lo, hi) {
                    (ClassMember::Byte(l), ClassMember::Byte(h)) => (l, h),
                    _ => return Err(self.err("character-class escapes cannot form a range")),
                };
                if lo > hi {
                    return Err(self.err("invalid character range"));
                }
                class.push(lo, hi);
            } else {
                match lo {
                    ClassMember::Byte(b) => class.push(b, b),
                    ClassMember::Class(c) => {
                        for (l, h) in c.ranges {
                            class.push(l, h);
                        }
                    }
                }
            }
        }
        class.normalize();
        if negated {
            Ok(class.negate())
        } else {
            Ok(class)
        }
    }

    fn parse_class_member(&mut self) -> Result<ClassMember, RegexError> {
        let b = self
            .bump()
            .ok_or_else(|| self.err("unclosed character class"))?;
        if b == b'\\' {
            let class = self.parse_escape(true)?;
            if class.ranges.len() == 1 && class.ranges[0].0 == class.ranges[0].1 {
                Ok(ClassMember::Byte(class.ranges[0].0))
            } else {
                Ok(ClassMember::Class(class))
            }
        } else {
            Ok(ClassMember::Byte(b))
        }
    }

    /// Parse the character after a backslash. `in_class` controls which escapes are legal.
    fn parse_escape(&mut self, in_class: bool) -> Result<ByteClass, RegexError> {
        let b = self.bump().ok_or_else(|| self.err("dangling escape"))?;
        let class = match b {
            b'd' => ByteClass::digit(),
            b'D' => ByteClass::digit().negate(),
            b'w' => ByteClass::word(),
            b'W' => ByteClass::word().negate(),
            b's' => ByteClass::space(),
            b'S' => ByteClass::space().negate(),
            b'n' => ByteClass::single(b'\n'),
            b't' => ByteClass::single(b'\t'),
            b'r' => ByteClass::single(b'\r'),
            b'0' => ByteClass::single(0),
            b'x' => {
                let hi = self
                    .bump()
                    .ok_or_else(|| self.err("truncated \\x escape"))?;
                let lo = self
                    .bump()
                    .ok_or_else(|| self.err("truncated \\x escape"))?;
                let hex = |c: u8| -> Option<u8> {
                    match c {
                        b'0'..=b'9' => Some(c - b'0'),
                        b'a'..=b'f' => Some(c - b'a' + 10),
                        b'A'..=b'F' => Some(c - b'A' + 10),
                        _ => None,
                    }
                };
                let (h, l) = (hex(hi), hex(lo));
                match (h, l) {
                    (Some(h), Some(l)) => ByteClass::single(h * 16 + l),
                    _ => return Err(self.err("invalid \\x escape")),
                }
            }
            b'1'..=b'9' => {
                if in_class {
                    ByteClass::single(b)
                } else {
                    return Err(
                        self.err("back-references are not supported (linear-time subset only)")
                    );
                }
            }
            // Escaped metacharacters and punctuation map to their literal byte.
            _ => ByteClass::single(b),
        };
        Ok(class)
    }
}

enum ClassMember {
    Byte(u8),
    Class(ByteClass),
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok(pattern: &str) -> Ast {
        parse(pattern).unwrap_or_else(|e| panic!("pattern {pattern:?} failed: {e}"))
    }

    #[test]
    fn parses_literal_concat() {
        match ok("abc") {
            Ast::Concat(items) => assert_eq!(items.len(), 3),
            other => panic!("unexpected ast: {other:?}"),
        }
    }

    #[test]
    fn parses_alternation() {
        match ok("a|b|c") {
            Ast::Alternate(branches) => assert_eq!(branches.len(), 3),
            other => panic!("unexpected ast: {other:?}"),
        }
    }

    #[test]
    fn parses_repetition_forms() {
        for (pat, min, max) in [
            ("a*", 0, None),
            ("a+", 1, None),
            ("a?", 0, Some(1)),
            ("a{3}", 3, Some(3)),
            ("a{2,}", 2, None),
            ("a{2,5}", 2, Some(5)),
        ] {
            match ok(pat) {
                Ast::Repeat { min: m, max: x, .. } => {
                    assert_eq!((m, x), (min, max), "pattern {pat}");
                }
                other => panic!("unexpected ast for {pat}: {other:?}"),
            }
        }
    }

    #[test]
    fn brace_that_is_not_a_quantifier_is_literal() {
        // `{}` in format-string-like text must not be a parse error.
        assert!(parse("value={}").is_ok());
        assert!(parse("a{,3}").is_ok());
    }

    #[test]
    fn rejects_unsupported() {
        assert!(parse("a{2,1}").is_err());
        assert!(parse("a{9999}").is_err());
        assert!(parse("*a").is_err());
        assert!(parse("a**").is_err());
        assert!(parse("(?P<name>x)").is_err());
    }

    #[test]
    fn class_with_escapes() {
        match ok(r"[\d\-x]") {
            Ast::Class(c) => {
                assert!(c.contains(b'5'));
                assert!(c.contains(b'-'));
                assert!(c.contains(b'x'));
                assert!(!c.contains(b'y'));
            }
            other => panic!("unexpected ast: {other:?}"),
        }
    }

    #[test]
    fn class_with_trailing_dash() {
        match ok("[a-c-]") {
            Ast::Class(c) => {
                assert!(c.contains(b'b'));
                assert!(c.contains(b'-'));
            }
            other => panic!("unexpected ast: {other:?}"),
        }
    }

    #[test]
    fn leading_close_bracket_in_class() {
        // `[]]` means a class containing ']' (first position is literal).
        match ok("[]]") {
            Ast::Class(c) => assert!(c.contains(b']')),
            other => panic!("unexpected ast: {other:?}"),
        }
    }

    #[test]
    fn hex_escape() {
        match ok(r"\x41") {
            Ast::Class(c) => assert!(c.contains(b'A')),
            other => panic!("unexpected ast: {other:?}"),
        }
        assert!(parse(r"\xZZ").is_err());
    }

    #[test]
    fn paper_tokenizer_pattern_parses() {
        // The default tokenization pattern from the paper (Listing 1), minus Python's
        // named-group syntax, must be accepted.
        let pat = r#"(?:://)|(?:(?:[\s'";=()\[\]{}?@&<>:\n\t\r,])|(?:[\.](\s+|$))|(?:\\["']))+"#;
        assert!(parse(pat).is_ok(), "tokenizer pattern should parse");
    }
}
