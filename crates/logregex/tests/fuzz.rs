//! Seeded fuzz-style tests for the `logregex` parser and compiler: arbitrary byte
//! strings must never panic the pipeline, and parse → print → parse round-trips must
//! be stable (the canonical form is a fixed point) and behaviour-preserving.
//!
//! Like the other randomized suites in this workspace, every case is drawn from a
//! fixed-seed RNG so failures reproduce deterministically. The CI seed matrix varies
//! the base seed through `BYTEBRAIN_TEST_SEED`.

use logregex::{canonicalize, Regex};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Base seed for all randomized cases; CI runs a small matrix of values.
fn base_seed() -> u64 {
    std::env::var("BYTEBRAIN_TEST_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

/// A random string over printable ASCII, heavily seasoned with regex metacharacters.
fn metachar_soup(rng: &mut StdRng, max_len: usize) -> String {
    const FRAGMENTS: &[&str] = &[
        "a", "b", "Z", "0", "9", "_", " ", r"\d", r"\w", r"\s", r"\D", r"\W", r"\S", r"\n", r"\t",
        r"\x41", r"\.", r"\\", ".", "(", ")", "(?:", "|", "*", "+", "?", "{2}", "{1,3}", "{2,}",
        "{,3}", "[", "]", "[a-f]", "[^0-9]", "[]]", "^", "$", "{", "}", "-", ":", "/", r"\1",
        "(?=", "(?!", "(?<",
    ];
    let len = rng.gen_range(0..max_len + 1);
    let mut out = String::new();
    for _ in 0..len {
        out.push_str(FRAGMENTS[rng.gen_range(0..FRAGMENTS.len())]);
    }
    out
}

/// A random string of arbitrary bytes, lossily converted to UTF-8 (so multi-byte and
/// replacement characters appear alongside ASCII).
fn arbitrary_bytes_string(rng: &mut StdRng, max_len: usize) -> String {
    let len = rng.gen_range(0..max_len + 1);
    let bytes: Vec<u8> = (0..len).map(|_| rng.gen_range(0..256u16) as u8).collect();
    String::from_utf8_lossy(&bytes).into_owned()
}

/// A random ASCII haystack to exercise matching.
fn ascii_haystack(rng: &mut StdRng, max_len: usize) -> String {
    let len = rng.gen_range(0..max_len + 1);
    (0..len)
        .map(|_| rng.gen_range(0x20u8..0x7F) as char)
        .collect()
}

#[test]
fn parser_never_panics_on_arbitrary_inputs() {
    let mut rng = StdRng::seed_from_u64(base_seed() ^ 0xF022);
    let mut accepted = 0usize;
    let mut rejected = 0usize;
    for case in 0..2_000 {
        let pattern = if case % 2 == 0 {
            metachar_soup(&mut rng, 24)
        } else {
            arbitrary_bytes_string(&mut rng, 40)
        };
        // The only contract: no panic. Both outcomes must occur over the corpus.
        match Regex::new(&pattern) {
            Ok(_) => accepted += 1,
            Err(_) => rejected += 1,
        }
    }
    assert!(accepted > 100, "generator produced too few valid patterns");
    assert!(
        rejected > 100,
        "generator produced too few invalid patterns"
    );
}

#[test]
fn compiled_arbitrary_patterns_match_safely() {
    let mut rng = StdRng::seed_from_u64(base_seed() ^ 0x5AFE);
    let mut exercised = 0usize;
    for _ in 0..1_500 {
        let pattern = metachar_soup(&mut rng, 16);
        let Ok(re) = Regex::new(&pattern) else {
            continue;
        };
        exercised += 1;
        let haystack = ascii_haystack(&mut rng, 80);
        // Matching must terminate, produce in-bounds offsets, and never panic.
        let _ = re.is_match(&haystack);
        for m in re.find_iter(&haystack) {
            assert!(m.start <= m.end, "inverted match in {pattern:?}");
            assert!(
                m.end <= haystack.len(),
                "out-of-bounds match in {pattern:?}"
            );
            let _ = m.as_str(&haystack);
        }
        let replaced = re.replace_all(&haystack, "<*>");
        assert!(replaced.len() <= haystack.len() + 3 * (haystack.len() + 1));
        let parts = re.split(&haystack);
        let rejoined: usize = parts.iter().map(|p| p.len()).sum();
        assert!(rejoined <= haystack.len());
    }
    assert!(exercised > 200, "too few valid patterns exercised");
}

#[test]
fn parse_print_parse_round_trips_are_stable() {
    let mut rng = StdRng::seed_from_u64(base_seed() ^ 0x2007);
    let mut round_tripped = 0usize;
    for case in 0..2_000 {
        let pattern = if case % 3 == 0 {
            arbitrary_bytes_string(&mut rng, 30)
        } else {
            metachar_soup(&mut rng, 20)
        };
        let Ok(canonical) = canonicalize(&pattern) else {
            continue;
        };
        round_tripped += 1;
        // The canonical form must itself parse, and be a fixed point of printing.
        let again = canonicalize(&canonical).unwrap_or_else(|e| {
            panic!("canonical pattern {canonical:?} (of {pattern:?}) failed to parse: {e}")
        });
        assert_eq!(
            canonical, again,
            "canonicalization is not idempotent for {pattern:?}"
        );
        // And it must preserve behaviour.
        let original = Regex::new(&pattern).expect("pattern parsed before");
        let printed = Regex::new(&canonical).expect("canonical form parses");
        for _ in 0..10 {
            let haystack = ascii_haystack(&mut rng, 60);
            assert_eq!(
                original.is_match(&haystack),
                printed.is_match(&haystack),
                "behaviour diverged for {pattern:?} vs {canonical:?} on {haystack:?}"
            );
            let a = original.find(&haystack);
            let b = printed.find(&haystack);
            assert_eq!(
                a, b,
                "match positions diverged for {pattern:?} on {haystack:?}"
            );
        }
    }
    assert!(round_tripped > 300, "too few valid patterns round-tripped");
}

#[test]
fn round_trip_preserves_real_world_patterns() {
    // Every pattern the workspace actually ships: the default mask rules and the
    // paper's tokenizer pattern.
    let patterns = [
        r"\d{4}-\d{2}-\d{2}[ T]\d{2}:\d{2}:\d{2}(\.\d+)?",
        r"\d{2}:\d{2}:\d{2}(\.\d+)?",
        r"\d{1,3}\.\d{1,3}\.\d{1,3}\.\d{1,3}(/\d{1,2})?(:\d{1,5})?",
        r"[0-9a-fA-F]{8}-[0-9a-fA-F]{4}-[0-9a-fA-F]{4}-[0-9a-fA-F]{4}-[0-9a-fA-F]{12}",
        r"[0-9a-f]{32}",
        r"0x[0-9a-fA-F]{4,16}",
        r"\d+(\.\d+)?(KB|MB|GB|TB|kb|mb|gb|B)",
        r"\d+(\.\d+)?(ms|us|ns|sec|secs|seconds)",
        r#"(?:://)|(?:(?:[\s'";=()\[\]{}?@&<>:\n\t\r,])|(?:\.(\s|$))|(?:\\["']))+"#,
    ];
    let haystacks = [
        "2025-04-12 08:15:12.123 INFO dfs.DataNode started",
        "Failed password for root from 183.62.140.253 port 22 ssh2",
        "request 123e4567-e89b-12d3-a456-426614174000 flag 0xDEADBEEF done",
        "allocated 512MB in 35ms",
        r#"release:lock=2337, flg=0x0, tag="View Lock", name=systemui, ws=null"#,
        "",
        "no variables here at all",
    ];
    for pattern in patterns {
        let canonical = canonicalize(pattern).expect("shipped pattern parses");
        assert_eq!(
            canonicalize(&canonical).unwrap(),
            canonical,
            "canonical form of {pattern:?} is not a fixed point"
        );
        let original = Regex::new(pattern).unwrap();
        let printed = Regex::new(&canonical).unwrap();
        for haystack in haystacks {
            assert_eq!(
                original.replace_all(haystack, "<*>"),
                printed.replace_all(haystack, "<*>"),
                "replacement diverged for {pattern:?} on {haystack:?}"
            );
        }
    }
}

#[test]
fn unicode_patterns_round_trip_bytewise() {
    let patterns = ["用户", "héllo|wörld", "日志{1,2}", "[α-ω]?"];
    for pattern in patterns {
        match canonicalize(pattern) {
            Ok(canonical) => {
                assert_eq!(canonicalize(&canonical).unwrap(), canonical);
                let original = Regex::new(pattern).unwrap();
                let printed = Regex::new(&canonical).unwrap();
                for haystack in ["用户 登录 成功", "héllo wörld", "ascii only", ""] {
                    assert_eq!(
                        original.is_match(haystack),
                        printed.is_match(haystack),
                        "unicode behaviour diverged for {pattern:?}"
                    );
                }
            }
            Err(_) => {
                // Rejection is fine (e.g. byte-range classes over multi-byte chars);
                // it just must be deterministic.
                assert!(canonicalize(pattern).is_err());
            }
        }
    }
}
