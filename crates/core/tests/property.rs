//! Randomized property tests for the core algorithm's invariants.
//!
//! Ported from proptest to seeded randomized loops (the offline build environment has
//! no proptest); every case is drawn from a fixed-seed [`StdRng`], so failures are
//! deterministic and reproducible.

use bytebrain::distance::ClusterProfile;
use bytebrain::query::merge_consecutive_wildcards;
use bytebrain::saturation::saturation;
use bytebrain::train::train;
use bytebrain::{AblationConfig, TrainConfig};
use logtok::EncodedLog;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A small corpus of random logs built from a bounded vocabulary so that structure
/// (shared templates) actually emerges.
fn corpus(rng: &mut StdRng) -> Vec<Vec<String>> {
    const VOCAB: [&str; 14] = [
        "open", "close", "read", "write", "file", "socket", "ok", "failed", "retry", "x1", "x2",
        "x3", "x4", "x5",
    ];
    let num_logs = rng.gen_range(1..40usize);
    (0..num_logs)
        .map(|_| {
            let len = rng.gen_range(1..6usize);
            (0..len)
                .map(|_| VOCAB[rng.gen_range(0..VOCAB.len())].to_string())
                .collect()
        })
        .collect()
}

/// Saturation is always within [0, 1] for any cluster of equal-length logs, under every
/// ablation variant.
#[test]
fn saturation_is_bounded() {
    let mut rng = StdRng::seed_from_u64(0xC0DE1);
    for _ in 0..60 {
        let corpus = corpus(&mut rng);
        // Group by length so profiles are well-formed.
        let mut by_len: std::collections::HashMap<usize, Vec<EncodedLog>> =
            std::collections::HashMap::new();
        for tokens in &corpus {
            by_len
                .entry(tokens.len())
                .or_default()
                .push(EncodedLog::from_tokens(tokens));
        }
        for (len, logs) in by_len {
            let profile = ClusterProfile::from_logs(len, logs.iter());
            for (_, ablation) in AblationConfig::named_variants() {
                let s = saturation(&profile, &ablation);
                assert!((0.0..=1.0).contains(&s), "saturation {s} out of range");
            }
        }
    }
}

/// Positional similarity is within [0, 1] and equals 1 for a log identical to a
/// singleton cluster's only member.
#[test]
fn similarity_is_bounded() {
    let mut rng = StdRng::seed_from_u64(0xC0DE2);
    for _ in 0..40 {
        let corpus = corpus(&mut rng);
        for tokens in &corpus {
            let log = EncodedLog::from_tokens(tokens);
            let profile = ClusterProfile::from_logs(log.len(), [&log]);
            let s = profile.similarity(&log, true);
            assert!((s - 1.0).abs() < 1e-9);
            for other in &corpus {
                if other.len() == tokens.len() {
                    let other_log = EncodedLog::from_tokens(other);
                    let sim = profile.similarity(&other_log, true);
                    assert!((0.0..=1.0 + 1e-9).contains(&sim));
                }
            }
        }
    }
}

/// Training always produces a model whose assignment (a) covers every record, (b)
/// points at templates that actually match the record's token layout, and (c) keeps
/// saturation monotone along every tree path.
#[test]
fn training_invariants() {
    let mut rng = StdRng::seed_from_u64(0xC0DE3);
    for _ in 0..30 {
        let corpus = corpus(&mut rng);
        let records: Vec<String> = corpus.iter().map(|t| t.join(" ")).collect();
        let config = TrainConfig::default();
        let outcome = train(&records, &config);
        assert_eq!(outcome.training_assignment.len(), records.len());
        for node in &outcome.model.nodes {
            if let Some(parent) = node.parent {
                let parent_node = outcome.model.node(parent).unwrap();
                assert!(node.saturation + 1e-9 >= parent_node.saturation);
            }
            assert!((0.0..=1.0).contains(&node.saturation));
        }
        // Root log counts sum to the number of records.
        assert_eq!(outcome.model.trained_records(), records.len() as u64);
    }
}

/// Wildcard merging is idempotent and never increases the number of tokens.
#[test]
fn wildcard_merging_properties() {
    let mut rng = StdRng::seed_from_u64(0xC0DE4);
    const TOKENS: [&str; 4] = ["*", "a", "b", "c"];
    for _ in 0..300 {
        let len = rng.gen_range(0..20usize);
        let tokens: Vec<&str> = (0..len).map(|_| TOKENS[rng.gen_range(0..4usize)]).collect();
        let template = tokens.join(" ");
        let once = merge_consecutive_wildcards(&template);
        let twice = merge_consecutive_wildcards(&once);
        assert_eq!(once, twice);
        assert!(once.split_whitespace().count() <= tokens.len());
        // No two consecutive wildcards survive.
        let out_tokens: Vec<&str> = once.split_whitespace().collect();
        for pair in out_tokens.windows(2) {
            assert!(!(pair[0] == "*" && pair[1] == "*"));
        }
    }
}

// ---------------------------------------------------------------------------
// Zero-copy matching equivalence (seeded; CI varies BYTEBRAIN_TEST_SEED)
// ---------------------------------------------------------------------------

/// Base seed for the adversarial cases; CI runs a small matrix of values.
fn adversarial_seed() -> u64 {
    std::env::var("BYTEBRAIN_TEST_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

/// Adversarial probe records for the matcher: trained shapes with substituted
/// values, unicode, empty lines, very long tokens, and wildcard-token injection.
fn matcher_probe(rng: &mut StdRng) -> String {
    match rng.gen_range(0..8u32) {
        0 => String::new(),
        1 => "   \t  ".to_string(),
        2 => format!(
            "job {} finished on host node-{:02} in {}ms",
            rng.gen_range(0..100_000u64),
            rng.gen_range(0..100u64),
            rng.gen_range(0..100_000u64)
        ),
        3 => format!(
            "任务 {} 在 节点 {} 完成",
            rng.gen_range(0..99u64),
            rng.gen_range(0..9u64)
        ),
        4 => format!(
            "job {} finished",
            "x".repeat(rng.gen_range(500..5_000usize))
        ),
        5 => format!("<*> {} <*>", rng.gen_range(0..50u64)),
        6 => "job <*> finished on host <*> in <*>".to_string(),
        _ => format!(
            "completely novel statement {} with {} entropy",
            rng.gen_range(0..1_000u64),
            "very ".repeat(rng.gen_range(1..200usize))
        ),
    }
}

/// The zero-copy matching paths (`match_view` through a long-lived scratch, and
/// `match_record_with_scratch`) agree with the owned-allocation `match_record` on
/// adversarial probes — same matched node, same saturation, same template.
#[test]
fn zero_copy_matching_agrees_with_owned_path() {
    use bytebrain::matcher::{match_record, match_record_with_scratch, match_tokens, match_view};
    use logtok::{Preprocessor, TokenScratch};

    let mut rng = StdRng::seed_from_u64(adversarial_seed() ^ 0xAD7E_0004);
    let mut records = Vec::new();
    for i in 0..120 {
        records.push(format!(
            "job {} finished on host node-{:02} in {}ms",
            i,
            i % 16,
            i % 500
        ));
        records.push(format!("任务 {} 在 节点 {} 完成", i, i % 4));
        records.push(format!("cache {} invalidated after {} hits", i % 9, i * 3));
    }
    let config = TrainConfig::default();
    let model = train(&records, &config).model;
    let pre = Preprocessor::new(config.preprocess.clone());
    let mut scratch = TokenScratch::new();
    for _ in 0..600 {
        let probe = matcher_probe(&mut rng);
        let owned = match_record(&model, &pre, &probe);
        let scratched = match_record_with_scratch(&model, &pre, &probe, &mut scratch);
        assert_eq!(owned, scratched, "scratch path diverged on {probe:?}");
        // The raw view path agrees with token-level matching.
        let view = pre.token_view(&probe, &mut scratch);
        let view_node = match_view(&model, &view);
        assert_eq!(owned.node, view_node, "view path diverged on {probe:?}");
        let tokens = pre.tokens_of(&probe);
        assert_eq!(
            match_tokens(&model, &tokens),
            view_node,
            "token path diverged on {probe:?}"
        );
    }
}

/// Ladder resolution and the pointer-walk reference agree with a naive full-chain
/// specification on randomly shaped trees with randomly perturbed (non-monotone)
/// saturations and random retirements — the exact conditions delta-patched trees
/// create.
#[test]
fn ladder_resolution_matches_reference_on_perturbed_trees() {
    use bytebrain::query::{clamp_threshold, resolve_with_threshold, SaturationLadder};
    use bytebrain::{NodeId, ParserModel, TemplateToken, TreeNode};

    let make_node = |sat: f64, depth: usize, retired: bool| TreeNode {
        id: NodeId(0),
        parent: None,
        children: Vec::new(),
        template: vec![TemplateToken::Const("x".into()), TemplateToken::Wildcard],
        saturation: sat,
        depth,
        log_count: 1,
        unique_count: 1,
        temporary: false,
        retired,
    };

    // The naive specification: collect the live chain coarsest-first, return the first
    // entry meeting the threshold, else the most precise live entry, else the node.
    let reference = |model: &ParserModel, node: NodeId, threshold: f64| -> NodeId {
        let threshold = clamp_threshold(threshold);
        let live: Vec<NodeId> = model
            .ancestors(node)
            .into_iter()
            .rev()
            .filter(|id| !model.nodes[id.0].retired)
            .collect();
        live.iter()
            .copied()
            .find(|id| model.nodes[id.0].saturation >= threshold)
            .or_else(|| live.last().copied())
            .unwrap_or(node)
    };

    let mut rng = StdRng::seed_from_u64(0x1ADD_E201);
    for _ in 0..80 {
        let mut model = ParserModel::new();
        let nodes = rng.gen_range(1..40usize);
        for i in 0..nodes {
            let sat = rng.gen_range(0.0..1.0f64);
            let retired = rng.gen_bool(0.2);
            let id = model.push_node(make_node(sat, 0, retired));
            if i == 0 || rng.gen_bool(0.25) {
                model.add_root(id);
            } else {
                // Attach under any earlier node: arbitrary shapes, arbitrary dips.
                let parent = NodeId(rng.gen_range(0..i));
                model.attach_child(parent, id);
                model.nodes[id.0].depth = model.nodes[parent.0].depth + 1;
            }
        }
        model.rebuild_match_order();
        let ladder = SaturationLadder::build(&model);
        for _ in 0..40 {
            let node = NodeId(rng.gen_range(0..nodes));
            let threshold = match rng.gen_range(0..10u32) {
                0 => f64::NAN,
                1 => rng.gen_range(-2.0..0.0),
                2 => rng.gen_range(1.0..3.0),
                _ => rng.gen_range(0.0..1.0),
            };
            let expected = reference(&model, node, threshold);
            assert_eq!(
                resolve_with_threshold(&model, node, threshold),
                expected,
                "pointer walk diverged from spec (node {node}, threshold {threshold})"
            );
            assert_eq!(
                ladder.resolve(node, threshold),
                expected,
                "ladder diverged from spec (node {node}, threshold {threshold})"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Automaton: patched-vs-scratch compile property + compiler/cache fuzzing
// ---------------------------------------------------------------------------

/// Record families the delta property test mixes: the base family trains the
/// initial model, drift families arrive via `train_delta` patches.
fn family_record(rng: &mut StdRng, family: u32) -> String {
    match family {
        0 => format!(
            "request {} served from cache {} in {}ms",
            rng.gen_range(0..10_000u64),
            rng.gen_range(0..6u64),
            rng.gen_range(0..900u64)
        ),
        1 => format!(
            "circuit breaker opened for upstream svc-{}",
            rng.gen_range(0..8u64)
        ),
        2 => format!(
            "gpu worker {} evicted tensor block {} after {} allocations",
            rng.gen_range(0..8u64),
            rng.gen_range(0..500u64),
            rng.gen_range(1..10_000u64)
        ),
        _ => format!(
            "节点 {} 重新加载配置 版本 {}",
            rng.gen_range(0..9u64),
            rng.gen_range(0..400u64)
        ),
    }
}

/// After **any** random sequence of `train_delta`/`apply_delta` patches
/// (appends, absorptions, retirements), temporary insertions, manual
/// retirements and saturation perturbations, the incrementally patched
/// automaton (`refreshed` chained snapshot-to-snapshot) is *structurally
/// identical* to a from-scratch compile of the same live template set — equal
/// canonical forms — and both agree with the tree walker on probe records.
#[test]
fn patched_automaton_equals_scratch_compile_after_random_deltas() {
    use bytebrain::incremental::{apply_delta, train_delta};
    use bytebrain::matcher::match_tokens;
    use bytebrain::{CompiledMatcher, NodeId};
    use logtok::Preprocessor;

    let mut rng = StdRng::seed_from_u64(adversarial_seed() ^ 0xA070_0001);
    let config = TrainConfig::default();
    let pre = Preprocessor::new(config.preprocess.clone());

    for case in 0..5 {
        let warm: Vec<String> = (0..rng.gen_range(40..120usize))
            .map(|_| family_record(&mut rng, 0))
            .collect();
        let mut model = train(&warm, &config).model;
        let mut compiled = CompiledMatcher::compile(&model);

        for step in 0..10 {
            match rng.gen_range(0..4u32) {
                // Incremental maintenance: train a delta on a drift batch and
                // fold it in (absorbs temporaries, appends/patches nodes).
                0 => {
                    let family = rng.gen_range(1..4u32);
                    let batch: Vec<String> = (0..rng.gen_range(5..40usize))
                        .map(|_| family_record(&mut rng, family))
                        .collect();
                    let delta = train_delta(&model, &batch, &config, 0.6);
                    model = apply_delta(&model, &delta);
                }
                // Online matching inserts a temporary for an unmatched log.
                1 => {
                    let family = rng.gen_range(0..4u32);
                    let line = family_record(&mut rng, family);
                    let tokens = pre.tokens_of(&format!("novel {step} {line}"));
                    model.insert_temporary(&tokens);
                }
                // Retire a random live node (the shape rewritten templates and
                // absorbed temporaries leave behind).
                2 => {
                    let live: Vec<NodeId> = model
                        .nodes
                        .iter()
                        .filter(|n| !n.retired)
                        .map(|n| n.id)
                        .collect();
                    if !live.is_empty() {
                        model.retire(live[rng.gen_range(0..live.len())]);
                        model.rebuild_match_order();
                    }
                }
                // Saturation drift: reorders the match order without touching
                // any template text — ranks must still refresh.
                _ => {
                    if !model.nodes.is_empty() {
                        let idx = rng.gen_range(0..model.nodes.len());
                        model.nodes[idx].saturation = rng.gen_range(0.0..1.0);
                        model.rebuild_match_order();
                    }
                }
            }

            compiled = compiled.refreshed(&model);
            let scratch_compile = CompiledMatcher::compile(&model);
            assert_eq!(
                compiled.canonical_form(),
                scratch_compile.canonical_form(),
                "patched compile diverged from scratch compile (case {case}, step {step})"
            );
            assert_eq!(compiled.live_templates(), scratch_compile.live_templates());
            assert_ne!(
                compiled.generation(),
                scratch_compile.generation(),
                "snapshots must have distinct generations"
            );

            for _ in 0..25 {
                let family = rng.gen_range(0..4u32);
                let probe = family_record(&mut rng, family);
                let tokens = pre.tokens_of(&probe);
                let tree = match_tokens(&model, &tokens);
                assert_eq!(
                    compiled.match_tokens(&tokens),
                    tree,
                    "patched automaton diverged from tree walk on {probe:?}"
                );
                assert_eq!(
                    scratch_compile.match_tokens(&tokens),
                    tree,
                    "scratch automaton diverged from tree walk on {probe:?}"
                );
            }
        }
    }
}

/// Every DFA encoding — sparse binary-search edges, fully dense rows, and the
/// hybrid (dense rows for hot states only) — produces **byte-identical**
/// assignments to the tree walk, and to each other, across random
/// delta/retire/temporary sequences with mid-stream hot-swaps. The hashed
/// match cache, probed across snapshot swaps, must agree with every engine.
#[test]
fn dense_sparse_hybrid_encodings_are_byte_identical() {
    use bytebrain::incremental::{apply_delta, train_delta};
    use bytebrain::matcher::match_tokens;
    use bytebrain::{CompiledMatcher, DfaEncoding, MatchCache, NodeId};
    use logtok::{Preprocessor, TokenScratch};

    let mut rng = StdRng::seed_from_u64(adversarial_seed() ^ 0xDE2E_0002);
    let config = TrainConfig::default();
    let pre = Preprocessor::new(config.preprocess.clone());
    let mut scratch = TokenScratch::new();

    for case in 0..4 {
        let warm: Vec<String> = (0..rng.gen_range(40..120usize))
            .map(|_| family_record(&mut rng, 0))
            .collect();
        let mut model = train(&warm, &config).model;
        let mut engines = [
            (
                "sparse",
                CompiledMatcher::compile_with_encoding(&model, DfaEncoding::Sparse),
            ),
            (
                "dense",
                CompiledMatcher::compile_with_encoding(&model, DfaEncoding::Dense),
            ),
            (
                "hybrid",
                CompiledMatcher::compile_with_encoding(&model, DfaEncoding::Hybrid),
            ),
        ];
        // One cache per engine, kept *across* hot-swaps: generation
        // invalidation (not staleness) must keep hits equal to misses.
        let mut caches = [
            MatchCache::new(64),
            MatchCache::new(64),
            MatchCache::new(64),
        ];

        for step in 0..8 {
            match rng.gen_range(0..4u32) {
                0 => {
                    let family = rng.gen_range(1..4u32);
                    let batch: Vec<String> = (0..rng.gen_range(5..40usize))
                        .map(|_| family_record(&mut rng, family))
                        .collect();
                    let delta = train_delta(&model, &batch, &config, 0.6);
                    model = apply_delta(&model, &delta);
                }
                1 => {
                    let family = rng.gen_range(0..4u32);
                    let line = family_record(&mut rng, family);
                    let tokens = pre.tokens_of(&format!("novel {step} {line}"));
                    model.insert_temporary(&tokens);
                }
                2 => {
                    let live: Vec<NodeId> = model
                        .nodes
                        .iter()
                        .filter(|n| !n.retired)
                        .map(|n| n.id)
                        .collect();
                    if !live.is_empty() {
                        model.retire(live[rng.gen_range(0..live.len())]);
                        model.rebuild_match_order();
                    }
                }
                _ => {
                    if !model.nodes.is_empty() {
                        let idx = rng.gen_range(0..model.nodes.len());
                        model.nodes[idx].saturation = rng.gen_range(0.0..1.0);
                        model.rebuild_match_order();
                    }
                }
            }

            // Mid-stream hot-swap: every engine refreshes from its previous
            // snapshot (dense rows patched in place, symbols possibly
            // compacted), never from scratch.
            for (_, engine) in engines.iter_mut() {
                *engine = engine.refreshed(&model);
            }
            let [(_, sparse), (_, dense), (_, hybrid)] = &engines;
            assert_eq!(
                sparse.canonical_form(),
                dense.canonical_form(),
                "sparse/dense canonical forms diverged (case {case}, step {step})"
            );
            assert_eq!(
                sparse.canonical_form(),
                hybrid.canonical_form(),
                "sparse/hybrid canonical forms diverged (case {case}, step {step})"
            );

            for _ in 0..30 {
                let probe = if rng.gen_bool(0.8) {
                    let family = rng.gen_range(0..4u32);
                    family_record(&mut rng, family)
                } else {
                    fuzz_line(&mut rng)
                };
                let tokens = pre.tokens_of(&probe);
                let tree = match_tokens(&model, &tokens);
                for ((name, engine), cache) in engines.iter().zip(caches.iter_mut()) {
                    assert_eq!(
                        engine.match_tokens(&tokens),
                        tree,
                        "{name} diverged from tree walk (case {case}, step {step}, {probe:?})"
                    );
                    let cached = cache.match_record(engine, &pre, &mut scratch, &probe);
                    assert_eq!(
                        cached, tree,
                        "{name} hashed cache diverged (case {case}, step {step}, {probe:?})"
                    );
                }
            }
        }
        // The hybrid engine actually exercised the dense path somewhere in the
        // run (otherwise this test silently degrades to sparse-vs-sparse).
        let [(_, _), (_, dense), (_, hybrid)] = &engines;
        assert!(dense.dense_states() > 0, "dense engine granted no rows");
        assert!(
            hybrid.dense_states() <= dense.dense_states(),
            "hybrid granted more rows than dense"
        );
    }
}

/// Arbitrary masked-token line for the compiler/cache fuzzer: unicode, empty
/// lines, whitespace-only lines, 20k-char tokens, wildcard-token injection,
/// control characters, and very wide lines.
fn fuzz_line(rng: &mut StdRng) -> String {
    match rng.gen_range(0..10u32) {
        0 => String::new(),
        1 => " \t \u{00a0} ".to_string(),
        2 => format!("x{}", "y".repeat(rng.gen_range(10_000..20_000usize))),
        3 => {
            let n = rng.gen_range(1..12usize);
            (0..n)
                .map(|_| if rng.gen_bool(0.7) { "<*>" } else { "lit" })
                .collect::<Vec<_>>()
                .join(" ")
        }
        4 => format!(
            "任务 {} 在 节点 {} 完成 ✓ λ=∞",
            rng.gen_range(0..99u64),
            rng.gen_range(0..9u64)
        ),
        5 => format!("ctl\u{1}chars\u{7f}here {}", rng.gen_range(0..100u64)),
        6 => "tok ".repeat(rng.gen_range(1..400usize)),
        7 => format!(
            "job {} finished on host node-{:02} in {}ms",
            rng.gen_range(0..100_000u64),
            rng.gen_range(0..100u64),
            rng.gen_range(0..100_000u64)
        ),
        8 => format!("<*> {} <*> <*>", rng.gen_range(0..50u64)),
        _ => {
            let n = rng.gen_range(0..8usize);
            (0..n)
                .map(|_| {
                    let c = char::from_u32(rng.gen_range(0x21..0x2_00AD_u32) % 0xD700 + 0x21)
                        .unwrap_or('?');
                    format!("{c}{}", rng.gen_range(0..10u32))
                })
                .collect::<Vec<_>>()
                .join(" ")
        }
    }
}

/// The compiler and the match cache never panic on arbitrary input — models
/// trained on fuzzed corpora plus fuzzed temporary templates, matched against
/// fuzzed probes through both the DFA and the forced-NFA fallback — and cache
/// hits always return the same assignment as cache misses.
#[test]
fn fuzz_compiler_and_match_cache_on_arbitrary_lines() {
    use bytebrain::matcher::match_tokens;
    use bytebrain::{CompiledMatcher, MatchCache};
    use logtok::{Preprocessor, TokenScratch};

    let mut rng = StdRng::seed_from_u64(adversarial_seed() ^ 0xF0_22ED);
    let config = TrainConfig::default();
    let pre = Preprocessor::new(config.preprocess.clone());
    let mut scratch = TokenScratch::new();

    for case in 0..8 {
        let corpus: Vec<String> = (0..rng.gen_range(1..50usize))
            .map(|_| fuzz_line(&mut rng))
            .collect();
        let mut model = train(&corpus, &config).model;
        // Fuzzed temporaries: raw token sequences, including wildcard-text
        // tokens and empty templates.
        for _ in 0..rng.gen_range(0..8usize) {
            let tokens = pre.tokens_of(&fuzz_line(&mut rng));
            model.insert_temporary(&tokens);
        }

        // Tiny determinization cap forces the NFA fallback; both execution
        // modes must survive and agree with the tree walker.
        let dfa = CompiledMatcher::compile(&model);
        let nfa = CompiledMatcher::compile_with_limit(&model, 2);
        for (mode, compiled) in [("dfa", &dfa), ("nfa", &nfa)] {
            if mode == "nfa" && !compiled.uses_nfa_fallback() {
                // Trivial template sets may determinize under any cap; the
                // larger cases in the loop still exercise the fallback.
                continue;
            }
            let mut cache = MatchCache::new(16);
            let mut probes = Vec::new();
            for _ in 0..150 {
                let probe = fuzz_line(&mut rng);
                let tokens = pre.tokens_of(&probe);
                let direct = compiled.match_tokens(&tokens);
                assert_eq!(
                    direct,
                    match_tokens(&model, &tokens),
                    "{mode} diverged from tree walk (case {case}, probe {probe:?})"
                );
                let miss = cache.match_record(compiled, &pre, &mut scratch, &probe);
                assert_eq!(miss, direct, "cache miss diverged on {probe:?}");
                probes.push((probe, direct));
            }
            // Replay every probe: hit or (evicted) re-miss, same assignment.
            for (probe, expected) in &probes {
                let replay = cache.match_record(compiled, &pre, &mut scratch, probe);
                assert_eq!(
                    replay, *expected,
                    "{mode} cache replay diverged (case {case}, probe {probe:?})"
                );
            }
            let (hits, misses) = cache.stats();
            assert!(hits > 0, "replay must produce cache hits");
            assert!(misses >= 150, "first pass must miss");
            assert!(cache.len() <= 32, "cache exceeded its bound");
        }
    }
}
