//! Randomized property tests for the core algorithm's invariants.
//!
//! Ported from proptest to seeded randomized loops (the offline build environment has
//! no proptest); every case is drawn from a fixed-seed [`StdRng`], so failures are
//! deterministic and reproducible.

use bytebrain::distance::ClusterProfile;
use bytebrain::query::merge_consecutive_wildcards;
use bytebrain::saturation::saturation;
use bytebrain::train::train;
use bytebrain::{AblationConfig, TrainConfig};
use logtok::EncodedLog;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A small corpus of random logs built from a bounded vocabulary so that structure
/// (shared templates) actually emerges.
fn corpus(rng: &mut StdRng) -> Vec<Vec<String>> {
    const VOCAB: [&str; 14] = [
        "open", "close", "read", "write", "file", "socket", "ok", "failed", "retry", "x1", "x2",
        "x3", "x4", "x5",
    ];
    let num_logs = rng.gen_range(1..40usize);
    (0..num_logs)
        .map(|_| {
            let len = rng.gen_range(1..6usize);
            (0..len)
                .map(|_| VOCAB[rng.gen_range(0..VOCAB.len())].to_string())
                .collect()
        })
        .collect()
}

/// Saturation is always within [0, 1] for any cluster of equal-length logs, under every
/// ablation variant.
#[test]
fn saturation_is_bounded() {
    let mut rng = StdRng::seed_from_u64(0xC0DE1);
    for _ in 0..60 {
        let corpus = corpus(&mut rng);
        // Group by length so profiles are well-formed.
        let mut by_len: std::collections::HashMap<usize, Vec<EncodedLog>> =
            std::collections::HashMap::new();
        for tokens in &corpus {
            by_len
                .entry(tokens.len())
                .or_default()
                .push(EncodedLog::from_tokens(tokens));
        }
        for (len, logs) in by_len {
            let profile = ClusterProfile::from_logs(len, logs.iter());
            for (_, ablation) in AblationConfig::named_variants() {
                let s = saturation(&profile, &ablation);
                assert!((0.0..=1.0).contains(&s), "saturation {s} out of range");
            }
        }
    }
}

/// Positional similarity is within [0, 1] and equals 1 for a log identical to a
/// singleton cluster's only member.
#[test]
fn similarity_is_bounded() {
    let mut rng = StdRng::seed_from_u64(0xC0DE2);
    for _ in 0..40 {
        let corpus = corpus(&mut rng);
        for tokens in &corpus {
            let log = EncodedLog::from_tokens(tokens);
            let profile = ClusterProfile::from_logs(log.len(), [&log]);
            let s = profile.similarity(&log, true);
            assert!((s - 1.0).abs() < 1e-9);
            for other in &corpus {
                if other.len() == tokens.len() {
                    let other_log = EncodedLog::from_tokens(other);
                    let sim = profile.similarity(&other_log, true);
                    assert!((0.0..=1.0 + 1e-9).contains(&sim));
                }
            }
        }
    }
}

/// Training always produces a model whose assignment (a) covers every record, (b)
/// points at templates that actually match the record's token layout, and (c) keeps
/// saturation monotone along every tree path.
#[test]
fn training_invariants() {
    let mut rng = StdRng::seed_from_u64(0xC0DE3);
    for _ in 0..30 {
        let corpus = corpus(&mut rng);
        let records: Vec<String> = corpus.iter().map(|t| t.join(" ")).collect();
        let config = TrainConfig::default();
        let outcome = train(&records, &config);
        assert_eq!(outcome.training_assignment.len(), records.len());
        for node in &outcome.model.nodes {
            if let Some(parent) = node.parent {
                let parent_node = outcome.model.node(parent).unwrap();
                assert!(node.saturation + 1e-9 >= parent_node.saturation);
            }
            assert!((0.0..=1.0).contains(&node.saturation));
        }
        // Root log counts sum to the number of records.
        assert_eq!(outcome.model.trained_records(), records.len() as u64);
    }
}

/// Wildcard merging is idempotent and never increases the number of tokens.
#[test]
fn wildcard_merging_properties() {
    let mut rng = StdRng::seed_from_u64(0xC0DE4);
    const TOKENS: [&str; 4] = ["*", "a", "b", "c"];
    for _ in 0..300 {
        let len = rng.gen_range(0..20usize);
        let tokens: Vec<&str> = (0..len).map(|_| TOKENS[rng.gen_range(0..4usize)]).collect();
        let template = tokens.join(" ");
        let once = merge_consecutive_wildcards(&template);
        let twice = merge_consecutive_wildcards(&once);
        assert_eq!(once, twice);
        assert!(once.split_whitespace().count() <= tokens.len());
        // No two consecutive wildcards survive.
        let out_tokens: Vec<&str> = once.split_whitespace().collect();
        for pair in out_tokens.windows(2) {
            assert!(!(pair[0] == "*" && pair[1] == "*"));
        }
    }
}

// ---------------------------------------------------------------------------
// Zero-copy matching equivalence (seeded; CI varies BYTEBRAIN_TEST_SEED)
// ---------------------------------------------------------------------------

/// Base seed for the adversarial cases; CI runs a small matrix of values.
fn adversarial_seed() -> u64 {
    std::env::var("BYTEBRAIN_TEST_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

/// Adversarial probe records for the matcher: trained shapes with substituted
/// values, unicode, empty lines, very long tokens, and wildcard-token injection.
fn matcher_probe(rng: &mut StdRng) -> String {
    match rng.gen_range(0..8u32) {
        0 => String::new(),
        1 => "   \t  ".to_string(),
        2 => format!(
            "job {} finished on host node-{:02} in {}ms",
            rng.gen_range(0..100_000u64),
            rng.gen_range(0..100u64),
            rng.gen_range(0..100_000u64)
        ),
        3 => format!(
            "任务 {} 在 节点 {} 完成",
            rng.gen_range(0..99u64),
            rng.gen_range(0..9u64)
        ),
        4 => format!(
            "job {} finished",
            "x".repeat(rng.gen_range(500..5_000usize))
        ),
        5 => format!("<*> {} <*>", rng.gen_range(0..50u64)),
        6 => "job <*> finished on host <*> in <*>".to_string(),
        _ => format!(
            "completely novel statement {} with {} entropy",
            rng.gen_range(0..1_000u64),
            "very ".repeat(rng.gen_range(1..200usize))
        ),
    }
}

/// The zero-copy matching paths (`match_view` through a long-lived scratch, and
/// `match_record_with_scratch`) agree with the owned-allocation `match_record` on
/// adversarial probes — same matched node, same saturation, same template.
#[test]
fn zero_copy_matching_agrees_with_owned_path() {
    use bytebrain::matcher::{match_record, match_record_with_scratch, match_tokens, match_view};
    use logtok::{Preprocessor, TokenScratch};

    let mut rng = StdRng::seed_from_u64(adversarial_seed() ^ 0xAD7E_0004);
    let mut records = Vec::new();
    for i in 0..120 {
        records.push(format!(
            "job {} finished on host node-{:02} in {}ms",
            i,
            i % 16,
            i % 500
        ));
        records.push(format!("任务 {} 在 节点 {} 完成", i, i % 4));
        records.push(format!("cache {} invalidated after {} hits", i % 9, i * 3));
    }
    let config = TrainConfig::default();
    let model = train(&records, &config).model;
    let pre = Preprocessor::new(config.preprocess.clone());
    let mut scratch = TokenScratch::new();
    for _ in 0..600 {
        let probe = matcher_probe(&mut rng);
        let owned = match_record(&model, &pre, &probe);
        let scratched = match_record_with_scratch(&model, &pre, &probe, &mut scratch);
        assert_eq!(owned, scratched, "scratch path diverged on {probe:?}");
        // The raw view path agrees with token-level matching.
        let view = pre.token_view(&probe, &mut scratch);
        let view_node = match_view(&model, &view);
        assert_eq!(owned.node, view_node, "view path diverged on {probe:?}");
        let tokens = pre.tokens_of(&probe);
        assert_eq!(
            match_tokens(&model, &tokens),
            view_node,
            "token path diverged on {probe:?}"
        );
    }
}

/// Ladder resolution and the pointer-walk reference agree with a naive full-chain
/// specification on randomly shaped trees with randomly perturbed (non-monotone)
/// saturations and random retirements — the exact conditions delta-patched trees
/// create.
#[test]
fn ladder_resolution_matches_reference_on_perturbed_trees() {
    use bytebrain::query::{clamp_threshold, resolve_with_threshold, SaturationLadder};
    use bytebrain::{NodeId, ParserModel, TemplateToken, TreeNode};

    let make_node = |sat: f64, depth: usize, retired: bool| TreeNode {
        id: NodeId(0),
        parent: None,
        children: Vec::new(),
        template: vec![TemplateToken::Const("x".into()), TemplateToken::Wildcard],
        saturation: sat,
        depth,
        log_count: 1,
        unique_count: 1,
        temporary: false,
        retired,
    };

    // The naive specification: collect the live chain coarsest-first, return the first
    // entry meeting the threshold, else the most precise live entry, else the node.
    let reference = |model: &ParserModel, node: NodeId, threshold: f64| -> NodeId {
        let threshold = clamp_threshold(threshold);
        let live: Vec<NodeId> = model
            .ancestors(node)
            .into_iter()
            .rev()
            .filter(|id| !model.nodes[id.0].retired)
            .collect();
        live.iter()
            .copied()
            .find(|id| model.nodes[id.0].saturation >= threshold)
            .or_else(|| live.last().copied())
            .unwrap_or(node)
    };

    let mut rng = StdRng::seed_from_u64(0x1ADD_E201);
    for _ in 0..80 {
        let mut model = ParserModel::new();
        let nodes = rng.gen_range(1..40usize);
        for i in 0..nodes {
            let sat = rng.gen_range(0.0..1.0f64);
            let retired = rng.gen_bool(0.2);
            let id = model.push_node(make_node(sat, 0, retired));
            if i == 0 || rng.gen_bool(0.25) {
                model.add_root(id);
            } else {
                // Attach under any earlier node: arbitrary shapes, arbitrary dips.
                let parent = NodeId(rng.gen_range(0..i));
                model.attach_child(parent, id);
                model.nodes[id.0].depth = model.nodes[parent.0].depth + 1;
            }
        }
        model.rebuild_match_order();
        let ladder = SaturationLadder::build(&model);
        for _ in 0..40 {
            let node = NodeId(rng.gen_range(0..nodes));
            let threshold = match rng.gen_range(0..10u32) {
                0 => f64::NAN,
                1 => rng.gen_range(-2.0..0.0),
                2 => rng.gen_range(1.0..3.0),
                _ => rng.gen_range(0.0..1.0),
            };
            let expected = reference(&model, node, threshold);
            assert_eq!(
                resolve_with_threshold(&model, node, threshold),
                expected,
                "pointer walk diverged from spec (node {node}, threshold {threshold})"
            );
            assert_eq!(
                ladder.resolve(node, threshold),
                expected,
                "ladder diverged from spec (node {node}, threshold {threshold})"
            );
        }
    }
}
