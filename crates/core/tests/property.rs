//! Randomized property tests for the core algorithm's invariants.
//!
//! Ported from proptest to seeded randomized loops (the offline build environment has
//! no proptest); every case is drawn from a fixed-seed [`StdRng`], so failures are
//! deterministic and reproducible.

use bytebrain::distance::ClusterProfile;
use bytebrain::query::merge_consecutive_wildcards;
use bytebrain::saturation::saturation;
use bytebrain::train::train;
use bytebrain::{AblationConfig, TrainConfig};
use logtok::EncodedLog;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A small corpus of random logs built from a bounded vocabulary so that structure
/// (shared templates) actually emerges.
fn corpus(rng: &mut StdRng) -> Vec<Vec<String>> {
    const VOCAB: [&str; 14] = [
        "open", "close", "read", "write", "file", "socket", "ok", "failed", "retry", "x1", "x2",
        "x3", "x4", "x5",
    ];
    let num_logs = rng.gen_range(1..40usize);
    (0..num_logs)
        .map(|_| {
            let len = rng.gen_range(1..6usize);
            (0..len)
                .map(|_| VOCAB[rng.gen_range(0..VOCAB.len())].to_string())
                .collect()
        })
        .collect()
}

/// Saturation is always within [0, 1] for any cluster of equal-length logs, under every
/// ablation variant.
#[test]
fn saturation_is_bounded() {
    let mut rng = StdRng::seed_from_u64(0xC0DE1);
    for _ in 0..60 {
        let corpus = corpus(&mut rng);
        // Group by length so profiles are well-formed.
        let mut by_len: std::collections::HashMap<usize, Vec<EncodedLog>> =
            std::collections::HashMap::new();
        for tokens in &corpus {
            by_len
                .entry(tokens.len())
                .or_default()
                .push(EncodedLog::from_tokens(tokens));
        }
        for (len, logs) in by_len {
            let profile = ClusterProfile::from_logs(len, logs.iter());
            for (_, ablation) in AblationConfig::named_variants() {
                let s = saturation(&profile, &ablation);
                assert!((0.0..=1.0).contains(&s), "saturation {s} out of range");
            }
        }
    }
}

/// Positional similarity is within [0, 1] and equals 1 for a log identical to a
/// singleton cluster's only member.
#[test]
fn similarity_is_bounded() {
    let mut rng = StdRng::seed_from_u64(0xC0DE2);
    for _ in 0..40 {
        let corpus = corpus(&mut rng);
        for tokens in &corpus {
            let log = EncodedLog::from_tokens(tokens);
            let profile = ClusterProfile::from_logs(log.len(), [&log]);
            let s = profile.similarity(&log, true);
            assert!((s - 1.0).abs() < 1e-9);
            for other in &corpus {
                if other.len() == tokens.len() {
                    let other_log = EncodedLog::from_tokens(other);
                    let sim = profile.similarity(&other_log, true);
                    assert!((0.0..=1.0 + 1e-9).contains(&sim));
                }
            }
        }
    }
}

/// Training always produces a model whose assignment (a) covers every record, (b)
/// points at templates that actually match the record's token layout, and (c) keeps
/// saturation monotone along every tree path.
#[test]
fn training_invariants() {
    let mut rng = StdRng::seed_from_u64(0xC0DE3);
    for _ in 0..30 {
        let corpus = corpus(&mut rng);
        let records: Vec<String> = corpus.iter().map(|t| t.join(" ")).collect();
        let config = TrainConfig::default();
        let outcome = train(&records, &config);
        assert_eq!(outcome.training_assignment.len(), records.len());
        for node in &outcome.model.nodes {
            if let Some(parent) = node.parent {
                let parent_node = outcome.model.node(parent).unwrap();
                assert!(node.saturation + 1e-9 >= parent_node.saturation);
            }
            assert!((0.0..=1.0).contains(&node.saturation));
        }
        // Root log counts sum to the number of records.
        assert_eq!(outcome.model.trained_records(), records.len() as u64);
    }
}

/// Wildcard merging is idempotent and never increases the number of tokens.
#[test]
fn wildcard_merging_properties() {
    let mut rng = StdRng::seed_from_u64(0xC0DE4);
    const TOKENS: [&str; 4] = ["*", "a", "b", "c"];
    for _ in 0..300 {
        let len = rng.gen_range(0..20usize);
        let tokens: Vec<&str> = (0..len).map(|_| TOKENS[rng.gen_range(0..4usize)]).collect();
        let template = tokens.join(" ");
        let once = merge_consecutive_wildcards(&template);
        let twice = merge_consecutive_wildcards(&once);
        assert_eq!(once, twice);
        assert!(once.split_whitespace().count() <= tokens.len());
        // No two consecutive wildcards survive.
        let out_tokens: Vec<&str> = once.split_whitespace().collect();
        for pair in out_tokens.windows(2) {
            assert!(!(pair[0] == "*" && pair[1] == "*"));
        }
    }
}
