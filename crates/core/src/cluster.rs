//! Hierarchical clustering of one initial group (§4.3–§4.7).
//!
//! Every initial group becomes the root of a clustering tree. A node is split by the
//! *single clustering process* (§4.4): a K-Means-style iteration using the positional
//! similarity distance, seeded K-Means++-style, that grows the number of clusters whenever
//! a cluster's saturation fails to improve on its parent. Nodes stop splitting when their
//! saturation reaches the target (§4.5), when an early-stop rule applies (§4.7), or when a
//! split cannot separate the members any further.

use crate::config::TrainConfig;
use crate::distance::ClusterProfile;
use crate::saturation::{breakdown, saturation};
use crate::tree::TemplateToken;
use logtok::UniqueLog;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A node of the per-group clustering tree, using indices local to the group.
#[derive(Debug, Clone)]
pub struct LocalNode {
    /// Indices (into the group's unique-log slice) of the member logs.
    pub members: Vec<usize>,
    /// Parent node index within the local tree.
    pub parent: Option<usize>,
    /// Child node indices within the local tree.
    pub children: Vec<usize>,
    /// Saturation score.
    pub saturation: f64,
    /// Depth within the group tree (root = 0).
    pub depth: usize,
    /// Rendered template.
    pub template: Vec<TemplateToken>,
    /// Total raw-record count covered.
    pub log_count: u64,
}

/// Build the clustering tree for one initial group. `logs` are the group's unique logs
/// (all with the same token count); the returned vector's first element is the root.
pub fn cluster_group(logs: &[UniqueLog], config: &TrainConfig, seed: u64) -> Vec<LocalNode> {
    let mut rng = StdRng::seed_from_u64(seed);
    let all_members: Vec<usize> = (0..logs.len()).collect();
    let mut nodes: Vec<LocalNode> = Vec::new();
    let root = make_node(logs, all_members, None, 0, config);
    nodes.push(root);
    let mut work = vec![0usize];

    while let Some(node_idx) = work.pop() {
        let (members, node_saturation, depth) = {
            let n = &nodes[node_idx];
            (n.members.clone(), n.saturation, n.depth)
        };
        if members.len() <= 1
            || node_saturation >= config.saturation_target
            || depth >= config.max_depth
        {
            continue;
        }
        let Some(clusters) = split_members(logs, &members, node_saturation, config, &mut rng)
        else {
            continue;
        };
        for cluster in clusters {
            let child_idx = nodes.len();
            let child = make_node(logs, cluster, Some(node_idx), depth + 1, config);
            // Saturation must not decrease from parent to child; clamp for the pathological
            // cases where floating point noise or a forced split would violate it.
            let child_saturation = child.saturation.max(node_saturation);
            nodes.push(LocalNode {
                saturation: child_saturation,
                ..child
            });
            nodes[node_idx].children.push(child_idx);
            work.push(child_idx);
        }
    }
    nodes
}

/// Construct a node (template + saturation) for a set of member logs.
fn make_node(
    logs: &[UniqueLog],
    members: Vec<usize>,
    parent: Option<usize>,
    depth: usize,
    config: &TrainConfig,
) -> LocalNode {
    let num_positions = members.first().map(|&i| logs[i].encoded.len()).unwrap_or(0);
    let profile =
        ClusterProfile::from_logs(num_positions, members.iter().map(|&i| &logs[i].encoded));
    let node_saturation = saturation(&profile, &config.ablation);
    let template = render_template(logs, &members, &profile);
    let log_count = members.iter().map(|&i| logs[i].encoded.count).sum();
    LocalNode {
        members,
        parent,
        children: Vec::new(),
        saturation: node_saturation,
        depth,
        template,
        log_count,
    }
}

/// Render the template of a member set: constant positions keep their token text, others
/// become wildcards.
fn render_template(
    logs: &[UniqueLog],
    members: &[usize],
    profile: &ClusterProfile,
) -> Vec<TemplateToken> {
    let Some(&first) = members.first() else {
        return Vec::new();
    };
    let example = &logs[first].encoded;
    (0..profile.num_positions())
        .map(|i| {
            if profile.distinct_at(i) <= 1 {
                TemplateToken::Const(example.tokens[i].clone())
            } else {
                TemplateToken::Wildcard
            }
        })
        .collect()
}

/// The single clustering process (§4.4). Returns the member partition, or `None` when the
/// node should stay a leaf (early stop, or no meaningful split exists).
fn split_members(
    logs: &[UniqueLog],
    members: &[usize],
    parent_saturation: f64,
    config: &TrainConfig,
    rng: &mut StdRng,
) -> Option<Vec<Vec<usize>>> {
    let ablation = &config.ablation;
    let num_positions = logs[members[0]].encoded.len();
    if num_positions == 0 {
        return None;
    }
    let parent_profile =
        ClusterProfile::from_logs(num_positions, members.iter().map(|&i| &logs[i].encoded));

    // Early-stop rules (§4.7).
    if ablation.early_stopping {
        // (1) Few logs: two or fewer distinct logs form one cluster each.
        if members.len() <= 2 {
            return if members.len() == 2 {
                Some(vec![vec![members[0]], vec![members[1]]])
            } else {
                None
            };
        }
        let parts = breakdown(&parent_profile);
        // (2) A single unresolved position cannot increase saturation by splitting.
        if parts.unresolved.len() == 1 && parts.completely_distinct.is_empty() {
            return None;
        }
        // (3) Completely distinct unresolved positions: every log is inherently its own
        // cluster.
        if !parts.unresolved.is_empty() && parts.unresolved.len() == parts.completely_distinct.len()
        {
            return Some(members.iter().map(|&m| vec![m]).collect());
        }
    } else if members.len() <= 1 {
        return None;
    }

    // --- K-Means-style refinement -------------------------------------------------------
    // Seeding: first centre random; second centre farthest from the first (K-Means++-like)
    // unless the ablation asks for random centroid selection.
    let first = members[rng.gen_range(0..members.len())];
    let second = if ablation.kmeanspp_centroids {
        let seed_profile = ClusterProfile::from_logs(num_positions, [&logs[first].encoded]);
        *members.iter().filter(|&&m| m != first).max_by(|&&a, &&b| {
            let da = seed_profile.distance(&logs[a].encoded, ablation.position_importance);
            let db = seed_profile.distance(&logs[b].encoded, ablation.position_importance);
            da.partial_cmp(&db).unwrap_or(std::cmp::Ordering::Equal)
        })?
    } else {
        // Random distinct member.
        let candidates: Vec<usize> = members.iter().copied().filter(|&m| m != first).collect();
        if candidates.is_empty() {
            return None;
        }
        candidates[rng.gen_range(0..candidates.len())]
    };

    let mut profiles: Vec<ClusterProfile> = vec![
        ClusterProfile::from_logs(num_positions, [&logs[first].encoded]),
        ClusterProfile::from_logs(num_positions, [&logs[second].encoded]),
    ];
    let mut assignment: Vec<Option<usize>> = vec![None; members.len()];

    for _iteration in 0..config.max_cluster_iters {
        // Assignment step.
        let mut changed = false;
        let mut new_profiles: Vec<ClusterProfile> = profiles
            .iter()
            .map(|_| ClusterProfile::new(num_positions))
            .collect();
        for (slot, &member) in members.iter().enumerate() {
            let log = &logs[member].encoded;
            let mut best = Vec::new();
            let mut best_distance = f64::INFINITY;
            for (cluster_idx, profile) in profiles.iter().enumerate() {
                if profile.is_empty() {
                    continue;
                }
                let d = profile.distance(log, ablation.position_importance);
                if d < best_distance - 1e-12 {
                    best_distance = d;
                    best.clear();
                    best.push(cluster_idx);
                } else if (d - best_distance).abs() <= 1e-12 {
                    best.push(cluster_idx);
                }
            }
            let chosen = if best.is_empty() {
                0
            } else if best.len() == 1 || !ablation.balanced_grouping {
                best[0]
            } else {
                // Balanced grouping (§4.6): break ties uniformly at random.
                best[rng.gen_range(0..best.len())]
            };
            if assignment[slot] != Some(chosen) {
                changed = true;
                assignment[slot] = Some(chosen);
            }
            new_profiles[chosen].add(log);
        }
        profiles = new_profiles;

        // Growth step: when a non-trivial cluster fails to improve on the parent's
        // saturation, add a cluster seeded by the member farthest from every centre.
        let mut needs_growth = false;
        if ablation.ensure_saturation_increase {
            for profile in &profiles {
                if profile.unique_count() > 1
                    && saturation(profile, ablation) <= parent_saturation + 1e-12
                {
                    needs_growth = true;
                    break;
                }
            }
        }
        let position_bound = num_positions + 1;
        if needs_growth && profiles.len() < position_bound.min(members.len()) {
            let farthest = members
                .iter()
                .copied()
                .max_by(|&a, &b| {
                    let da =
                        min_distance(&profiles, &logs[a].encoded, ablation.position_importance);
                    let db =
                        min_distance(&profiles, &logs[b].encoded, ablation.position_importance);
                    da.partial_cmp(&db).unwrap_or(std::cmp::Ordering::Equal)
                })
                .expect("members is non-empty");
            profiles.push(ClusterProfile::from_logs(
                num_positions,
                [&logs[farthest].encoded],
            ));
            // Re-run assignment against the enlarged cluster set.
            continue;
        }
        if !changed {
            break;
        }
    }

    // Materialise the partition, dropping empty clusters.
    let mut clusters: Vec<Vec<usize>> = vec![Vec::new(); profiles.len()];
    for (slot, &member) in members.iter().enumerate() {
        let cluster = assignment[slot].unwrap_or(0);
        clusters[cluster].push(member);
    }
    clusters.retain(|c| !c.is_empty());
    if clusters.len() < 2 {
        return None;
    }
    if config.ablation.ensure_saturation_increase {
        // Reject splits that fail to improve any child: they would only deepen the tree
        // without adding precision.
        let improved = clusters.iter().any(|cluster| {
            let profile =
                ClusterProfile::from_logs(num_positions, cluster.iter().map(|&i| &logs[i].encoded));
            saturation(&profile, ablation) > parent_saturation + 1e-12
        });
        if !improved {
            return None;
        }
    }
    Some(clusters)
}

fn min_distance(profiles: &[ClusterProfile], log: &logtok::EncodedLog, importance: bool) -> f64 {
    profiles
        .iter()
        .filter(|p| !p.is_empty())
        .map(|p| p.distance(log, importance))
        .fold(f64::INFINITY, f64::min)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TrainConfig;

    fn unique(tokens: &[&str], count: u64) -> UniqueLog {
        let mut encoded = logtok::EncodedLog::from_tokens(tokens);
        encoded.count = count;
        UniqueLog {
            encoded,
            record_indices: Vec::new(),
        }
    }

    fn config() -> TrainConfig {
        TrainConfig::default()
    }

    #[test]
    fn fig5_set1_stays_a_single_node() {
        let logs = vec![
            unique(
                &["UserService", "createUser", "token", "abc123", "success"],
                1,
            ),
            unique(
                &["UserService", "createUser", "token", "xyz789", "success"],
                1,
            ),
            unique(
                &["UserService", "createUser", "token", "def456", "success"],
                1,
            ),
        ];
        let tree = cluster_group(&logs, &config(), 1);
        assert_eq!(tree.len(), 1, "a fully-saturated root must not split");
        assert!((tree[0].saturation - 1.0).abs() < 1e-9);
        assert_eq!(
            tree[0].template_text_for_test(),
            "UserService createUser token * success"
        );
    }

    impl LocalNode {
        fn template_text_for_test(&self) -> String {
            self.template
                .iter()
                .map(|t| t.to_string())
                .collect::<Vec<_>>()
                .join(" ")
        }
    }

    #[test]
    fn fig5_set2_splits_until_saturated() {
        let logs = vec![
            unique(
                &["UserService", "createUser", "token", "abc123", "success"],
                1,
            ),
            unique(
                &["UserService", "deleteUser", "token", "xyz789", "failed"],
                1,
            ),
            unique(
                &["UserService", "queryUser", "token", "def456", "success"],
                1,
            ),
        ];
        let tree = cluster_group(&logs, &config(), 1);
        assert!(tree.len() > 1, "the mixed set must split");
        // Children always have saturation >= their parent.
        for (idx, node) in tree.iter().enumerate() {
            if let Some(parent) = node.parent {
                assert!(
                    node.saturation >= tree[parent].saturation - 1e-12,
                    "node {idx} has lower saturation than its parent"
                );
            }
        }
        // All leaves are fully saturated.
        for node in tree.iter().filter(|n| n.children.is_empty()) {
            assert!(
                node.saturation >= 0.99,
                "leaf saturation {}",
                node.saturation
            );
        }
    }

    #[test]
    fn two_distinct_actions_separate_into_two_clusters() {
        let logs = vec![
            unique(&["release", "lock", "1"], 5),
            unique(&["release", "lock", "2"], 5),
            unique(&["release", "lock", "3"], 5),
            unique(&["acquire", "lock", "4"], 5),
            unique(&["acquire", "lock", "5"], 5),
            unique(&["acquire", "lock", "6"], 5),
        ];
        let tree = cluster_group(&logs, &config(), 3);
        // Some descendant must have the "release lock *" template and another "acquire lock *".
        let texts: Vec<String> = tree.iter().map(|n| n.template_text_for_test()).collect();
        assert!(
            texts.iter().any(|t| t == "release lock *"),
            "missing release template in {texts:?}"
        );
        assert!(
            texts.iter().any(|t| t == "acquire lock *"),
            "missing acquire template in {texts:?}"
        );
    }

    #[test]
    fn root_covers_all_records() {
        let logs = vec![
            unique(&["a", "b", "c"], 10),
            unique(&["a", "x", "c"], 20),
            unique(&["a", "y", "z"], 30),
        ];
        let tree = cluster_group(&logs, &config(), 5);
        assert_eq!(tree[0].log_count, 60);
        assert_eq!(tree[0].members.len(), 3);
        // Children partition the parent's members.
        for node in &tree {
            if !node.children.is_empty() {
                let child_total: usize = node.children.iter().map(|&c| tree[c].members.len()).sum();
                assert_eq!(child_total, node.members.len());
            }
        }
    }

    #[test]
    fn single_log_group_is_one_leaf() {
        let logs = vec![unique(&["only", "log"], 1)];
        let tree = cluster_group(&logs, &config(), 1);
        assert_eq!(tree.len(), 1);
        assert!(tree[0].children.is_empty());
        assert_eq!(tree[0].saturation, 1.0);
    }

    #[test]
    fn two_log_group_splits_into_singletons_when_unrelated() {
        let logs = vec![
            unique(&["alpha", "beta"], 1),
            unique(&["gamma", "delta"], 1),
        ];
        let tree = cluster_group(&logs, &config(), 1);
        // Early-stop rule 1: each log its own cluster (or stays one node if saturated).
        let leaves: Vec<&LocalNode> = tree.iter().filter(|n| n.children.is_empty()).collect();
        assert!(!leaves.is_empty());
        for leaf in leaves {
            assert!(leaf.saturation >= tree[0].saturation);
        }
    }

    #[test]
    fn deep_recursion_is_bounded() {
        // Many logs sharing no structure: the tree must stay bounded and finite.
        let logs: Vec<UniqueLog> = (0..64)
            .map(|i| unique(&[&format!("tok{i}"), &format!("val{}", i % 7), "end"], 1))
            .collect();
        let shallow = TrainConfig {
            max_depth: 3,
            ..TrainConfig::default()
        };
        let tree = cluster_group(&logs, &shallow, 7);
        for node in &tree {
            assert!(node.depth <= 4);
        }
    }

    #[test]
    fn disabling_early_stop_still_terminates() {
        let logs = vec![
            unique(&["a", "1"], 1),
            unique(&["a", "2"], 1),
            unique(&["b", "3"], 1),
        ];
        let mut cfg = config();
        cfg.ablation.early_stopping = false;
        let tree = cluster_group(&logs, &cfg, 11);
        assert!(!tree.is_empty());
        assert!(tree.len() < 20);
    }

    #[test]
    fn without_saturation_guarantee_splits_are_still_partitions() {
        let logs = vec![
            unique(&["put", "key", "1"], 1),
            unique(&["put", "key", "2"], 1),
            unique(&["get", "key", "3"], 1),
            unique(&["get", "key", "4"], 1),
        ];
        let mut cfg = config();
        cfg.ablation.ensure_saturation_increase = false;
        let tree = cluster_group(&logs, &cfg, 13);
        for node in &tree {
            if !node.children.is_empty() {
                let mut members: Vec<usize> = node
                    .children
                    .iter()
                    .flat_map(|&c| tree[c].members.clone())
                    .collect();
                members.sort_unstable();
                let mut expected = node.members.clone();
                expected.sort_unstable();
                assert_eq!(members, expected);
            }
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let logs = vec![
            unique(&["svc", "start", "a"], 1),
            unique(&["svc", "start", "b"], 1),
            unique(&["svc", "stop", "a"], 1),
            unique(&["svc", "stop", "b"], 1),
        ];
        let t1 = cluster_group(&logs, &config(), 99);
        let t2 = cluster_group(&logs, &config(), 99);
        assert_eq!(t1.len(), t2.len());
        for (a, b) in t1.iter().zip(t2.iter()) {
            assert_eq!(a.members, b.members);
            assert_eq!(a.template, b.template);
        }
    }
}
