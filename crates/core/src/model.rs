//! The trained parser model: every tree node from every initial group, plus the matching
//! order used by the online phase. This is the state the production system persists to its
//! "internal topic" (§3) — template texts, saturation scores and parent/child links only,
//! no per-node token statistics.

use crate::tree::{NodeId, TemplateToken, TreeNode};
use serde::{Deserialize, Serialize};

/// A trained ByteBrain model.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ParserModel {
    /// All nodes, indexed by `NodeId.0`.
    pub nodes: Vec<TreeNode>,
    /// Root node ids (one per initial group).
    pub roots: Vec<NodeId>,
    /// Node ids in matching order: descending saturation, deeper nodes first on ties
    /// (§4.8 — the most precise templates are tried first).
    match_order: Vec<NodeId>,
}

impl ParserModel {
    /// An empty model (matches nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of nodes (templates at all precision levels).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the model has no templates.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Look up a node.
    pub fn node(&self, id: NodeId) -> Option<&TreeNode> {
        self.nodes.get(id.0)
    }

    /// Append a node and return its id. The caller is responsible for linking it to its
    /// parent via [`ParserModel::attach_child`], or registering it as a root.
    pub fn push_node(&mut self, mut node: TreeNode) -> NodeId {
        let id = NodeId(self.nodes.len());
        node.id = id;
        self.nodes.push(node);
        id
    }

    /// Register `id` as the root of a clustering tree.
    pub fn add_root(&mut self, id: NodeId) {
        self.roots.push(id);
    }

    /// Link `child` under `parent`.
    pub fn attach_child(&mut self, parent: NodeId, child: NodeId) {
        self.nodes[child.0].parent = Some(parent);
        self.nodes[parent.0].children.push(child);
    }

    /// Ancestor chain of `id`, from the node itself up to its root.
    pub fn ancestors(&self, id: NodeId) -> Vec<NodeId> {
        let mut chain = vec![id];
        let mut current = id;
        while let Some(parent) = self.nodes[current.0].parent {
            chain.push(parent);
            current = parent;
        }
        chain
    }

    /// Leaf nodes (most precise templates). Retired nodes are excluded.
    pub fn leaves(&self) -> impl Iterator<Item = &TreeNode> {
        self.nodes.iter().filter(|n| n.is_leaf() && !n.retired)
    }

    /// Recompute the matching order. Must be called after the last structural change
    /// (training, merging, inserting temporary templates, or applying a
    /// [`ModelDelta`](crate::incremental::ModelDelta)). Retired nodes are excluded.
    pub fn rebuild_match_order(&mut self) {
        let mut order: Vec<NodeId> = self
            .nodes
            .iter()
            .filter(|n| !n.retired)
            .map(|n| n.id)
            .collect();
        order.sort_by(|&a, &b| {
            let na = &self.nodes[a.0];
            let nb = &self.nodes[b.0];
            nb.saturation
                .partial_cmp(&na.saturation)
                .unwrap_or(std::cmp::Ordering::Equal)
                // Ties: prefer templates with fewer wildcards (more specific), then deeper
                // nodes, so that a wildcard-heavy saturated node cannot shadow an exact one.
                .then(na.wildcard_count().cmp(&nb.wildcard_count()))
                .then(nb.depth.cmp(&na.depth))
                .then(a.0.cmp(&b.0))
        });
        self.match_order = order;
    }

    /// Node ids in matching order (descending saturation).
    pub fn match_order(&self) -> &[NodeId] {
        &self.match_order
    }

    /// Total number of raw records the model was trained on.
    pub fn trained_records(&self) -> u64 {
        self.roots.iter().map(|&r| self.nodes[r.0].log_count).sum()
    }

    /// Approximate serialized size of the model in bytes: template text plus fixed
    /// per-node metadata. Reported in the Table 5 reproduction ("Model Size").
    pub fn approx_size_bytes(&self) -> u64 {
        self.nodes
            .iter()
            .map(|n| {
                let text: usize = n
                    .template
                    .iter()
                    .map(|t| match t {
                        TemplateToken::Const(s) => s.len() + 1,
                        TemplateToken::Wildcard => 2,
                    })
                    .sum();
                // id + parent + saturation + depth + counts ≈ 40 bytes of metadata.
                (text + 40) as u64
            })
            .sum()
    }

    /// Insert a temporary template for an unmatched log (§3 "Online Matching"): the log
    /// itself becomes a new root-level node with saturation 1 and is flagged temporary so
    /// the next training cycle can absorb it.
    pub fn insert_temporary(&mut self, tokens: &[String]) -> NodeId {
        let node = TreeNode {
            id: NodeId(0),
            parent: None,
            children: Vec::new(),
            template: tokens
                .iter()
                .map(|t| TemplateToken::Const(t.clone()))
                .collect(),
            saturation: 1.0,
            depth: 0,
            log_count: 1,
            unique_count: 1,
            temporary: true,
            retired: false,
        };
        let id = self.push_node(node);
        self.add_root(id);
        self.rebuild_match_order();
        id
    }

    /// Number of temporary (unmatched-log) templates currently active in the model.
    /// Temporaries that were retired by incremental maintenance are not counted.
    pub fn temporary_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| n.temporary && !n.retired)
            .count()
    }

    /// Number of retired nodes (slots kept for id stability but excluded from matching).
    pub fn retired_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.retired).count()
    }

    /// Retire `id`: remove it from the root set (when present) and exclude it from
    /// matching while keeping its slot so other [`NodeId`]s remain stable. The caller is
    /// responsible for calling [`ParserModel::rebuild_match_order`] afterwards.
    pub fn retire(&mut self, id: NodeId) {
        self.nodes[id.0].retired = true;
        self.roots.retain(|&r| r != id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_node(template: &[&str], saturation: f64, depth: usize) -> TreeNode {
        TreeNode {
            id: NodeId(0),
            parent: None,
            children: Vec::new(),
            template: template
                .iter()
                .map(|t| {
                    if *t == "*" {
                        TemplateToken::Wildcard
                    } else {
                        TemplateToken::Const(t.to_string())
                    }
                })
                .collect(),
            saturation,
            depth,
            log_count: 1,
            unique_count: 1,
            temporary: false,
            retired: false,
        }
    }

    #[test]
    fn push_and_link_nodes() {
        let mut model = ParserModel::new();
        let root = model.push_node(simple_node(&["a", "*"], 0.5, 0));
        model.add_root(root);
        let child = model.push_node(simple_node(&["a", "b"], 1.0, 1));
        model.attach_child(root, child);
        assert_eq!(model.len(), 2);
        assert_eq!(model.node(child).unwrap().parent, Some(root));
        assert_eq!(model.node(root).unwrap().children, vec![child]);
        assert_eq!(model.ancestors(child), vec![child, root]);
    }

    #[test]
    fn match_order_is_descending_saturation_then_depth() {
        let mut model = ParserModel::new();
        let coarse = model.push_node(simple_node(&["x", "*"], 0.4, 0));
        let shallow_precise = model.push_node(simple_node(&["x", "y"], 1.0, 1));
        let deep_precise = model.push_node(simple_node(&["x", "z"], 1.0, 2));
        model.add_root(coarse);
        model.rebuild_match_order();
        let order = model.match_order();
        assert_eq!(order[0], deep_precise);
        assert_eq!(order[1], shallow_precise);
        assert_eq!(order[2], coarse);
    }

    #[test]
    fn temporary_insertion() {
        let mut model = ParserModel::new();
        let id = model.insert_temporary(&["never".into(), "seen".into(), "before".into()]);
        assert_eq!(model.temporary_count(), 1);
        assert!(model.node(id).unwrap().temporary);
        assert_eq!(model.node(id).unwrap().template_text(), "never seen before");
        assert!(model.match_order().contains(&id));
    }

    #[test]
    fn size_estimate_grows_with_nodes() {
        let mut model = ParserModel::new();
        let empty_size = model.approx_size_bytes();
        model.push_node(simple_node(&["some", "template", "*"], 1.0, 0));
        assert!(model.approx_size_bytes() > empty_size);
    }

    #[test]
    fn leaves_are_childless() {
        let mut model = ParserModel::new();
        let root = model.push_node(simple_node(&["a", "*"], 0.5, 0));
        let child = model.push_node(simple_node(&["a", "b"], 1.0, 1));
        model.add_root(root);
        model.attach_child(root, child);
        let leaves: Vec<NodeId> = model.leaves().map(|n| n.id).collect();
        assert_eq!(leaves, vec![child]);
    }

    #[test]
    fn trained_records_sums_roots_only() {
        let mut model = ParserModel::new();
        let mut root_node = simple_node(&["a"], 1.0, 0);
        root_node.log_count = 10;
        let root = model.push_node(root_node);
        model.add_root(root);
        let mut child_node = simple_node(&["a"], 1.0, 1);
        child_node.log_count = 4;
        let child = model.push_node(child_node);
        model.attach_child(root, child);
        assert_eq!(model.trained_records(), 10);
    }
}
